"""Persisting sharded indexes through any :class:`StorageBackend`.

A :class:`~repro.index.sharded.ShardedInvertedIndex` is persisted as one
backend index per shard under the derived names ``{name}.shard{i}of{n}`` —
the shard count is encoded in the name so that a reader can discover the
layout with nothing but :meth:`StorageBackend.list_indexes
<repro.storage.backend.StorageBackend.list_indexes>`.  Shard 0 additionally
carries the (row-keyed, shard-independent) super keys; the other shards
store only their posting-list partition.

Because shard routing uses the process-stable :func:`shard_of_value
<repro.index.sharded.shard_of_value>` hash, reloading re-routes every value
onto exactly the shard it was saved from, so a round trip reproduces the
index bit for bit (asserted by ``tests/test_service.py``).
"""

from __future__ import annotations

import re

from ..exceptions import StorageError
from ..index import InvertedIndex, ShardedInvertedIndex
from .backend import StorageBackend

_SHARD_NAME = "{name}.shard{index}of{count}"
_SHARD_PATTERN = re.compile(r"^(?P<name>.+)\.shard(?P<index>\d+)of(?P<count>\d+)$")


def shard_index_name(name: str, shard_index: int, num_shards: int) -> str:
    """Return the backend name one shard of a sharded index is stored under."""
    return _SHARD_NAME.format(name=name, index=shard_index, count=num_shards)


def save_sharded_index(
    backend: StorageBackend, name: str, index: ShardedInvertedIndex
) -> None:
    """Persist ``index`` shard by shard under ``name`` (replacing earlier shards).

    Any shards previously stored under the same base name — including a
    layout with a *different* shard count — are deleted first, so a re-save
    can never leave a stale layout behind for :func:`load_sharded_index` to
    pick up.
    """
    for stored in backend.list_indexes():
        match = _SHARD_PATTERN.match(stored)
        if match is not None and match.group("name") == name:
            backend.delete_index(stored)
    for shard_index in range(index.num_shards):
        shard = index.shard(shard_index)
        if shard_index == 0:
            # Shard 0 doubles as the super-key carrier: rebuild it with the
            # central super-key map attached so one backend record holds both.
            carrier = InvertedIndex(
                hash_function_name=index.hash_function_name,
                hash_size=index.hash_size,
                layout=index.layout,
            )
            _copy_postings(shard, carrier)
            for table_id, row_index, super_key in index.iter_super_keys():
                carrier.set_super_key(table_id, row_index, super_key)
            shard = carrier
        backend.save_index(
            shard_index_name(name, shard_index, index.num_shards), shard
        )


def _copy_postings(source: InvertedIndex, target) -> None:
    """Copy every posting of ``source`` into ``target``.

    Columnar sources transfer each value's packed columns wholesale
    (``target`` may be an :class:`InvertedIndex` or a
    :class:`~repro.index.sharded.ShardedInvertedIndex`, which routes the
    value to its shard); legacy sources fall back to per-item appends.
    """
    if source.layout == "columnar":
        for value in source.values():
            columns = source.posting_columns(value)
            if columns is not None:
                target.set_posting_columns(value, columns.copy())
    else:
        for value in source.values():
            for item in source.posting_list(value):
                target.add_posting(
                    value, item.table_id, item.column_index, item.row_index
                )


def list_sharded_indexes(backend: StorageBackend) -> dict[str, int]:
    """Return ``{name: num_shards}`` for every sharded index in ``backend``.

    Only *complete* layouts (all ``num_shards`` shard records present) are
    reported.  :func:`save_sharded_index` keeps at most one layout per name;
    should a backend nevertheless hold several complete layouts for the same
    name, the smallest shard count wins deterministically.
    """
    shards_seen: dict[tuple[str, int], set[int]] = {}
    for stored in backend.list_indexes():
        match = _SHARD_PATTERN.match(stored)
        if match is not None:
            key = (match.group("name"), int(match.group("count")))
            shards_seen.setdefault(key, set()).add(int(match.group("index")))
    found: dict[str, int] = {}
    for (name, count), indexes in sorted(shards_seen.items()):
        if indexes == set(range(count)) and name not in found:
            found[name] = count
    return found


def load_sharded_index(
    backend: StorageBackend, name: str, max_workers: int | None = None
) -> ShardedInvertedIndex:
    """Load the sharded index stored under ``name``.

    The shard count is discovered from the stored names; every shard must be
    present or a :class:`~repro.exceptions.StorageError` is raised.
    """
    num_shards = list_sharded_indexes(backend).get(name)
    if num_shards is None:
        raise StorageError(f"no sharded index stored under name {name!r}")
    shard_zero = backend.load_index(shard_index_name(name, 0, num_shards))
    sharded = ShardedInvertedIndex(
        num_shards=num_shards,
        hash_function_name=shard_zero.hash_function_name,
        hash_size=shard_zero.hash_size,
        max_workers=max_workers,
        layout=getattr(shard_zero, "layout", "legacy"),
    )
    for shard_index in range(num_shards):
        shard = (
            shard_zero
            if shard_index == 0
            else backend.load_index(shard_index_name(name, shard_index, num_shards))
        )
        # Stable CRC-32 routing sends each value back to the shard it was
        # saved from; columnar shards move their packed columns wholesale.
        _copy_postings(shard, sharded)
    for table_id, row_index, super_key in shard_zero.iter_super_keys():
        sharded.set_super_key(table_id, row_index, super_key)
    return sharded
