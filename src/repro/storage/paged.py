"""Paged posting-list storage with a simulated buffer pool and fetch-cost model.

The paper excludes index *fetch* time from the runtime comparison but notes
that it "can vary between 1 and 40 seconds when the data and the index has to
be retrieved from disk" (Section 7.2) — DWTC does not fit in memory.  The
authors' deployment keeps the index in Vertica; neither that column store nor
a 250 GB corpus are available here, so this module models the relevant
behaviour instead:

* :class:`PagedPostingStore` lays the posting lists of an
  :class:`~repro.index.InvertedIndex` out on fixed-size pages (values in
  sorted order, long posting lists spanning several pages) and serves fetches
  through an LRU buffer pool, counting page hits and misses;
* :class:`FetchCostModel` converts the page-miss count into an estimated
  fetch latency (seek cost + per-page transfer cost), so the fetch-cost
  experiment can report how the initial-column choice and the corpus profile
  drive the 1-40 s range the paper mentions.

The store is a *model*: it never bypasses the in-memory index for actual data
access, it only accounts for what a disk-resident layout would have had to
read.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from ..exceptions import StorageError
from ..index import FetchBlock, FetchedItem, InvertedIndex

#: Bytes a single PL item occupies on disk: table id, column id, row id as
#: three 64-bit integers (matches repro.index.statistics.SCR_BYTES_PER_ENTRY).
BYTES_PER_POSTING: int = 24

#: Bytes per stored super key at the default 128-bit hash size.
BYTES_PER_SUPER_KEY: int = 16


@dataclass(frozen=True)
class FetchCostModel:
    """Latency model for reading posting-list pages from storage.

    The defaults approximate a SATA SSD reading 8 KiB pages: a fixed per-read
    seek/request overhead and a linear transfer term.  The absolute values do
    not matter for the experiments (which compare configurations under the
    same model); the *shape* — cost grows with the number of distinct pages
    touched — is what the paper's 1-40 s observation reflects.
    """

    seek_seconds: float = 0.0001
    transfer_seconds_per_page: float = 0.00002
    #: Warm pages served from the buffer pool cost only this much.
    cached_page_seconds: float = 0.000001

    def cost(self, pages_read: int, pages_cached: int = 0) -> float:
        """Estimated seconds to serve a fetch touching the given page counts."""
        if pages_read < 0 or pages_cached < 0:
            raise StorageError("page counts must be non-negative")
        cold = pages_read * (self.seek_seconds + self.transfer_seconds_per_page)
        warm = pages_cached * self.cached_page_seconds
        return cold + warm


@dataclass
class FetchAccounting:
    """Accumulated accounting of fetches served by a :class:`PagedPostingStore`."""

    fetches: int = 0
    values_probed: int = 0
    items_returned: int = 0
    pages_read: int = 0
    pages_from_cache: int = 0
    estimated_seconds: float = 0.0

    @property
    def cache_hit_ratio(self) -> float:
        """Fraction of page accesses served by the buffer pool."""
        total = self.pages_read + self.pages_from_cache
        if total == 0:
            return 0.0
        return self.pages_from_cache / total

    def as_dict(self) -> dict[str, float]:
        """Return the accounting as a plain dictionary (for reporting)."""
        return {
            "fetches": self.fetches,
            "values_probed": self.values_probed,
            "items_returned": self.items_returned,
            "pages_read": self.pages_read,
            "pages_from_cache": self.pages_from_cache,
            "cache_hit_ratio": round(self.cache_hit_ratio, 4),
            "estimated_seconds": self.estimated_seconds,
        }


@dataclass
class _PageTable:
    """Mapping from values to the page ids their posting lists occupy."""

    page_size_bytes: int
    pages_of_value: dict[str, tuple[int, ...]] = field(default_factory=dict)
    num_pages: int = 0

    def layout(self, index: InvertedIndex, include_super_keys: bool) -> None:
        """Assign every value's posting list to one or more pages."""
        bytes_per_item = BYTES_PER_POSTING + (
            BYTES_PER_SUPER_KEY if include_super_keys else 0
        )
        current_page = 0
        used_in_page = 0
        for value in sorted(index.values()):
            item_count = index.posting_list_length(value)
            remaining = item_count * bytes_per_item
            pages: list[int] = []
            while remaining > 0:
                if used_in_page >= self.page_size_bytes:
                    current_page += 1
                    used_in_page = 0
                pages.append(current_page)
                take = min(remaining, self.page_size_bytes - used_in_page)
                used_in_page += take
                remaining -= take
            if not pages:
                pages = [current_page]
            self.pages_of_value[value] = tuple(dict.fromkeys(pages))
        self.num_pages = current_page + 1


class PagedPostingStore:
    """An inverted index served through a simulated paged storage layer.

    Parameters
    ----------
    index:
        The in-memory extended inverted index to serve.
    page_size_bytes:
        Page granularity of the simulated on-disk layout (8 KiB by default).
    buffer_pool_pages:
        Capacity of the LRU buffer pool, in pages.  ``0`` disables caching
        (every access is a cold read).
    include_super_keys:
        Whether the on-disk layout stores a super key next to every PL item
        (the paper's per-cell layout) — this makes posting lists wider and
        increases the number of pages a fetch touches.
    cost_model:
        Latency model used for the accounting.
    """

    def __init__(
        self,
        index: InvertedIndex,
        page_size_bytes: int = 8192,
        buffer_pool_pages: int = 256,
        include_super_keys: bool = True,
        cost_model: FetchCostModel | None = None,
    ):
        if page_size_bytes <= 0:
            raise StorageError(f"page_size_bytes must be positive, got {page_size_bytes}")
        if buffer_pool_pages < 0:
            raise StorageError(
                f"buffer_pool_pages must be non-negative, got {buffer_pool_pages}"
            )
        self.index = index
        self.page_size_bytes = page_size_bytes
        self.buffer_pool_pages = buffer_pool_pages
        self.include_super_keys = include_super_keys
        self.cost_model = cost_model or FetchCostModel()
        self.accounting = FetchAccounting()
        self._buffer: OrderedDict[int, None] = OrderedDict()
        self._page_table = _PageTable(page_size_bytes=page_size_bytes)
        self._page_table.layout(index, include_super_keys)

    # ------------------------------------------------------------------
    # Layout introspection
    # ------------------------------------------------------------------
    @property
    def num_pages(self) -> int:
        """Total number of pages in the simulated layout."""
        return self._page_table.num_pages

    def pages_for_value(self, value: str) -> tuple[int, ...]:
        """Return the page ids holding the posting list of ``value``."""
        return self._page_table.pages_of_value.get(value, ())

    def storage_bytes(self) -> int:
        """Total bytes of the simulated layout (pages are not padded)."""
        bytes_per_item = BYTES_PER_POSTING + (
            BYTES_PER_SUPER_KEY if self.include_super_keys else 0
        )
        return self.index.num_posting_items() * bytes_per_item

    # ------------------------------------------------------------------
    # Fetching
    # ------------------------------------------------------------------
    def _touch_page(self, page_id: int) -> bool:
        """Access one page; returns ``True`` on a buffer-pool hit."""
        if self.buffer_pool_pages == 0:
            return False
        if page_id in self._buffer:
            self._buffer.move_to_end(page_id)
            return True
        self._buffer[page_id] = None
        if len(self._buffer) > self.buffer_pool_pages:
            self._buffer.popitem(last=False)
        return False

    def _account_pages(self, probe_values: Sequence[str]) -> None:
        """Charge the buffer pool and cost model for one fetch of the values."""
        pages_needed: list[int] = []
        seen_pages: set[int] = set()
        for value in probe_values:
            for page_id in self.pages_for_value(value):
                if page_id not in seen_pages:
                    seen_pages.add(page_id)
                    pages_needed.append(page_id)

        cold = 0
        warm = 0
        for page_id in pages_needed:
            if self._touch_page(page_id):
                warm += 1
            else:
                cold += 1

        self.accounting.fetches += 1
        self.accounting.values_probed += len(probe_values)
        self.accounting.pages_read += cold
        self.accounting.pages_from_cache += warm
        self.accounting.estimated_seconds += self.cost_model.cost(cold, warm)

    def fetch(self, values: Iterable[str]) -> list[FetchedItem]:
        """Fetch PL items for ``values``, accounting for the pages touched.

        Returns exactly what :meth:`repro.index.InvertedIndex.fetch` returns;
        the side effect is the updated :attr:`accounting`.
        """
        probe_values = [value for value in dict.fromkeys(values) if value != ""]
        self._account_pages(probe_values)
        items = self.index.fetch(probe_values)
        self.accounting.items_returned += len(items)
        return items

    def fetch_batch(self, values: Iterable[str]) -> list[FetchBlock]:
        """Fetch packed blocks for ``values``, accounting for the pages touched.

        The struct-of-arrays sibling of :meth:`fetch`: identical accounting,
        but the result is what :meth:`repro.index.InvertedIndex.fetch_batch`
        returns (so the discovery engine's columnar hot path can run on top
        of the simulated paged store).
        """
        probe_values = [value for value in dict.fromkeys(values) if value != ""]
        self._account_pages(probe_values)
        blocks = self.index.fetch_batch(probe_values)
        self.accounting.items_returned += sum(len(block) for block in blocks)
        return blocks

    def estimated_fetch_seconds(self, values: Sequence[str]) -> float:
        """Estimate the cold-cache cost of fetching ``values`` without fetching.

        Used by the fetch-cost experiment to compare initial-column choices
        without mutating the buffer pool.
        """
        pages: set[int] = set()
        for value in dict.fromkeys(values):
            pages.update(self.pages_for_value(value))
        return self.cost_model.cost(len(pages), 0)

    def reset_accounting(self) -> None:
        """Clear the accumulated accounting and empty the buffer pool."""
        self.accounting = FetchAccounting()
        self._buffer.clear()
