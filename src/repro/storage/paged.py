"""Paged posting-list storage: mmap-backed segments and the fetch-cost model.

The paper excludes index *fetch* time from the runtime comparison but notes
that it "can vary between 1 and 40 seconds when the data and the index has to
be retrieved from disk" (Section 7.2) — DWTC does not fit in memory.  The
authors' deployment keeps the index in Vertica; this module provides the two
storage layers the reproduction uses in its place:

* **Binary mmap segments** — :func:`write_segment` persists a columnar
  :class:`~repro.index.InvertedIndex` into a single ``.seg`` file whose
  packed posting columns and super-key buffers are laid out 8-byte-aligned,
  and :func:`load_segment` maps that file back with :mod:`mmap`:
  :class:`MappedSegmentIndex` serves the full read surface of
  :class:`~repro.index.InvertedIndex` through zero-copy
  :class:`memoryview` casts into the mapping, so opening a multi-GB index
  costs only the directory parse (pages fault in on demand and are shared
  between processes mapping the same file).  :class:`MappedSuperKeys` backs
  per-row super-key lookups by binary search over the mapped row table.
* **The simulated paged store** — :class:`PagedPostingStore` lays posting
  lists out on fixed-size pages served through an LRU buffer pool, and
  :class:`FetchCostModel` converts page misses into an estimated fetch
  latency, so the fetch-cost experiment can report how the initial-column
  choice drives the 1-40 s range the paper mentions.  (The store is a
  *model*: it only accounts for what a disk-resident layout would read.)
"""

from __future__ import annotations

import json
import mmap
import os
import struct
import sys
from array import array
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Sequence
from zlib import crc32

from ..exceptions import IndexError_, SegmentFormatError, StorageError
from ..index import ColumnarPostingList, FetchBlock, FetchedItem, InvertedIndex

#: File suffix of binary mmap segment files.
SEGMENT_SUFFIX = ".seg"

#: Leading magic of a segment file (8 bytes, also its alignment unit).
SEGMENT_MAGIC = b"MATESEG1"

#: Trailing magic inside the fixed-size footer; a torn write loses it.
SEGMENT_FOOTER_MAGIC = b"MSG1"

#: Version of the on-disk segment format this module reads and writes.
SEGMENT_FORMAT_VERSION: int = 1

#: Footer layout: directory offset, directory length, CRC32 of the
#: directory bytes, trailing magic.  Fixed-size so the loader can find the
#: directory from the end of the file without scanning the payload.
_SEGMENT_FOOTER = struct.Struct("<QQI4s")

#: Bytes a single PL item occupies on disk: table id, column id, row id as
#: three 64-bit integers (matches repro.index.statistics.SCR_BYTES_PER_ENTRY).
BYTES_PER_POSTING: int = 24

#: Bytes per stored super key at the default 128-bit hash size.
BYTES_PER_SUPER_KEY: int = 16


@dataclass(frozen=True)
class FetchCostModel:
    """Latency model for reading posting-list pages from storage.

    The defaults approximate a SATA SSD reading 8 KiB pages: a fixed per-read
    seek/request overhead and a linear transfer term.  The absolute values do
    not matter for the experiments (which compare configurations under the
    same model); the *shape* — cost grows with the number of distinct pages
    touched — is what the paper's 1-40 s observation reflects.
    """

    seek_seconds: float = 0.0001
    transfer_seconds_per_page: float = 0.00002
    #: Warm pages served from the buffer pool cost only this much.
    cached_page_seconds: float = 0.000001

    def cost(self, pages_read: int, pages_cached: int = 0) -> float:
        """Estimated seconds to serve a fetch touching the given page counts."""
        if pages_read < 0 or pages_cached < 0:
            raise StorageError("page counts must be non-negative")
        cold = pages_read * (self.seek_seconds + self.transfer_seconds_per_page)
        warm = pages_cached * self.cached_page_seconds
        return cold + warm


@dataclass
class FetchAccounting:
    """Accumulated accounting of fetches served by a :class:`PagedPostingStore`."""

    fetches: int = 0
    values_probed: int = 0
    items_returned: int = 0
    pages_read: int = 0
    pages_from_cache: int = 0
    estimated_seconds: float = 0.0

    @property
    def cache_hit_ratio(self) -> float:
        """Fraction of page accesses served by the buffer pool."""
        total = self.pages_read + self.pages_from_cache
        if total == 0:
            return 0.0
        return self.pages_from_cache / total

    def as_dict(self) -> dict[str, float]:
        """Return the accounting as a plain dictionary (for reporting)."""
        return {
            "fetches": self.fetches,
            "values_probed": self.values_probed,
            "items_returned": self.items_returned,
            "pages_read": self.pages_read,
            "pages_from_cache": self.pages_from_cache,
            "cache_hit_ratio": round(self.cache_hit_ratio, 4),
            "estimated_seconds": self.estimated_seconds,
        }


@dataclass
class _PageTable:
    """Mapping from values to the page ids their posting lists occupy."""

    page_size_bytes: int
    pages_of_value: dict[str, tuple[int, ...]] = field(default_factory=dict)
    num_pages: int = 0

    def layout(self, index: InvertedIndex, include_super_keys: bool) -> None:
        """Assign every value's posting list to one or more pages."""
        bytes_per_item = BYTES_PER_POSTING + (
            BYTES_PER_SUPER_KEY if include_super_keys else 0
        )
        current_page = 0
        used_in_page = 0
        for value in sorted(index.values()):
            item_count = index.posting_list_length(value)
            remaining = item_count * bytes_per_item
            pages: list[int] = []
            while remaining > 0:
                if used_in_page >= self.page_size_bytes:
                    current_page += 1
                    used_in_page = 0
                pages.append(current_page)
                take = min(remaining, self.page_size_bytes - used_in_page)
                used_in_page += take
                remaining -= take
            if not pages:
                pages = [current_page]
            self.pages_of_value[value] = tuple(dict.fromkeys(pages))
        self.num_pages = current_page + 1


class PagedPostingStore:
    """An inverted index served through a simulated paged storage layer.

    Parameters
    ----------
    index:
        The in-memory extended inverted index to serve.
    page_size_bytes:
        Page granularity of the simulated on-disk layout (8 KiB by default).
    buffer_pool_pages:
        Capacity of the LRU buffer pool, in pages.  ``0`` disables caching
        (every access is a cold read).
    include_super_keys:
        Whether the on-disk layout stores a super key next to every PL item
        (the paper's per-cell layout) — this makes posting lists wider and
        increases the number of pages a fetch touches.
    cost_model:
        Latency model used for the accounting.
    """

    def __init__(
        self,
        index: InvertedIndex,
        page_size_bytes: int = 8192,
        buffer_pool_pages: int = 256,
        include_super_keys: bool = True,
        cost_model: FetchCostModel | None = None,
    ):
        if page_size_bytes <= 0:
            raise StorageError(f"page_size_bytes must be positive, got {page_size_bytes}")
        if buffer_pool_pages < 0:
            raise StorageError(
                f"buffer_pool_pages must be non-negative, got {buffer_pool_pages}"
            )
        self.index = index
        self.page_size_bytes = page_size_bytes
        self.buffer_pool_pages = buffer_pool_pages
        self.include_super_keys = include_super_keys
        self.cost_model = cost_model or FetchCostModel()
        self.accounting = FetchAccounting()
        self._buffer: OrderedDict[int, None] = OrderedDict()
        self._page_table = _PageTable(page_size_bytes=page_size_bytes)
        self._page_table.layout(index, include_super_keys)

    # ------------------------------------------------------------------
    # Layout introspection
    # ------------------------------------------------------------------
    @property
    def num_pages(self) -> int:
        """Total number of pages in the simulated layout."""
        return self._page_table.num_pages

    def pages_for_value(self, value: str) -> tuple[int, ...]:
        """Return the page ids holding the posting list of ``value``."""
        return self._page_table.pages_of_value.get(value, ())

    def storage_bytes(self) -> int:
        """Total bytes of the simulated layout (pages are not padded)."""
        bytes_per_item = BYTES_PER_POSTING + (
            BYTES_PER_SUPER_KEY if self.include_super_keys else 0
        )
        return self.index.num_posting_items() * bytes_per_item

    # ------------------------------------------------------------------
    # Fetching
    # ------------------------------------------------------------------
    def _touch_page(self, page_id: int) -> bool:
        """Access one page; returns ``True`` on a buffer-pool hit."""
        if self.buffer_pool_pages == 0:
            return False
        if page_id in self._buffer:
            self._buffer.move_to_end(page_id)
            return True
        self._buffer[page_id] = None
        if len(self._buffer) > self.buffer_pool_pages:
            self._buffer.popitem(last=False)
        return False

    def _account_pages(self, probe_values: Sequence[str]) -> None:
        """Charge the buffer pool and cost model for one fetch of the values."""
        pages_needed: list[int] = []
        seen_pages: set[int] = set()
        for value in probe_values:
            for page_id in self.pages_for_value(value):
                if page_id not in seen_pages:
                    seen_pages.add(page_id)
                    pages_needed.append(page_id)

        cold = 0
        warm = 0
        for page_id in pages_needed:
            if self._touch_page(page_id):
                warm += 1
            else:
                cold += 1

        self.accounting.fetches += 1
        self.accounting.values_probed += len(probe_values)
        self.accounting.pages_read += cold
        self.accounting.pages_from_cache += warm
        self.accounting.estimated_seconds += self.cost_model.cost(cold, warm)

    def fetch(self, values: Iterable[str]) -> list[FetchedItem]:
        """Fetch PL items for ``values``, accounting for the pages touched.

        Returns exactly what :meth:`repro.index.InvertedIndex.fetch` returns;
        the side effect is the updated :attr:`accounting`.
        """
        probe_values = [value for value in dict.fromkeys(values) if value != ""]
        self._account_pages(probe_values)
        items = self.index.fetch(probe_values)
        self.accounting.items_returned += len(items)
        return items

    def fetch_batch(self, values: Iterable[str]) -> list[FetchBlock]:
        """Fetch packed blocks for ``values``, accounting for the pages touched.

        The struct-of-arrays sibling of :meth:`fetch`: identical accounting,
        but the result is what :meth:`repro.index.InvertedIndex.fetch_batch`
        returns (so the discovery engine's columnar hot path can run on top
        of the simulated paged store).
        """
        probe_values = [value for value in dict.fromkeys(values) if value != ""]
        self._account_pages(probe_values)
        blocks = self.index.fetch_batch(probe_values)
        self.accounting.items_returned += sum(len(block) for block in blocks)
        return blocks

    def estimated_fetch_seconds(self, values: Sequence[str]) -> float:
        """Estimate the cold-cache cost of fetching ``values`` without fetching.

        Used by the fetch-cost experiment to compare initial-column choices
        without mutating the buffer pool.
        """
        pages: set[int] = set()
        for value in dict.fromkeys(values):
            pages.update(self.pages_for_value(value))
        return self.cost_model.cost(len(pages), 0)

    def reset_accounting(self) -> None:
        """Clear the accumulated accounting and empty the buffer pool."""
        self.accounting = FetchAccounting()
        self._buffer.clear()


# ----------------------------------------------------------------------
# Binary mmap segments
# ----------------------------------------------------------------------
def _write_region(handle, data) -> int:
    """Write one 8-byte-aligned region; return its file offset."""
    position = handle.tell()
    padding = (-position) % 8
    if padding:
        handle.write(b"\x00" * padding)
        position += padding
    handle.write(data)
    return position


def _column_bytes(column, typecode: str) -> bytes:
    """Native-order raw bytes of a posting column (any backing container)."""
    if isinstance(column, array) and column.typecode == typecode:
        return column.tobytes()
    if isinstance(column, memoryview) and column.format == typecode:
        return bytes(column)
    return array(typecode, column).tobytes()


def write_segment(
    index: InvertedIndex, path: str | Path, fsync: bool = True
) -> Path:
    """Persist a columnar index as one binary mmap-able ``.seg`` file.

    Layout: leading :data:`SEGMENT_MAGIC`, then 8-byte-aligned raw regions —
    per value the three posting columns (native byte order) plus, when every
    row's key fits the configured width, the packed big-endian super-key
    column (exactly the vectorized prefilter kernels' input); then one
    global row table ((table_id, row_index) pairs sorted ascending, with a
    parallel packed key buffer) for point lookups; then a JSON directory
    naming every region, and the CRC-protected fixed footer.  Oversize
    (spilled) super keys travel in the directory as hex strings.

    The file is written to a temporary sibling and atomically renamed, so a
    crash mid-write never leaves a half-segment under the target name.
    """
    if index.layout != "columnar":
        raise SegmentFormatError(
            f"segment files require the columnar layout (got {index.layout!r})"
        )
    # The packed store behind the index (intra-package by design: the
    # segment format *is* the store's wire format).
    store = index._super_keys
    width = getattr(store, "width_bytes", 0) or max(1, (index.hash_size + 7) // 8)
    limit = 1 << (8 * width)

    pairs = array("q")
    packed_rows = bytearray()
    spill: list[list[object]] = []
    for table_id, row_index, super_key in sorted(index.iter_super_keys()):
        if 0 <= super_key < limit:
            pairs.append(table_id)
            pairs.append(row_index)
            packed_rows += super_key.to_bytes(width, "big")
        else:
            spill.append([table_id, row_index, format(super_key, "x")])

    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + ".tmp")
    with tmp.open("wb") as handle:
        handle.write(SEGMENT_MAGIC)
        values: list[list[object]] = []
        for value in index.values():
            columns = index.posting_columns(value)
            if columns is None or not len(columns):
                continue
            packed = columns.super_key_packed(store)
            entry: list[object] = [
                value,
                len(columns),
                _write_region(handle, _column_bytes(columns.table_ids, "q")),
                _write_region(
                    handle, _column_bytes(columns.column_indexes, "i")
                ),
                _write_region(handle, _column_bytes(columns.row_indexes, "q")),
                None if packed is None else _write_region(handle, bytes(packed)),
            ]
            values.append(entry)
        pairs_offset = _write_region(handle, pairs.tobytes())
        keys_offset = _write_region(handle, bytes(packed_rows))
        directory = json.dumps(
            {
                "format_version": SEGMENT_FORMAT_VERSION,
                "byteorder": sys.byteorder,
                "hash_function": index.hash_function_name,
                "hash_size": index.hash_size,
                "key_width": width,
                "values": values,
                "rows": [len(pairs) // 2, pairs_offset, keys_offset],
                "spill": spill,
            },
            separators=(",", ":"),
        ).encode("utf-8")
        directory_offset = _write_region(handle, directory)
        handle.write(
            _SEGMENT_FOOTER.pack(
                directory_offset,
                len(directory),
                crc32(directory) & 0xFFFFFFFF,
                SEGMENT_FOOTER_MAGIC,
            )
        )
        handle.flush()
        if fsync:
            os.fsync(handle.fileno())
    tmp.replace(path)
    if fsync:
        fd = os.open(path.parent, os.O_RDONLY)
        try:
            os.fsync(fd)
        finally:
            os.close(fd)
    return path


def load_segment(path: str | Path) -> "MappedSegmentIndex":
    """Map a ``.seg`` file written by :func:`write_segment` (read-only).

    Startup cost is the JSON directory parse only: posting columns and
    super-key buffers stay in the mapping and are served through zero-copy
    :class:`memoryview` casts, so a multi-GB segment opens in milliseconds
    and its pages are shared between processes mapping the same file.
    Structural damage — wrong magic, torn footer, checksum mismatch, region
    offsets outside the file — raises
    :class:`~repro.exceptions.SegmentFormatError`.
    """
    path = Path(path)
    if not path.exists():
        raise StorageError(f"segment file does not exist: {path}")
    size = path.stat().st_size
    if size < len(SEGMENT_MAGIC) + _SEGMENT_FOOTER.size:
        raise SegmentFormatError(
            f"segment file {path} is truncated ({size} bytes; a valid "
            f"segment needs at least "
            f"{len(SEGMENT_MAGIC) + _SEGMENT_FOOTER.size})"
        )
    with path.open("rb") as handle:
        mapping = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
    try:
        if mapping[: len(SEGMENT_MAGIC)] != SEGMENT_MAGIC:
            raise SegmentFormatError(
                f"segment file {path} has a wrong leading magic "
                f"(not a segment file?)"
            )
        directory_offset, directory_length, checksum, trailer = (
            _SEGMENT_FOOTER.unpack(mapping[size - _SEGMENT_FOOTER.size :])
        )
        if trailer != SEGMENT_FOOTER_MAGIC:
            raise SegmentFormatError(
                f"segment file {path} has a torn footer (missing trailing "
                f"magic); the file was truncated or the write never finished"
            )
        if (
            directory_offset < len(SEGMENT_MAGIC)
            or directory_offset + directory_length > size - _SEGMENT_FOOTER.size
        ):
            raise SegmentFormatError(
                f"segment file {path} directory points outside the file"
            )
        directory = mapping[
            directory_offset : directory_offset + directory_length
        ]
        if crc32(directory) & 0xFFFFFFFF != checksum:
            raise SegmentFormatError(
                f"segment file {path} directory checksum mismatch "
                f"(corrupt or torn file)"
            )
        try:
            payload = json.loads(directory.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise SegmentFormatError(
                f"segment file {path} has an unparsable directory: {exc}"
            ) from exc
        return MappedSegmentIndex(path, mapping, payload, directory_offset)
    except BaseException:
        mapping.close()
        raise


def reopen_segment(
    path: str | Path,
    *,
    hash_function_name: str | None = None,
    hash_size: int | None = None,
) -> "MappedSegmentIndex":
    """Map a segment in another process, validating its hash configuration.

    The worker side of the process-pool serving mode: a shard-owning worker
    reopens the ``.seg`` file the pool parent wrote and must end up with an
    index whose XASH parameters match the engine configuration it was told
    to run — otherwise super-key prefiltering would silently reject every
    row.  Pass the expected ``hash_function_name`` / ``hash_size`` (both
    optional) and the mismatch becomes a loud
    :class:`~repro.exceptions.ConfigurationError` at startup instead of an
    empty result set at query time.

    The mapping itself is identical to :func:`load_segment`; reopening the
    same file from many workers shares its pages through the OS page cache.
    """
    from ..exceptions import ConfigurationError

    index = load_segment(path)
    try:
        if (
            hash_function_name is not None
            and index.hash_function_name != hash_function_name
        ):
            raise ConfigurationError(
                f"segment {path} was built with hash function "
                f"{index.hash_function_name!r}, worker expects "
                f"{hash_function_name!r}"
            )
        if hash_size is not None and index.hash_size != hash_size:
            raise ConfigurationError(
                f"segment {path} was built with hash_size "
                f"{index.hash_size}, worker expects {hash_size}"
            )
    except BaseException:
        index.close()
        raise
    return index


class MappedSuperKeys:
    """Read-only per-row super keys over one segment's mapped row table.

    Point lookups binary-search the sorted ``(table_id, row_index)`` pair
    column; packed columns are assembled with slice copies from the mapped
    key buffer.  The store is immutable, so its ``epoch`` is forever 0 and
    every memoised column computed from it stays valid for the life of the
    mapping.  Oversize (spilled) keys live in a small plain dictionary.
    """

    __slots__ = ("width_bytes", "epoch", "_pairs", "_keys", "_count", "_spill")

    def __init__(self, pairs, keys, count: int, width_bytes: int, spill: dict):
        self.width_bytes = width_bytes
        self.epoch = 0
        self._pairs = pairs
        self._keys = keys
        self._count = count
        self._spill = spill

    def __len__(self) -> int:
        return self._count + len(self._spill)

    def _slot(self, table_id: int, row_index: int) -> int:
        pairs = self._pairs
        low, high = 0, self._count
        while low < high:
            mid = (low + high) // 2
            position = 2 * mid
            if (pairs[position], pairs[position + 1]) < (table_id, row_index):
                low = mid + 1
            else:
                high = mid
        position = 2 * low
        if (
            low < self._count
            and pairs[position] == table_id
            and pairs[position + 1] == row_index
        ):
            return low
        return -1

    def __contains__(self, key: tuple[int, int]) -> bool:
        return key in self._spill or self._slot(*key) >= 0

    def get(self, key: tuple[int, int], default: int | None = 0) -> int | None:
        """Return the super key stored under ``key`` (or ``default``)."""
        slot = self._slot(*key)
        if slot < 0:
            return self._spill.get(key, default)
        width = self.width_bytes
        offset = slot * width
        return int.from_bytes(self._keys[offset : offset + width], "big")

    def set(self, key: tuple[int, int], value: int) -> None:
        raise IndexError_(
            "mapped segments are read-only; rewrite the segment file to "
            "change super keys"
        )

    def or_into(self, key: tuple[int, int], value_hash: int) -> int:
        raise IndexError_(
            "mapped segments are read-only; rewrite the segment file to "
            "change super keys"
        )

    def pop(self, key: tuple[int, int]) -> None:
        raise IndexError_(
            "mapped segments are read-only; rewrite the segment file to "
            "change super keys"
        )

    def items(self) -> Iterator[tuple[tuple[int, int], int]]:
        """Iterate over ``((table_id, row_index), super_key)`` pairs."""
        pairs = self._pairs
        keys = self._keys
        width = self.width_bytes
        from_bytes = int.from_bytes
        for slot in range(self._count):
            position = 2 * slot
            offset = slot * width
            yield (
                (pairs[position], pairs[position + 1]),
                from_bytes(keys[offset : offset + width], "big"),
            )
        yield from self._spill.items()

    def get_many(
        self, table_ids: Sequence[int], row_indexes: Sequence[int]
    ) -> list[int]:
        """Return the super keys of the given rows (0 when absent), in order."""
        get = self.get
        return [get(key, 0) for key in zip(table_ids, row_indexes)]

    def get_many_packed(
        self, table_ids: Sequence[int], row_indexes: Sequence[int]
    ) -> bytes | None:
        """Packed key column of the given rows (``None`` on any spilled key).

        The hot path never reaches this method: every value's packed column
        is stored in the segment and pre-memoised at load time; this slow
        per-row assembly only serves ad-hoc row sets.
        """
        width = self.width_bytes
        keys = self._keys
        spill = self._spill
        out = bytearray(len(table_ids) * width)
        position = 0
        for key in zip(table_ids, row_indexes):
            slot = self._slot(*key)
            if slot < 0:
                if spill and key in spill:
                    return None
            else:
                offset = slot * width
                out[position : position + width] = keys[offset : offset + width]
            position += width
        return bytes(out)

    def table_ids_present(self) -> set[int]:
        """Distinct table ids owning at least one row (pairs are sorted)."""
        tables: set[int] = set()
        pairs = self._pairs
        for position in range(0, 2 * self._count, 2):
            tables.add(pairs[position])
        tables.update(table_id for table_id, _row in self._spill)
        return tables

    def detach(self) -> None:
        """Drop the mapped views (the owning index is closing)."""
        pairs = self._pairs
        keys = self._keys
        self._pairs = array("q")
        self._keys = b""
        self._count = 0
        self._spill = {}
        for view in (pairs, keys):
            if isinstance(view, memoryview):
                view.release()


class MappedSegmentIndex(InvertedIndex):
    """A read-only :class:`~repro.index.InvertedIndex` over one mapped file.

    Serves the full read surface — ``fetch`` / ``fetch_batch`` /
    ``posting_columns`` / ``super_key`` / iteration — with posting columns
    that are :class:`memoryview` casts straight into the mapping (zero
    copy); per-value packed super-key columns come pre-memoised from the
    file, so the first ``fetch_batch`` is as warm as a repeated one.
    Mutations raise :class:`~repro.exceptions.IndexError_`; :meth:`close`
    unmaps the file, after which any fetch raises
    :class:`~repro.exceptions.IndexClosedError`.
    """

    def __init__(self, path: Path, mapping: mmap.mmap, payload: dict, data_end: int):
        try:
            version = int(payload["format_version"])
            if version != SEGMENT_FORMAT_VERSION:
                raise SegmentFormatError(
                    f"segment file {path} has unsupported format version "
                    f"{version} (supported: {SEGMENT_FORMAT_VERSION})"
                )
            byteorder = payload["byteorder"]
            if byteorder not in ("little", "big"):
                raise SegmentFormatError(
                    f"segment file {path} declares unknown byte order "
                    f"{byteorder!r}"
                )
            super().__init__(
                hash_function_name=payload["hash_function"],
                hash_size=int(payload["hash_size"]),
                layout="columnar",
            )
            self.path = path
            self._mm: mmap.mmap | None = mapping
            self._data: memoryview | None = memoryview(mapping)
            self._data_end = data_end
            # Cross-endian segments load through a byteswapped copy; the
            # zero-copy fast path requires matching native order.
            swap = byteorder != sys.byteorder
            width = int(payload["key_width"])
            if width <= 0:
                raise SegmentFormatError(
                    f"segment file {path} declares invalid key width {width}"
                )
            count, pairs_offset, keys_offset = payload["rows"]
            count = int(count)
            store = MappedSuperKeys(
                self._int_column(pairs_offset, 2 * count, "q", swap),
                self._region(keys_offset, count * width, "row key buffer"),
                count,
                width,
                {
                    (int(table_id), int(row_index)): int(key_hex, 16)
                    for table_id, row_index, key_hex in payload["spill"]
                },
            )
            self._super_keys = store
            for value, n, tids, cols, rows, keys in payload["values"]:
                n = int(n)
                columns = ColumnarPostingList()
                columns.table_ids = self._int_column(tids, n, "q", swap)
                columns.column_indexes = self._int_column(cols, n, "i", swap)
                columns.row_indexes = self._int_column(rows, n, "q", swap)
                columns._packed_cache = (
                    store,
                    0,
                    n,
                    None
                    if keys is None
                    else self._region(keys, n * width, "super-key column"),
                )
                self._postings[value] = columns
        except SegmentFormatError:
            raise
        except (KeyError, TypeError, ValueError, struct.error) as exc:
            raise SegmentFormatError(
                f"segment file {path} has a malformed directory: {exc}"
            ) from exc

    # ------------------------------------------------------------------
    # Region access
    # ------------------------------------------------------------------
    def _region(self, offset, length: int, what: str) -> memoryview:
        offset = int(offset)
        if (
            offset < len(SEGMENT_MAGIC)
            or length < 0
            or offset + length > self._data_end
        ):
            raise SegmentFormatError(
                f"segment file {self.path}: {what} region "
                f"[{offset}, {offset + length}) lies outside the payload"
            )
        assert self._data is not None
        return self._data[offset : offset + length]

    def _int_column(self, offset, n: int, typecode: str, swap: bool):
        itemsize = array(typecode).itemsize
        view = self._region(offset, n * itemsize, f"'{typecode}' column")
        if not swap:
            return view.cast(typecode)
        column = array(typecode)
        column.frombytes(bytes(view))
        column.byteswap()
        return column

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Unmap the segment file (idempotent).

        Any later ``fetch`` / ``fetch_batch`` raises
        :class:`~repro.exceptions.IndexClosedError`.  Fetch blocks handed
        out earlier keep their buffers alive: the OS unmaps the pages when
        the last exported view is released.
        """
        if self._closed:
            return
        self._closed = True
        self._postings = {}
        self._table_rows = {}
        store = self._super_keys
        if isinstance(store, MappedSuperKeys):
            store.detach()
        data = self._data
        self._data = None
        if data is not None:
            data.release()
        mapping = self._mm
        self._mm = None
        if mapping is not None:
            try:
                mapping.close()
            except BufferError:
                # Still-exported buffers (live fetch blocks) pin the
                # mapping; it goes away with their last reference.
                pass

    # ------------------------------------------------------------------
    # Read-only surface adjustments
    # ------------------------------------------------------------------
    def indexed_tables(self) -> set[int]:
        """Return the ids of all tables with at least one indexed row."""
        store = self._super_keys
        if isinstance(store, MappedSuperKeys):
            return store.table_ids_present()
        return super().indexed_tables()

    def _read_only(self, operation: str) -> None:
        self._ensure_open(operation)
        raise IndexError_(
            f"{operation} on the read-only mapped segment {self.path}; "
            "rebuild and rewrite the file to change it"
        )

    def add_posting(self, *args, **kwargs) -> None:
        self._read_only("add_posting")

    def set_posting_columns(self, *args, **kwargs) -> None:
        self._read_only("set_posting_columns")

    def set_super_key(self, *args, **kwargs) -> None:
        self._read_only("set_super_key")

    def or_into_super_key(self, *args, **kwargs) -> int:
        self._read_only("or_into_super_key")
        raise AssertionError("unreachable")

    def remove_table(self, *args, **kwargs) -> int:
        self._read_only("remove_table")
        raise AssertionError("unreachable")

    def remove_row(self, *args, **kwargs) -> int:
        self._read_only("remove_row")
        raise AssertionError("unreachable")

    def remove_column(self, *args, **kwargs) -> int:
        self._read_only("remove_column")
        raise AssertionError("unreachable")
