"""Relational data model used throughout the MATE reproduction.

The paper operates on web tables and open-data tables: small relational
tables identified by an id, with named columns and string-typed cells.  This
module provides the minimal, immutable-by-convention building blocks:

* :class:`Table` — a corpus table with an id, a name, column names and rows.
* :class:`QueryTable` — a user-provided input table ``d`` together with the
  selected composite key ``Q`` (Section 2 of the paper).

Cell values are normalised to lowercase stripped strings when they enter the
system (:func:`normalize_value`), mirroring the preprocessing of the reference
implementation; ``None`` and empty strings are treated as missing values and
never participate in joins.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

from ..exceptions import DataModelError

#: Placeholder used internally for missing cells.
MISSING: str = ""


def normalize_value(value: object) -> str:
    """Normalise a raw cell value into the canonical string representation.

    * ``None`` becomes the empty string (treated as missing),
    * everything else is converted with :func:`str`, stripped and lowercased.

    >>> normalize_value("  Muhammad ")
    'muhammad'
    >>> normalize_value(42)
    '42'
    >>> normalize_value(None)
    ''
    """
    if value is None:
        return MISSING
    text = str(value).strip().lower()
    return text


class Row(tuple):
    """A single table row: an immutable tuple of normalised cell values."""

    __slots__ = ()

    def __new__(cls, values: Iterable[object]) -> "Row":
        return super().__new__(cls, (normalize_value(v) for v in values))

    def cell(self, column_index: int) -> str:
        """Return the value in ``column_index`` (0-based)."""
        return self[column_index]


@dataclass
class Table:
    """A corpus table.

    Parameters
    ----------
    table_id:
        Integer identifier unique within a corpus.
    name:
        Human-readable table name (used for reporting only).
    columns:
        Column names, one per column.
    rows:
        Row values; each row must have exactly ``len(columns)`` cells.  Rows
        are normalised on construction.
    """

    table_id: int
    name: str
    columns: list[str]
    rows: list[Row] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.table_id < 0:
            raise DataModelError(f"table_id must be non-negative, got {self.table_id}")
        if not self.columns:
            raise DataModelError(f"table {self.table_id!r} must have at least one column")
        if len(set(self.columns)) != len(self.columns):
            raise DataModelError(
                f"table {self.table_id!r} has duplicate column names: {self.columns}"
            )
        normalised_rows: list[Row] = []
        for position, row in enumerate(self.rows):
            if len(row) != len(self.columns):
                raise DataModelError(
                    f"table {self.table_id!r} row {position} has {len(row)} cells, "
                    f"expected {len(self.columns)}"
                )
            normalised_rows.append(row if isinstance(row, Row) else Row(row))
        self.rows = normalised_rows

    # ------------------------------------------------------------------
    # Shape helpers
    # ------------------------------------------------------------------
    @property
    def num_rows(self) -> int:
        """Number of rows in the table."""
        return len(self.rows)

    @property
    def num_columns(self) -> int:
        """Number of columns in the table."""
        return len(self.columns)

    def __len__(self) -> int:
        return self.num_rows

    def __iter__(self) -> Iterator[Row]:
        return iter(self.rows)

    # ------------------------------------------------------------------
    # Access helpers
    # ------------------------------------------------------------------
    def column_index(self, column: str) -> int:
        """Return the index of column ``column``.

        Raises :class:`DataModelError` if the column does not exist.
        """
        try:
            return self.columns.index(column)
        except ValueError as exc:
            raise DataModelError(
                f"table {self.name!r} has no column {column!r}; "
                f"available: {self.columns}"
            ) from exc

    def column_values(self, column: str | int) -> list[str]:
        """Return all values of a column (by name or index), including repeats."""
        index = column if isinstance(column, int) else self.column_index(column)
        if not 0 <= index < self.num_columns:
            raise DataModelError(
                f"column index {index} out of range for table {self.name!r}"
            )
        return [row[index] for row in self.rows]

    def distinct_column_values(self, column: str | int) -> set[str]:
        """Return the distinct non-missing values of a column."""
        return {v for v in self.column_values(column) if v != MISSING}

    def cardinality(self, column: str | int) -> int:
        """Return the number of distinct non-missing values in a column."""
        return len(self.distinct_column_values(column))

    def cell(self, row_index: int, column: str | int) -> str:
        """Return a single cell value."""
        index = column if isinstance(column, int) else self.column_index(column)
        try:
            return self.rows[row_index][index]
        except IndexError as exc:
            raise DataModelError(
                f"cell ({row_index}, {index}) out of range for table {self.name!r}"
            ) from exc

    def append_row(self, values: Iterable[object]) -> Row:
        """Append a row to the table and return the normalised row."""
        row = Row(values)
        if len(row) != self.num_columns:
            raise DataModelError(
                f"row has {len(row)} cells, expected {self.num_columns}"
            )
        self.rows.append(row)
        return row

    def projection(self, columns: Sequence[str | int]) -> set[tuple[str, ...]]:
        """Return the distinct projection of the table onto ``columns``.

        This is ``pi_X(R)`` from Eq. 1 of the paper: a set of value tuples.
        Tuples containing only missing values are excluded.
        """
        indexes = [
            c if isinstance(c, int) else self.column_index(c) for c in columns
        ]
        projected: set[tuple[str, ...]] = set()
        for row in self.rows:
            values = tuple(row[i] for i in indexes)
            if any(v != MISSING for v in values):
                projected.add(values)
        return projected

    def to_dicts(self) -> list[dict[str, str]]:
        """Return the table content as a list of column-name keyed dicts."""
        return [dict(zip(self.columns, row)) for row in self.rows]

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"Table(id={self.table_id}, name={self.name!r}, "
            f"columns={self.num_columns}, rows={self.num_rows})"
        )


@dataclass
class QueryTable:
    """A query table ``d`` together with its composite key ``Q``.

    The composite key is the ordered list of query-column names the user
    selected (Section 2); the order matters only for reporting, joinability is
    defined over the best column mapping.
    """

    table: Table
    key_columns: list[str]

    def __post_init__(self) -> None:
        if not self.key_columns:
            raise DataModelError("a query table needs at least one key column")
        if len(set(self.key_columns)) != len(self.key_columns):
            raise DataModelError(
                f"duplicate key columns in query: {self.key_columns}"
            )
        for column in self.key_columns:
            self.table.column_index(column)  # raises if missing

    @property
    def key_size(self) -> int:
        """Number of columns in the composite key (``|Q|``)."""
        return len(self.key_columns)

    @property
    def key_indexes(self) -> list[int]:
        """Column indexes of the key columns inside the query table."""
        return [self.table.column_index(c) for c in self.key_columns]

    def key_tuples(self) -> set[tuple[str, ...]]:
        """Return the distinct composite-key value tuples (``pi_Q(d)``)."""
        return self.table.projection(self.key_columns)

    def key_rows(self) -> list[tuple[str, ...]]:
        """Return the key projection of every row, in row order (with repeats)."""
        indexes = self.key_indexes
        return [tuple(row[i] for i in indexes) for row in self.table.rows]

    def column_cardinalities(self) -> dict[str, int]:
        """Return the cardinality of each key column (used by the heuristics)."""
        return {c: self.table.cardinality(c) for c in self.key_columns}

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"QueryTable(table={self.table.name!r}, key={self.key_columns}, "
            f"rows={self.table.num_rows})"
        )


def table_from_dicts(
    table_id: int, name: str, records: Sequence[dict[str, object]]
) -> Table:
    """Build a :class:`Table` from a list of dictionaries.

    The column order is taken from the first record; all records must share
    the same keys.
    """
    if not records:
        raise DataModelError("cannot build a table from an empty record list")
    columns = list(records[0].keys())
    rows: list[list[object]] = []
    for position, record in enumerate(records):
        if set(record.keys()) != set(columns):
            raise DataModelError(
                f"record {position} keys {sorted(record)} do not match "
                f"columns {sorted(columns)}"
            )
        rows.append([record[c] for c in columns])
    return Table(table_id=table_id, name=name, columns=columns, rows=[Row(r) for r in rows])
