"""Table corpus abstraction.

A :class:`TableCorpus` is the collection of candidate tables the discovery
system searches (the data lake).  In the paper this is the Dresden Web Table
Corpus or the German Open Data repository; here it is an in-memory collection
(optionally persisted through :mod:`repro.storage`).

Besides acting as a container the corpus computes the global statistics that
the indexing layer needs:

* the number of distinct cell values (feeds Eq. 5, the 1-bit budget of XASH),
* the average number of columns per table (feeds the bloom-filter baseline's
  optimal number of hash functions, Section 7.1.2),
* per-corpus row/column/value counts as reported in Section 7.1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from ..exceptions import CorpusError, DataModelError
from .table import MISSING, Table


@dataclass(frozen=True)
class CorpusStatistics:
    """Aggregate statistics of a corpus (Section 7.1 style)."""

    num_tables: int
    num_columns: int
    num_rows: int
    num_cells: int
    num_unique_values: int
    avg_columns_per_table: float
    avg_rows_per_table: float

    def as_dict(self) -> dict[str, float]:
        """Return the statistics as a plain dictionary (for reporting)."""
        return {
            "tables": self.num_tables,
            "columns": self.num_columns,
            "rows": self.num_rows,
            "cells": self.num_cells,
            "unique_values": self.num_unique_values,
            "avg_columns_per_table": self.avg_columns_per_table,
            "avg_rows_per_table": self.avg_rows_per_table,
        }


class TableCorpus:
    """An in-memory collection of :class:`~repro.datamodel.table.Table` objects."""

    def __init__(self, name: str = "corpus", tables: Iterable[Table] | None = None):
        self.name = name
        self._tables: dict[int, Table] = {}
        if tables is not None:
            for table in tables:
                self.add_table(table)

    # ------------------------------------------------------------------
    # Container protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._tables)

    def __iter__(self) -> Iterator[Table]:
        return iter(self._tables.values())

    def __contains__(self, table_id: int) -> bool:
        return table_id in self._tables

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add_table(self, table: Table) -> None:
        """Add a table to the corpus.

        Raises :class:`CorpusError` if a table with the same id is present.
        """
        if table.table_id in self._tables:
            raise CorpusError(
                f"corpus {self.name!r} already contains table id {table.table_id}"
            )
        self._tables[table.table_id] = table

    def add_tables(self, tables: Iterable[Table]) -> None:
        """Add several tables at once."""
        for table in tables:
            self.add_table(table)

    def remove_table(self, table_id: int) -> Table:
        """Remove and return a table.  Raises :class:`CorpusError` if absent."""
        try:
            return self._tables.pop(table_id)
        except KeyError as exc:
            raise CorpusError(
                f"corpus {self.name!r} has no table with id {table_id}"
            ) from exc

    def create_table(self, name: str, columns: list[str], rows: list) -> Table:
        """Create a table with the next free id, add it, and return it."""
        table = Table(
            table_id=self.next_table_id(), name=name, columns=columns, rows=rows
        )
        self.add_table(table)
        return table

    def next_table_id(self) -> int:
        """Return the smallest id larger than every id currently in use."""
        if not self._tables:
            return 0
        return max(self._tables) + 1

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def get_table(self, table_id: int) -> Table:
        """Return the table with id ``table_id``."""
        try:
            return self._tables[table_id]
        except KeyError as exc:
            raise CorpusError(
                f"corpus {self.name!r} has no table with id {table_id}"
            ) from exc

    def table_ids(self) -> list[int]:
        """Return all table ids in insertion order."""
        return list(self._tables)

    def get_row(self, table_id: int, row_index: int) -> tuple[str, ...]:
        """Return a row of a table as a tuple of values."""
        table = self.get_table(table_id)
        if not 0 <= row_index < table.num_rows:
            raise DataModelError(
                f"row {row_index} out of range for table {table_id} "
                f"({table.num_rows} rows)"
            )
        return tuple(table.rows[row_index])

    def get_cell(self, table_id: int, row_index: int, column_index: int) -> str:
        """Return a single cell of a table."""
        return self.get_table(table_id).cell(row_index, column_index)

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    def statistics(self) -> CorpusStatistics:
        """Compute aggregate statistics over the whole corpus."""
        num_tables = len(self._tables)
        num_columns = sum(t.num_columns for t in self)
        num_rows = sum(t.num_rows for t in self)
        num_cells = sum(t.num_rows * t.num_columns for t in self)
        unique_values: set[str] = set()
        for table in self:
            for row in table.rows:
                for value in row:
                    if value != MISSING:
                        unique_values.add(value)
        avg_columns = num_columns / num_tables if num_tables else 0.0
        avg_rows = num_rows / num_tables if num_tables else 0.0
        return CorpusStatistics(
            num_tables=num_tables,
            num_columns=num_columns,
            num_rows=num_rows,
            num_cells=num_cells,
            num_unique_values=len(unique_values),
            avg_columns_per_table=avg_columns,
            avg_rows_per_table=avg_rows,
        )

    def unique_values(self) -> set[str]:
        """Return the set of distinct non-missing cell values in the corpus."""
        values: set[str] = set()
        for table in self:
            for row in table.rows:
                values.update(v for v in row if v != MISSING)
        return values

    def average_columns_per_table(self) -> float:
        """Average number of columns per table (bloom-filter ``V`` parameter)."""
        if not self._tables:
            return 0.0
        return sum(t.num_columns for t in self) / len(self._tables)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"TableCorpus(name={self.name!r}, tables={len(self._tables)})"
