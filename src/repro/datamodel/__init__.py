"""Relational data model: tables, rows, query tables, and corpora."""

from .corpus import CorpusStatistics, TableCorpus
from .table import (
    MISSING,
    QueryTable,
    Row,
    Table,
    normalize_value,
    table_from_dicts,
)

__all__ = [
    "MISSING",
    "CorpusStatistics",
    "QueryTable",
    "Row",
    "Table",
    "TableCorpus",
    "normalize_value",
    "table_from_dicts",
]
