"""SQL-pushdown discovery: Algorithm 1 compiled into the SQLite store.

This package holds the first engine of the reproduction that does not
materialise posting lists in Python.  :mod:`repro.engine_sql.accelerator`
defines the denormalised posting/super-key schema and its build/validate
helpers; :mod:`repro.engine_sql.engine` compiles candidate generation, the
XASH reject, and the table-filter decisions into parameterised SQL over
that schema, leaving only row verification and top-k maintenance in
Python.  Registered as ``engine="sql"`` in the session registry.
"""

from .accelerator import (
    MAX_NARROW_HASH_SIZE,
    PUSHDOWN_FORMAT_VERSION,
    accelerator_matches,
    accelerator_meta,
    build_accelerator,
    ensure_accelerator,
    ensure_accelerator_schema,
    key_width,
    register_covers_function,
)
from .engine import PUSHDOWN_STAGES, STAGE_PUSHDOWN_SCAN, SQLPushdownEngine

__all__ = [
    "MAX_NARROW_HASH_SIZE",
    "PUSHDOWN_FORMAT_VERSION",
    "PUSHDOWN_STAGES",
    "STAGE_PUSHDOWN_SCAN",
    "SQLPushdownEngine",
    "accelerator_matches",
    "accelerator_meta",
    "build_accelerator",
    "ensure_accelerator",
    "ensure_accelerator_schema",
    "key_width",
    "register_covers_function",
]
