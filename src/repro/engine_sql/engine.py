"""The SQL-pushdown discovery engine: Algorithm 1 compiled into SQLite.

Every other engine of this reproduction materialises posting lists in Python
and filters them there.  :class:`SQLPushdownEngine` instead compiles the
data-heavy phases of one discovery run into two parameterised queries over
the accelerator schema (:mod:`repro.engine_sql.accelerator`):

* **candidate generation** — the seed column's probe values go into a TEMP
  table and one probe join + ``GROUP BY table_id`` returns each candidate
  table's posting count (the ``L_t`` of the pruning rules) without a single
  posting list crossing into Python;
* **the XASH reject** — per surviving candidate table, a second query
  reconstructs the mate engine's scan order with a window function
  (``ROW_NUMBER() OVER (ORDER BY probe order, posting position)``), joins
  the query's key super keys, and applies ``key & ~row_mask == 0`` — as
  native integer arithmetic when the hash fits 63 bits, else through the
  registered ``repro_covers`` BLOB function;
* **table filtering** — rule 1 stays the sorted-order early exit; rule 2's
  abandonment point is *replayed* in closed form from the passing row
  positions the query returned, so the pruning decisions (and every
  counter they feed) are identical to the scalar loop's.

Only the surviving ``(row, key tuple)`` pairs are row-verified in Python —
the exact containment check and Eq. 2 scoring reuse the same helpers as the
mate engine — so the returned top-k, column mappings, counters that survive
pushdown, and the ``complete`` flag are byte-for-byte identical to
``engine="mate"``, while ``pl_items_fetched`` and ``superkey_checks`` stay
at zero: those costs moved into the database.  The rows the database
scanned are reported as ``counters.extra["pushdown_rows_scanned"]``.

The engine serialises concurrent ``discover`` calls on one instance behind
a lock (its TEMP tables are per-connection state); sessions cache one
instance per request signature, so this mirrors how SQLite connections are
shared elsewhere.
"""

from __future__ import annotations

import sqlite3
import threading
from time import perf_counter
from typing import TYPE_CHECKING, Callable

from ..config import MateConfig
from ..core.column_selection import ColumnSelector, get_column_selector
from ..core.discovery import MateDiscovery
from ..core.filters import should_prune_table
from ..core.joinability import joinability_from_matches, row_contains_key
from ..core.results import DiscoveryResult
from ..core.topk import TopKHeap
from ..datamodel import QueryTable, TableCorpus
from ..exceptions import DiscoveryError
from ..hashing import SuperKeyGenerator
from ..index import InvertedIndex
from ..index.statistics import PostingVolumeEstimate
from ..metrics import DiscoveryCounters
from ..plan.planner import (
    PlanReport,
    QueryPlan,
    SeedCandidate,
    STAGE_ROW_VERIFICATION,
    STAGE_TOPK_MAINTENANCE,
)
from ..telemetry import trace as _trace
from .accelerator import (
    MAX_NARROW_HASH_SIZE,
    ensure_accelerator,
    key_width,
    register_covers_function,
    split_limbs,
)

if TYPE_CHECKING:  # pragma: no cover - imported for annotations only
    from ..api.request import RequestBudget
    from ..storage.sqlite import SQLiteBackend

#: Stage name of the pushed-down candidate generation + prefilter phase.
STAGE_PUSHDOWN_SCAN = "pushdown_scan"

#: The pushdown plan's stage tuple: one SQL scan stage replaces candidate
#: generation and the super-key prefilter; verification and top-k stay in
#: Python (they need corpus rows).
PUSHDOWN_STAGES: tuple[str, ...] = (
    STAGE_PUSHDOWN_SCAN,
    STAGE_ROW_VERIFICATION,
    STAGE_TOPK_MAINTENANCE,
)

#: Phase A: candidate tables with their posting counts (``L_t``), computed
#: entirely inside the store.  ``repro_probe`` holds the (budget-truncated)
#: probe values in probe order.  CROSS JOIN pins the join order — drive
#: from the few probe values into the ``pushdown_by_value`` index; left to
#: itself SQLite scans the postings and probes the index-less TEMP table,
#: which is O(postings × probes).
_CANDIDATES_SQL = """
SELECT a.table_id, COUNT(*)
FROM repro_probe AS p
CROSS JOIN pushdown_postings AS a INDEXED BY pushdown_by_value
  ON a.index_name = ? AND a.value = p.value
GROUP BY a.table_id
"""

#: Phase B: one candidate table's passing (row, key) pairs in the exact
#: order the mate engine's scalar loop would visit them.  ``block_pos``
#: numbers the table's items by (probe order, posting position) — the
#: per-table block order of ``fetch_table_blocks`` — *before* the key join,
#: so positions are stable regardless of how many keys match.  The
#: ``pushdown_by_table`` index is forced so each candidate scan touches
#: only that table's postings (O(block) per table, O(scanned) overall)
#: instead of re-walking every probe value's full posting list.
_SCAN_SQL = """
SELECT t.block_pos, t.row_index, k.key_ord
FROM (
    SELECT a.value AS value, a.row_index AS row_index,
           a.super_key AS super_key,
           a.super_key_hi AS super_key_hi, a.super_key_lo AS super_key_lo,
           ROW_NUMBER() OVER (ORDER BY p.ord, a.pos) - 1 AS block_pos
    FROM repro_probe AS p
    CROSS JOIN pushdown_postings AS a INDEXED BY pushdown_by_table
      ON a.index_name = ? AND a.table_id = ? AND a.value = p.value
) AS t
JOIN repro_keys AS k ON k.value = t.value
{covers}
ORDER BY t.block_pos, k.key_ord
"""

#: Pure-SQL reject over the signed 64-bit limb columns (hash ≤ 128 bits).
#: SQLite bitwise ops work on the raw two's-complement bit pattern, so the
#: signed representation is transparent here.
_COVERS_NARROW = (
    "WHERE (k.key_lo & ~t.super_key_lo) = 0 "
    "AND (k.key_hi & ~t.super_key_hi) = 0"
)
#: BLOB reject through the registered deterministic function (wider keys).
_COVERS_WIDE = "WHERE repro_covers(t.super_key, k.key_sk)"

_TEMP_SCHEMA = """
CREATE TEMP TABLE IF NOT EXISTS repro_probe (
    ord INTEGER PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TEMP TABLE IF NOT EXISTS repro_keys (
    key_ord INTEGER PRIMARY KEY,
    value TEXT NOT NULL,
    key_sk BLOB NOT NULL,
    key_hi INTEGER,
    key_lo INTEGER
);
CREATE INDEX IF NOT EXISTS repro_keys_by_value
    ON repro_keys (value, key_ord);
"""


class SQLPushdownEngine:
    """Top-k joinable table discovery pushed down into the SQLite store.

    Parameters mirror :class:`~repro.core.discovery.MateDiscovery` where
    they mean the same thing.  ``backend`` attaches the engine to a
    :class:`~repro.storage.sqlite.SQLiteBackend`: the accelerator is
    ensured inside that database (built once, reused across engines and
    process restarts) and queried over a WAL read connection.  Without a
    backend the engine builds a private in-memory accelerator from
    ``index`` at construction time — a one-time cost, so discovery runs
    still perform zero Python-side posting fetches.

    ``row_filter_mode`` supports ``"superkey"`` (the real MATE reject) and
    ``"none"`` (the SCR-style pass-through).  ``"oracle"`` needs the corpus
    row of every posting *during* filtering and therefore cannot be pushed
    down; requesting it raises.
    """

    system_name = "sql"
    #: Instance-level capability flag (see ``DiscoverySession._run_kwargs``).
    supports_budget = True

    # Probe/key-map semantics are inherited verbatim from the mate engine so
    # the two can never disagree on what gets probed.
    _complete_key_tuples = staticmethod(MateDiscovery._complete_key_tuples)
    _build_key_super_key_map = MateDiscovery._build_key_super_key_map
    probe_values = MateDiscovery.probe_values

    def __init__(
        self,
        corpus: TableCorpus,
        index: InvertedIndex,
        config: MateConfig | None = None,
        hash_function_name: str | None = None,
        column_selector: ColumnSelector | str = "cardinality",
        row_filter_mode: str = "superkey",
        use_table_filters: bool = True,
        *,
        backend: "SQLiteBackend | None" = None,
        index_name: str = "main",
    ):
        self.corpus = corpus
        self.index = index
        self.config = config or MateConfig()
        self.hash_function_name = hash_function_name or index.hash_function_name
        if row_filter_mode not in ("superkey", "none"):
            raise DiscoveryError(
                f'engine "sql" cannot push down row_filter_mode '
                f"{row_filter_mode!r}: it needs the corpus row of every "
                "posting during filtering; supported modes are "
                "'superkey' and 'none'"
            )
        if (
            row_filter_mode == "superkey"
            and self.hash_function_name != index.hash_function_name
        ):
            raise DiscoveryError(
                "the discovery hash function must match the index "
                f"({self.hash_function_name!r} != {index.hash_function_name!r})"
            )
        for attribute in ("values", "posting_list", "super_key"):
            if not hasattr(index, attribute):
                raise DiscoveryError(
                    f'engine "sql" requires a monolithic index exposing '
                    f"{attribute}() (got {type(index).__name__})"
                )
        self.super_key_generator = SuperKeyGenerator.from_name(
            self.hash_function_name, self.config
        )
        self.column_selector = (
            get_column_selector(column_selector)
            if isinstance(column_selector, str)
            else column_selector
        )
        self.row_filter_mode = row_filter_mode
        self.use_table_filters = use_table_filters
        self._index_name = index_name
        self._lock = threading.Lock()
        self._owned: list[sqlite3.Connection] = []
        if backend is not None:
            backend.ensure_pushdown(index_name, index)
            connection = backend.read_connection()
            if backend.path != ":memory:":
                # A file-backed read connection is ours to close; the shared
                # in-memory connection belongs to the backend.
                self._owned.append(connection)
        else:
            connection = sqlite3.connect(":memory:", check_same_thread=False)
            self._owned.append(connection)
            ensure_accelerator(connection, index_name, index)
        register_covers_function(connection)
        connection.executescript(_TEMP_SCHEMA)
        self._connection = connection
        narrow = (
            index.hash_size <= MAX_NARROW_HASH_SIZE
            and self.super_key_generator.hash_size <= MAX_NARROW_HASH_SIZE
        )
        self._key_blob_width = key_width(self.super_key_generator.hash_size)
        if row_filter_mode == "none":
            covers = ""
        elif narrow:
            covers = _COVERS_NARROW
        else:
            covers = _COVERS_WIDE
        self._scan_sql = _SCAN_SQL.format(covers=covers)
        self._narrow = narrow

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Close connections the engine owns (idempotent)."""
        owned, self._owned = self._owned, []
        for connection in owned:
            connection.close()

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def discover(
        self,
        query: QueryTable,
        k: int | None = None,
        *,
        budget: "RequestBudget | None" = None,
        on_snapshot: "Callable[[list[tuple[int, int]]], None] | None" = None,
    ) -> DiscoveryResult:
        """Return the top-k joinable tables for ``query``.

        Semantics — including budget charging (one ``max_pl_fetches`` unit
        per probe value, pushdown or not, so a budgeted run truncates the
        same probe list as the mate engine), deadline checks, streaming
        snapshots, and the ``complete`` flag — match
        :meth:`MateDiscovery.discover
        <repro.core.discovery.MateDiscovery.discover>` exactly.
        """
        if k is None:
            k = self.config.k
        if k <= 0:
            raise DiscoveryError(f"k must be positive, got {k}")
        counters = DiscoveryCounters()
        started = perf_counter()
        chosen = self.column_selector(query, self.index)
        if chosen not in query.key_columns:
            raise DiscoveryError(
                f"initial column {chosen!r} is not a key column of the query"
            )
        plan = QueryPlan(
            mode="pushdown",
            seed=SeedCandidate(
                column=chosen,
                probe_count=0,
                estimate=PostingVolumeEstimate(
                    values=0, sampled=0, estimated_postings=0.0, exact=False
                ),
                cost=0.0,
            ),
            stages=PUSHDOWN_STAGES,
        )
        report = PlanReport(plan=plan, seed_column=chosen)
        topk = TopKHeap(k)
        mappings: dict[int, tuple[int, ...] | None] = {}

        with self._lock:
            candidates, key_entries = self._pushdown_candidates(
                query, chosen, budget, counters, report
            )
            for position, (table_id, posting_count) in enumerate(candidates):
                if budget is not None and budget.deadline_expired():
                    break
                if self.use_table_filters and should_prune_table(
                    posting_count, topk
                ):
                    counters.tables_pruned_by_rule1 += (
                        len(candidates) - position
                    )
                    break
                surviving = self._scan_table(
                    table_id, posting_count, topk, counters, key_entries
                )
                joinability, mapping = self._verify_rows(
                    table_id, surviving, counters
                )
                counters.tables_evaluated += 1
                self._maintain_topk(
                    topk, mappings, table_id, joinability, mapping,
                    on_snapshot, counters,
                )

        complete = True
        if budget is not None:
            counters.budget_exhausted = int(budget.exhausted)
            counters.deadline_expired = int(budget.expired)
            complete = budget.complete
        counters.runtime_seconds = perf_counter() - started
        if _trace._ACTIVE:
            self._emit_spans(plan, counters, k)
        names = {
            table_id: self.corpus.get_table(table_id).name
            for table_id, _ in topk.result_tuples()
        }
        return DiscoveryResult.from_ranked(
            system=self.system_name,
            k=k,
            ranked=topk.results(),
            counters=counters,
            mappings=mappings,
            names=names,
            complete=complete,
            plan=report,
        )

    # ------------------------------------------------------------------
    # Phase A: candidate generation in SQL
    # ------------------------------------------------------------------
    def _pushdown_candidates(
        self,
        query: QueryTable,
        column: str,
        budget: "RequestBudget | None",
        counters: DiscoveryCounters,
        report: PlanReport,
    ) -> tuple[list[tuple[int, int]], list[tuple[str, ...]]]:
        """Load the probe/key TEMP tables and return sorted candidates.

        Returns ``(candidates, key_entries)`` where candidates are
        ``(table_id, posting_count)`` in the mate engine's processing order
        (count descending, id ascending) and ``key_entries[key_ord]`` maps
        the SQL-side key ordinal back to its key tuple.
        """
        stats = counters.stage_stats(STAGE_PUSHDOWN_SCAN)
        stats.calls += 1
        started = perf_counter()
        try:
            key_map = self._build_key_super_key_map(query, column)
            probe_values = list(key_map)
            if budget is not None:
                # Identical charging to the mate engine: one posting-list
                # fetch unit per probe value, deterministic truncation.  The
                # database scans rows instead of Python fetching lists, but
                # the ledger must not depend on the engine or a budgeted
                # request would return different tables per engine.
                if budget.deadline_expired():
                    probe_values = []
                else:
                    granted = budget.take_pl_fetches(len(probe_values))
                    probe_values = probe_values[:granted]

            connection = self._connection
            connection.execute("DELETE FROM repro_probe")
            connection.execute("DELETE FROM repro_keys")
            connection.executemany(
                "INSERT INTO repro_probe (ord, value) VALUES (?, ?)",
                list(enumerate(probe_values)),
            )
            key_entries: list[tuple[str, ...]] = []
            key_rows = []
            width = self._key_blob_width
            for value in probe_values:
                for key_tuple, key_super_key in key_map[value]:
                    hi, lo = (
                        split_limbs(key_super_key)
                        if self._narrow
                        else (None, None)
                    )
                    key_rows.append(
                        (
                            len(key_entries),
                            value,
                            key_super_key.to_bytes(width, "big"),
                            hi,
                            lo,
                        )
                    )
                    key_entries.append(key_tuple)
            connection.executemany(
                "INSERT INTO repro_keys "
                "(key_ord, value, key_sk, key_hi, key_lo) "
                "VALUES (?, ?, ?, ?, ?)",
                key_rows,
            )
            counts = connection.execute(
                _CANDIDATES_SQL, (self._index_name,)
            ).fetchall()
            candidates = sorted(
                ((table_id, count) for table_id, count in counts),
                key=lambda entry: (-entry[1], entry[0]),
            )
            scanned = sum(count for _, count in candidates)
            counters.candidate_tables = len(candidates)
            counters.extra["initial_column_cardinality"] = float(
                len(probe_values)
            )
            counters.extra["pushdown_rows_scanned"] = float(scanned)
            report.observed_postings += scanned
        finally:
            stats.seconds += perf_counter() - started
        stats.items_in += len(probe_values)
        stats.items_out += scanned
        return candidates, key_entries

    # ------------------------------------------------------------------
    # Phase B: the pushed-down prefilter + rule-2 replay
    # ------------------------------------------------------------------
    def _scan_table(
        self,
        table_id: int,
        posting_count: int,
        topk: TopKHeap,
        counters: DiscoveryCounters,
        key_entries: list[tuple[str, ...]],
    ) -> list[tuple[int, tuple[str, ...]]]:
        """Run the reject in SQL and replay rule 2 over the pass positions.

        The scalar loop abandons a table at the first scan position where
        even a perfect outcome of the remaining rows cannot beat ``j_k``:
        with ``need = L_t - j_k`` failures required, that is one past the
        ``need``-th failing position.  Both ``j_k`` and the top-k fullness
        are fixed while one table is scanned (the heap only updates after
        verification), so the abandonment point is a pure function of the
        pass positions the query returned — no per-item Python loop needed.
        """
        stats = counters.stage_stats(STAGE_PUSHDOWN_SCAN)
        stats.calls += 1
        started = perf_counter()
        try:
            pairs = self._connection.execute(
                self._scan_sql, (self._index_name, table_id)
            ).fetchall()
            cutoff = posting_count
            abandoned = False
            if self.use_table_filters and topk.is_full:
                need = posting_count - topk.min_joinability()
                # Rule 1 admitted this table, so L_t > j_k and need >= 1.
                # Walk the distinct pass positions (pairs are ordered) and
                # push the candidate failure index past each pass it covers;
                # q lands on the need-th failing position.
                q = need - 1
                previous = -1
                for block_pos, _row_index, _key_ord in pairs:
                    if block_pos == previous:
                        continue
                    previous = block_pos
                    if block_pos <= q:
                        q += 1
                    else:
                        break
                if q + 1 <= posting_count - 1:
                    abandoned = True
                    cutoff = q + 1
            counters.rows_checked += cutoff
            if abandoned:
                counters.tables_pruned_by_rule2 += 1
            surviving = [
                (row_index, key_entries[key_ord])
                for block_pos, row_index, key_ord in pairs
                if block_pos < cutoff
            ]
        finally:
            stats.seconds += perf_counter() - started
        stats.items_in += posting_count
        stats.items_out += len(surviving)
        return surviving

    # ------------------------------------------------------------------
    # Row verification + top-k (Python; identical to the mate stages)
    # ------------------------------------------------------------------
    def _verify_rows(
        self,
        table_id: int,
        surviving: list[tuple[int, tuple[str, ...]]],
        counters: DiscoveryCounters,
    ) -> tuple[int, tuple[int, ...] | None]:
        stats = counters.stage_stats(STAGE_ROW_VERIFICATION)
        stats.calls += 1
        started = perf_counter()
        try:
            verified: list[tuple[tuple[str, ...], tuple[str, ...]]] = []
            row_outcome: dict[tuple[int, int], bool] = {}
            get_row = self.corpus.get_row
            for row_index, key_tuple in surviving:
                row = get_row(table_id, row_index)
                counters.value_comparisons += len(row) * len(key_tuple)
                location = (table_id, row_index)
                if row_contains_key(row, key_tuple):
                    verified.append((row, key_tuple))
                    row_outcome[location] = True
                else:
                    row_outcome.setdefault(location, False)
            counters.rows_passed_filter += len(row_outcome)
            counters.true_positive_rows += sum(
                1 for hit in row_outcome.values() if hit
            )
            counters.false_positive_rows += sum(
                1 for hit in row_outcome.values() if not hit
            )
            joinability, mapping = joinability_from_matches(verified)
        finally:
            stats.seconds += perf_counter() - started
        stats.items_in += len(surviving)
        stats.items_out += len(verified)
        return joinability, mapping

    def _maintain_topk(
        self,
        topk: TopKHeap,
        mappings: dict[int, tuple[int, ...] | None],
        table_id: int,
        joinability: int,
        mapping: tuple[int, ...] | None,
        on_snapshot: "Callable[[list[tuple[int, int]]], None] | None",
        counters: DiscoveryCounters,
    ) -> None:
        stats = counters.stage_stats(STAGE_TOPK_MAINTENANCE)
        stats.calls += 1
        started = perf_counter()
        try:
            kept = topk.update(table_id, joinability)
            if kept:
                mappings[table_id] = mapping
                if on_snapshot is not None:
                    on_snapshot(topk.result_tuples())
        finally:
            stats.seconds += perf_counter() - started
        stats.items_in += 1
        stats.items_out += int(kept)

    # ------------------------------------------------------------------
    # Telemetry
    # ------------------------------------------------------------------
    def _emit_spans(
        self, plan: QueryPlan, counters: DiscoveryCounters, k: int
    ) -> None:
        """Mirror the executor's span shape so traces look uniform."""
        entry = _trace.current_entry()
        if entry is None:
            return
        tracer, parent = entry
        exec_span = tracer.emit(
            "plan.execute",
            parent,
            duration=counters.runtime_seconds,
            attributes={
                "seed_column": plan.seed.column,
                "k": k,
                "pl_items_fetched": counters.pl_items_fetched,
                "tables_evaluated": counters.tables_evaluated,
            },
        )
        for name, stats in counters.stages.items():
            tracer.emit(
                f"stage.{name}",
                exec_span,
                duration=stats.seconds,
                attributes={
                    "calls": stats.calls,
                    "items_in": stats.items_in,
                    "items_out": stats.items_out,
                },
                start=exec_span.start,
            )
