"""The pushdown accelerator schema: postings + super keys, SQL-queryable.

The normal posting tables of :class:`~repro.storage.sqlite.SQLiteBackend`
are byte stores — the columnar layout even packs whole posting lists into
BLOBs — so SQL cannot filter *inside* them.  The accelerator denormalises an
index into one row per posting-list item with the row's super key packed
alongside it:

* ``pushdown_postings(index_name, value, pos, table_id, column_index,
  row_index, super_key, super_key_int)`` — ``pos`` is the item's position
  within the value's posting list (the fetch order the mate engine sees),
  ``super_key`` is the row super key as a fixed-width big-endian BLOB, and
  ``super_key_int`` carries the same value as a plain integer when the hash
  fits a signed 64-bit word (enabling the pure-SQL bitwise reject);
* ``pushdown_meta(index_name, hash_function, hash_size, key_width,
  item_count, format_version)`` — the provenance a consumer validates
  before trusting the accelerator.

Everything here operates on a plain :class:`sqlite3.Connection` so the
storage backend can delegate without importing the engine, and the engine
can build a private in-memory accelerator when no backend is attached.
"""

from __future__ import annotations

import sqlite3
from typing import TYPE_CHECKING

from ..exceptions import StorageError

if TYPE_CHECKING:  # pragma: no cover - imported for annotations only
    from ..index import InvertedIndex

#: Bump on any change to the accelerator row format; a mismatch triggers a
#: rebuild on the next engine construction.
PUSHDOWN_FORMAT_VERSION = 1

#: Hash sizes whose super keys fit two signed 64-bit SQLite integers (the
#: ``super_key_hi`` / ``super_key_lo`` limb columns) — the reject can then
#: run as native bitwise arithmetic instead of calling the registered BLOB
#: comparison function per row.  Covers the default 128-bit XASH.
MAX_NARROW_HASH_SIZE = 128


def split_limbs(value: int) -> tuple[int, int]:
    """Split a ≤128-bit unsigned integer into signed 64-bit (hi, lo) limbs.

    SQLite integers are signed 64-bit two's complement; bitwise ``&``/``~``
    and the ``= 0`` comparison operate on the raw bit pattern, so the limbs
    only need a representation shift, not a semantic one.
    """

    def signed(limb: int) -> int:
        return limb - (1 << 64) if limb >= (1 << 63) else limb

    return signed(value >> 64), signed(value & ((1 << 64) - 1))

_ACCELERATOR_SCHEMA = """
CREATE TABLE IF NOT EXISTS pushdown_postings (
    index_name TEXT NOT NULL,
    value TEXT NOT NULL,
    pos INTEGER NOT NULL,
    table_id INTEGER NOT NULL,
    column_index INTEGER NOT NULL,
    row_index INTEGER NOT NULL,
    super_key BLOB NOT NULL,
    super_key_hi INTEGER,
    super_key_lo INTEGER
);
CREATE INDEX IF NOT EXISTS pushdown_by_value
    ON pushdown_postings (index_name, value, pos);
CREATE INDEX IF NOT EXISTS pushdown_by_table
    ON pushdown_postings (index_name, table_id, value);
CREATE TABLE IF NOT EXISTS pushdown_meta (
    index_name TEXT PRIMARY KEY,
    hash_function TEXT NOT NULL,
    hash_size INTEGER NOT NULL,
    key_width INTEGER NOT NULL,
    item_count INTEGER NOT NULL,
    format_version INTEGER NOT NULL
);
"""

_META_COLUMNS = (
    "hash_function",
    "hash_size",
    "key_width",
    "item_count",
    "format_version",
)


def key_width(hash_size: int) -> int:
    """Bytes needed to hold a ``hash_size``-bit super key (at least one)."""
    return max(1, (hash_size + 7) // 8)


def ensure_accelerator_schema(connection: sqlite3.Connection) -> None:
    """Create the accelerator tables if missing (idempotent)."""
    connection.executescript(_ACCELERATOR_SCHEMA)


def register_covers_function(connection: sqlite3.Connection) -> None:
    """Register the XASH reject over packed super-key BLOBs.

    ``repro_covers(row_super_key, key_super_key)`` implements line 18 of
    Algorithm 1 — every set bit of the key must be set in the row mask,
    i.e. ``key & ~row == 0`` — on big-endian BLOBs of any width (Python
    integers make mixed widths safe).  Deterministic, so SQLite may cache
    and reorder calls freely.
    """

    def covers(row_blob: bytes, key_blob: bytes) -> int:
        row = int.from_bytes(row_blob, "big")
        key = int.from_bytes(key_blob, "big")
        return int(key & ~row == 0)

    connection.create_function("repro_covers", 2, covers, deterministic=True)


def build_accelerator(
    connection: sqlite3.Connection, name: str, index: "InvertedIndex"
) -> int:
    """(Re)build the accelerator for ``index`` under ``name``; returns items.

    ``pos`` enumerates each value's posting list in storage order, which is
    exactly the order :func:`repro.index.columnar.fetch_table_blocks`
    assembles per-table blocks in — the pushdown engine reconstructs the
    mate engine's scan order from ``(probe order, pos)``.
    """
    for attribute in ("values", "posting_list", "super_key"):
        if not hasattr(index, attribute):
            raise StorageError(
                "cannot build a pushdown accelerator from "
                f"{type(index).__name__}: it does not expose {attribute}()"
            )
    ensure_accelerator_schema(connection)
    width = key_width(index.hash_size)
    narrow = index.hash_size <= MAX_NARROW_HASH_SIZE

    def iter_rows():
        for value in index.values():
            for pos, item in enumerate(index.posting_list(value)):
                super_key = index.super_key(item.table_id, item.row_index)
                hi, lo = split_limbs(super_key) if narrow else (None, None)
                yield (
                    name,
                    value,
                    pos,
                    item.table_id,
                    item.column_index,
                    item.row_index,
                    super_key.to_bytes(width, "big"),
                    hi,
                    lo,
                )

    with connection:
        connection.execute(
            "DELETE FROM pushdown_postings WHERE index_name = ?", (name,)
        )
        connection.execute(
            "DELETE FROM pushdown_meta WHERE index_name = ?", (name,)
        )
        connection.executemany(
            "INSERT INTO pushdown_postings "
            "(index_name, value, pos, table_id, column_index, row_index, "
            "super_key, super_key_hi, super_key_lo) "
            "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)",
            iter_rows(),
        )
        (item_count,) = connection.execute(
            "SELECT COUNT(*) FROM pushdown_postings WHERE index_name = ?",
            (name,),
        ).fetchone()
        connection.execute(
            "INSERT INTO pushdown_meta "
            "(index_name, hash_function, hash_size, key_width, item_count, "
            "format_version) VALUES (?, ?, ?, ?, ?, ?)",
            (
                name,
                index.hash_function_name,
                index.hash_size,
                width,
                item_count,
                PUSHDOWN_FORMAT_VERSION,
            ),
        )
    return item_count


def accelerator_meta(
    connection: sqlite3.Connection, name: str
) -> dict[str, object] | None:
    """Return the accelerator's metadata row, or ``None`` when absent.

    Absent covers a dropped/corrupted ``pushdown_meta`` table too — the
    caller's answer to both is the same (rebuild), so they report the same.
    """
    try:
        row = connection.execute(
            "SELECT hash_function, hash_size, key_width, item_count, "
            "format_version FROM pushdown_meta WHERE index_name = ?",
            (name,),
        ).fetchone()
    except sqlite3.Error:
        return None
    if row is None:
        return None
    return dict(zip(_META_COLUMNS, row))


def accelerator_matches(
    connection: sqlite3.Connection, name: str, index: "InvertedIndex"
) -> bool:
    """Whether a valid, current accelerator for ``index`` exists.

    Validates provenance (hash function, hash size, key width, format
    version) and that the stored item count matches the actual row count —
    a truncated or tampered accelerator fails this and gets rebuilt.
    """
    meta = accelerator_meta(connection, name)
    if meta is None:
        return False
    if (
        meta["hash_function"] != index.hash_function_name
        or meta["hash_size"] != index.hash_size
        or meta["key_width"] != key_width(index.hash_size)
        or meta["format_version"] != PUSHDOWN_FORMAT_VERSION
    ):
        return False
    try:
        (count,) = connection.execute(
            "SELECT COUNT(*) FROM pushdown_postings WHERE index_name = ?",
            (name,),
        ).fetchone()
    except sqlite3.Error:
        return False
    return count == meta["item_count"]


def ensure_accelerator(
    connection: sqlite3.Connection, name: str, index: "InvertedIndex"
) -> int:
    """Build the accelerator unless a valid one is already present."""
    if accelerator_matches(connection, name, index):
        meta = accelerator_meta(connection, name)
        assert meta is not None  # accelerator_matches just read it
        return int(meta["item_count"])  # type: ignore[arg-type]
    return build_accelerator(connection, name, index)
