"""The legacy batch discovery service — now a shim over the unified API.

.. deprecated::
    :class:`DiscoveryService` predates the unified discovery API and is kept
    as a thin compatibility layer.  New code should use
    :class:`repro.api.session.DiscoverySession` with
    :class:`repro.api.request.DiscoveryRequest` objects, which adds engine
    selection, per-request budgets/deadlines, streaming results, and async
    submission on top of the batching this class exposed.

The service still answers every batch with the exact results a cold,
sequential :class:`~repro.core.discovery.MateDiscovery` run would produce —
probe-value deduplication, posting-list caching, and worker-pool scheduling
all live on (they moved into the session; this class forwards to it).

:class:`BatchStats` remains the aggregate accounting object of a batch, and
since failures inside a batch are now attributable (errors carry the engine
name and request label), it also records them: ``failed_queries`` counts the
requests that raised, ``failures`` keeps one attribution line each.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field

from ..config import MateConfig, ServiceConfig
from ..core.results import DiscoveryResult
from ..datamodel import QueryTable, TableCorpus
from ..metrics import CacheCounters


@dataclass
class BatchStats:
    """Aggregate accounting of one batch (service or session)."""

    #: Number of queries submitted in the batch (including failed ones).
    num_queries: int = 0
    #: ``k`` used for every query of the batch (0 when requests disagree).
    k: int = 0
    #: Wall-clock duration of the whole batch in seconds.
    batch_seconds: float = 0.0
    #: Distinct probe values across the batch (what the index actually saw).
    distinct_probe_values: int = 0
    #: Probe values shared between queries and therefore fetched only once.
    duplicate_probe_values: int = 0
    #: Cache activity attributable to this batch (delta over the batch).
    cache: CacheCounters = field(default_factory=CacheCounters)
    #: Requests that raised instead of producing a result.
    failed_queries: int = 0
    #: One attribution line per failure (engine name + request label + error).
    failures: list[str] = field(default_factory=list)

    @property
    def queries_per_second(self) -> float:
        """Batch throughput (0.0 before any timed work)."""
        if self.batch_seconds <= 0.0:
            return 0.0
        return self.num_queries / self.batch_seconds

    def as_dict(self) -> dict[str, float]:
        """Return the statistics (plus derived metrics) as a dictionary."""
        result = {
            "num_queries": self.num_queries,
            "k": self.k,
            "batch_seconds": self.batch_seconds,
            "queries_per_second": self.queries_per_second,
            "distinct_probe_values": self.distinct_probe_values,
            "duplicate_probe_values": self.duplicate_probe_values,
            "failed_queries": self.failed_queries,
        }
        result.update(self.cache.as_dict())
        return result


@dataclass
class BatchDiscoveryResult:
    """Per-query results plus aggregate statistics of one batch."""

    #: One :class:`DiscoveryResult` per submitted query, in submission order.
    results: list[DiscoveryResult]
    #: Aggregate timing / deduplication / cache statistics.
    stats: BatchStats

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self):
        return iter(self.results)

    def __getitem__(self, position: int) -> DiscoveryResult:
        return self.results[position]


class DiscoveryService:
    """Deprecated facade: batches of queries over one (optionally sharded) index.

    Construction parameters are unchanged from earlier releases (corpus,
    index, :class:`~repro.config.MateConfig`,
    :class:`~repro.config.ServiceConfig`, plus engine keyword arguments);
    they are translated into a :class:`~repro.api.session.DiscoverySession`
    and default :class:`~repro.api.request.DiscoveryRequest` fields.  A
    caller that already owns a session passes it via ``session=`` and the
    shim routes everything through it — corpus, index, *and* the session's
    existing posting-list cache (no second cache is ever constructed).  Use
    the session directly for engine selection, budgets, streaming, or async
    submission.
    """

    system_name = "mate-service"

    def __init__(
        self,
        corpus: TableCorpus | None = None,
        index=None,
        config: MateConfig | None = None,
        service_config: ServiceConfig | None = None,
        hash_function_name: str | None = None,
        column_selector=None,
        row_filter_mode: str = "superkey",
        use_table_filters: bool = True,
        session=None,
    ):
        warnings.warn(
            "DiscoveryService is deprecated; use repro.DiscoverySession with "
            "repro.DiscoveryRequest (see the Public API section of the README)",
            DeprecationWarning,
            stacklevel=2,
        )
        from ..api.request import DiscoveryRequest
        from ..api.session import DiscoverySession
        from ..exceptions import ConfigurationError

        if session is not None:
            # A supplied session is the single source of truth: its corpus,
            # index, and cache serve every call, and the constructor refuses
            # conflicting state instead of silently duplicating it.
            if corpus is not None and corpus is not session.corpus:
                raise ConfigurationError(
                    "DiscoveryService(session=...) does not accept a "
                    "different corpus; the session's corpus is used"
                )
            if index is not None and index not in (
                session.index, session.base_index
            ):
                raise ConfigurationError(
                    "DiscoveryService(session=...) does not accept a "
                    "different index; the session's index is used"
                )
            if config is not None and config is not session.config:
                raise ConfigurationError(
                    "DiscoveryService(session=...) does not accept a "
                    "different config; the session's config is used"
                )
            if (
                service_config is not None
                and service_config is not session.service_config
            ):
                raise ConfigurationError(
                    "DiscoveryService(session=...) does not accept a "
                    "different service_config; the session's is used"
                )
            self._session = session
            self._owns_session = False
        else:
            if corpus is None:
                raise ConfigurationError(
                    "DiscoveryService requires a corpus (or a session=)"
                )
            self._session = DiscoverySession(
                corpus,
                index,
                config=config,
                service_config=service_config,
            )
            self._owns_session = True
        self.corpus = self._session.corpus
        self.config = self._session.config
        self.service_config = self._session.service_config
        # The session's (possibly cache-wrapped, possibly sharded) index —
        # kept as an attribute for backwards compatibility.
        self.index = self._session.index
        self._request_defaults = {
            "engine": "mate",
            "hash_function": hash_function_name,
            "row_filter_mode": row_filter_mode,
            "use_table_filters": use_table_filters,
        }
        if column_selector is not None:
            self._request_defaults["column_selector"] = column_selector
        self._request_factory = DiscoveryRequest

    @property
    def session(self):
        """The underlying :class:`~repro.api.session.DiscoverySession`."""
        return self._session

    def close(self) -> None:
        """Shut down the session — only if this shim constructed it.

        A borrowed ``session=`` stays open: its owner decides its lifetime.
        """
        if self._owns_session:
            self._session.close()

    def __enter__(self) -> "DiscoveryService":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _request(self, query: QueryTable, k: int | None):
        return self._request_factory(query=query, k=k, **self._request_defaults)

    # ------------------------------------------------------------------
    # Cache introspection
    # ------------------------------------------------------------------
    @property
    def cache_counters(self) -> CacheCounters:
        """Lifetime cache counters (zeros when caching is disabled)."""
        return self._session.cache_counters

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    def discover(self, query: QueryTable, k: int | None = None) -> DiscoveryResult:
        """Answer a single query (through the cache, no batching)."""
        return self._session.discover(self._request(query, k)).response

    def discover_batch(
        self, queries: list[QueryTable], k: int | None = None
    ) -> BatchDiscoveryResult:
        """Answer every query of ``queries`` and return results plus stats.

        Results are returned in submission order and are identical to what
        sequential :meth:`MateDiscovery.discover
        <repro.core.discovery.MateDiscovery.discover>` runs would produce on
        the same corpus and index.
        """
        batch = self._session.discover_batch(
            [self._request(query, k) for query in queries]
        )
        return BatchDiscoveryResult(
            results=[result.response for result in batch.results],
            stats=batch.stats,
        )
