"""The batch discovery service: deduplicated, cached, scheduled Algorithm 1.

:class:`DiscoveryService` is the serving layer the ROADMAP's "heavy traffic"
north star asks for.  It accepts a *batch* of
:class:`~repro.datamodel.table.QueryTable` requests and answers each one with
the exact result a cold, sequential
:class:`~repro.core.discovery.MateDiscovery` run would produce, while doing
strictly less index work:

1. **Probe-value deduplication** — the initialization step of every query is
   known up front (initial column choice + its probe values), so the service
   unions the probe values of the whole batch, drops duplicates shared
   between queries, and warms the posting-list cache with one bulk ``fetch``
   (one fan-out across the shards of a
   :class:`~repro.index.sharded.ShardedInvertedIndex` instead of one per
   query).
2. **Posting-list caching** — queries then run against a
   :class:`~repro.service.cache.CachingIndex`, so each shared probe value
   hits the index exactly once per batch (and stays cached across batches up
   to the LRU capacity).
3. **Scheduling** — queries are dispatched serially or across a
   ``ThreadPoolExecutor`` (``ServiceConfig.max_workers``), the same
   worker-pool idiom :mod:`repro.core.parallel` uses for per-shard engines.

Per-query results keep their individual instrumentation counters; the batch
returns an aggregate :class:`BatchStats` with wall-clock throughput and the
cache hit/miss delta attributable to the batch.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

from ..config import MateConfig, ServiceConfig
from ..core import MateDiscovery
from ..core.results import DiscoveryResult
from ..datamodel import QueryTable, TableCorpus
from ..exceptions import DiscoveryError
from ..index import ShardedInvertedIndex
from ..metrics import CacheCounters
from .cache import CachingIndex


@dataclass
class BatchStats:
    """Aggregate accounting of one :meth:`DiscoveryService.discover_batch`."""

    #: Number of queries answered in the batch.
    num_queries: int = 0
    #: ``k`` used for every query of the batch.
    k: int = 0
    #: Wall-clock duration of the whole batch in seconds.
    batch_seconds: float = 0.0
    #: Distinct probe values across the batch (what the index actually saw).
    distinct_probe_values: int = 0
    #: Probe values shared between queries and therefore fetched only once.
    duplicate_probe_values: int = 0
    #: Cache activity attributable to this batch (delta over the batch).
    cache: CacheCounters = field(default_factory=CacheCounters)

    @property
    def queries_per_second(self) -> float:
        """Batch throughput (0.0 before any timed work)."""
        if self.batch_seconds <= 0.0:
            return 0.0
        return self.num_queries / self.batch_seconds

    def as_dict(self) -> dict[str, float]:
        """Return the statistics (plus derived metrics) as a dictionary."""
        result = {
            "num_queries": self.num_queries,
            "k": self.k,
            "batch_seconds": self.batch_seconds,
            "queries_per_second": self.queries_per_second,
            "distinct_probe_values": self.distinct_probe_values,
            "duplicate_probe_values": self.duplicate_probe_values,
        }
        result.update(self.cache.as_dict())
        return result


@dataclass
class BatchDiscoveryResult:
    """Per-query results plus aggregate statistics of one batch."""

    #: One :class:`DiscoveryResult` per submitted query, in submission order.
    results: list[DiscoveryResult]
    #: Aggregate timing / deduplication / cache statistics.
    stats: BatchStats

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self):
        return iter(self.results)

    def __getitem__(self, position: int) -> DiscoveryResult:
        return self.results[position]


class DiscoveryService:
    """Answers batches of discovery queries over one (optionally sharded) index.

    Parameters
    ----------
    corpus:
        The table corpus the index was built from.
    index:
        Any index satisfying the engine's query surface — a monolithic
        :class:`~repro.index.inverted.InvertedIndex` or a
        :class:`~repro.index.sharded.ShardedInvertedIndex`.  A monolithic
        index is partitioned per ``service_config.num_shards`` (> 1); an
        already-sharded index is used as-is.  Unless caching is disabled it
        is then wrapped in a :class:`~repro.service.cache.CachingIndex`.
    config:
        The :class:`~repro.config.MateConfig` shared with the engine.
    service_config:
        The serving knobs (shard count, cache capacity, batch and fetch
        workers); see :class:`~repro.config.ServiceConfig`.
    engine_kwargs:
        Extra keyword arguments forwarded to
        :class:`~repro.core.discovery.MateDiscovery` (column selector,
        row-filter mode, ...).
    """

    system_name = "mate-service"

    def __init__(
        self,
        corpus: TableCorpus,
        index,
        config: MateConfig | None = None,
        service_config: ServiceConfig | None = None,
        **engine_kwargs,
    ):
        self.corpus = corpus
        self.config = config or MateConfig()
        self.service_config = service_config or ServiceConfig()
        if self.service_config.num_shards > 1 and not isinstance(
            index, ShardedInvertedIndex
        ):
            index = ShardedInvertedIndex.from_index(
                index, self.service_config.num_shards
            )
        if (
            isinstance(index, ShardedInvertedIndex)
            and self.service_config.fetch_workers > 1
        ):
            index.max_workers = self.service_config.fetch_workers
        if self.service_config.cache_capacity > 0:
            self.index = CachingIndex(
                index, capacity=self.service_config.cache_capacity
            )
        else:
            self.index = index
        # One shared engine: its per-run state (heap, counters) is local to
        # each discover() call, so concurrent batch workers can reuse it and
        # share the memoised value hashes.
        self.engine = MateDiscovery(
            corpus, self.index, config=self.config, **engine_kwargs
        )

    # ------------------------------------------------------------------
    # Cache introspection
    # ------------------------------------------------------------------
    @property
    def cache_counters(self) -> CacheCounters:
        """Lifetime cache counters (zeros when caching is disabled)."""
        if isinstance(self.index, CachingIndex):
            return self.index.counters
        return CacheCounters()

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    def discover(self, query: QueryTable, k: int | None = None) -> DiscoveryResult:
        """Answer a single query (through the cache, no batching)."""
        return self.engine.discover(query, k=k)

    def discover_batch(
        self, queries: list[QueryTable], k: int | None = None
    ) -> BatchDiscoveryResult:
        """Answer every query of ``queries`` and return results plus stats.

        Results are returned in submission order and are identical to what
        sequential :meth:`MateDiscovery.discover
        <repro.core.discovery.MateDiscovery.discover>` runs would produce on
        the same corpus and index.
        """
        if k is None:
            k = self.config.k
        if k <= 0:
            raise DiscoveryError(f"k must be positive, got {k}")
        before = self.cache_counters.snapshot()
        started = time.perf_counter()

        distinct, duplicates = self._warm_cache(queries)

        workers = self.service_config.max_workers
        if workers > 1 and len(queries) > 1:
            with ThreadPoolExecutor(max_workers=workers) as pool:
                results = list(
                    pool.map(lambda query: self.engine.discover(query, k=k), queries)
                )
        else:
            results = [self.engine.discover(query, k=k) for query in queries]

        stats = BatchStats(
            num_queries=len(queries),
            k=k,
            batch_seconds=time.perf_counter() - started,
            distinct_probe_values=distinct,
            duplicate_probe_values=duplicates,
            cache=self.cache_counters.delta_since(before),
        )
        return BatchDiscoveryResult(results=results, stats=stats)

    # ------------------------------------------------------------------
    # Batch deduplication
    # ------------------------------------------------------------------
    def _warm_cache(self, queries: list[QueryTable]) -> tuple[int, int]:
        """Bulk-fetch the batch's deduplicated probe values into the cache.

        Returns ``(distinct, duplicates)``: the number of distinct probe
        values across the batch and how many per-query values collapsed onto
        an already-seen one.  Without a cache the bulk fetch would be wasted
        work, so the warm-up is skipped entirely.
        """
        if not isinstance(self.index, CachingIndex):
            return 0, 0
        total = 0
        merged: dict[str, None] = {}
        for query in queries:
            values = self.engine.probe_values(query)
            total += len(values)
            merged.update(dict.fromkeys(values))
        if merged:
            self.index.fetch_batch(merged)
        return len(merged), total - len(merged)
