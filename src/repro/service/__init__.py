"""The batch discovery service layer (serving-scale MATE).

This package turns the single-query :class:`~repro.core.discovery.MateDiscovery`
engine into a serving component, per the ROADMAP's production-scale north
star.  Three pieces compose, each usable on its own:

* :class:`~repro.index.sharded.ShardedInvertedIndex` (in :mod:`repro.index`)
  — the extended inverted index partitioned by value hash, fanning ``fetch``
  out across shards;
* :class:`~repro.service.cache.PostingListCache` /
  :class:`~repro.service.cache.CachingIndex` — a thread-safe LRU
  posting-list cache sitting transparently between the engine and any index,
  instrumented through :class:`~repro.metrics.counters.CacheCounters`;
* :class:`~repro.service.service.DiscoveryService` — batch admission:
  deduplicate the probe values shared across a batch of queries, warm the
  cache with one bulk fetch, schedule the queries over a worker pool, and
  return per-query :class:`~repro.core.results.DiscoveryResult` objects plus
  aggregate :class:`~repro.service.service.BatchStats`.

The serving knobs live in :class:`~repro.config.ServiceConfig`.  The public
front door over this machinery is the unified API
(:class:`repro.api.session.DiscoverySession`);
:class:`~repro.service.service.DiscoveryService` remains as a deprecated
shim over it.  Usage::

    from repro import DiscoveryRequest, DiscoverySession, MateConfig, ServiceConfig
    from repro.index import build_sharded_index

    config = MateConfig(k=10, expected_unique_values=100_000)
    index = build_sharded_index(corpus, num_shards=4, config=config)
    session = DiscoverySession(
        corpus, index, config=config,
        service_config=ServiceConfig(cache_capacity=8192, max_workers=4),
    )
    batch = session.discover_batch(
        [DiscoveryRequest(query=query) for query in queries]
    )
    for result in batch:
        print(result.table_ids())
    print(batch.stats.queries_per_second, batch.stats.cache.hit_rate)

Batch results are guaranteed identical to sequential cold
:class:`~repro.core.discovery.MateDiscovery` runs — the cache is
read-through and the shard fan-out is order-preserving
(``tests/test_service.py`` asserts both).
"""

from .cache import CachingIndex, PostingListCache
from .service import BatchDiscoveryResult, BatchStats, DiscoveryService

__all__ = [
    "BatchDiscoveryResult",
    "BatchStats",
    "CachingIndex",
    "DiscoveryService",
    "PostingListCache",
]
