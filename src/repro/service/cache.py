"""LRU posting-list cache and the transparent caching index wrapper.

Algorithm 1 spends its initialization step fetching posting lists for the
query's probe values (line 4).  In a serving deployment the same hot values
recur across queries — the Zipfian value distribution the paper's corpora
exhibit means a small cache absorbs a large share of the fetch traffic.  Two
classes implement the hot path:

* :class:`PostingListCache` — a thread-safe LRU mapping one probe value to
  its fetched postings — a packed struct-of-arrays
  :class:`~repro.index.columnar.FetchBlock` (the unit the columnar engine
  works with) or a tuple of :class:`~repro.index.posting.FetchedItem`
  records — instrumented with the
  :class:`~repro.metrics.counters.CacheCounters` hit/miss/eviction counters
  from :mod:`repro.metrics`;
* :class:`CachingIndex` — a read-through wrapper that sits between the
  discovery engine and *any* index (monolithic
  :class:`~repro.index.inverted.InvertedIndex` or
  :class:`~repro.index.sharded.ShardedInvertedIndex`), caching per-value
  fetch blocks while delegating the rest of the query surface unchanged.

Caching is transparent by construction: ``CachingIndex.fetch_batch`` returns
exactly what the wrapped index would return (same blocks, same order) and
``fetch`` flattens those blocks into the classic per-item records, so a
:class:`~repro.core.discovery.MateDiscovery` engine produces identical
results with or without the cache.  Mutations invalidate conservatively —
``add_posting`` drops the touched value, super-key updates and removals
clear the whole cache (cached blocks embed super-key columns, so any
super-key change can stale any entry).
"""

from __future__ import annotations

import threading
from collections import OrderedDict, defaultdict
from typing import Iterable

from ..datamodel import MISSING
from ..exceptions import ConfigurationError
from ..index import FetchBlock, FetchedItem
from ..index.columnar import blocks_from_fetch
from ..metrics import CacheCounters


class PostingListCache:
    """Thread-safe LRU cache of per-value fetch results.

    Entries map one probe value to its fetched postings — possibly empty,
    since negative results are cached too (a value absent from the index
    stays absent until a mutation).
    """

    def __init__(self, capacity: int = 4096, counters: CacheCounters | None = None):
        if capacity <= 0:
            raise ConfigurationError(
                f"cache capacity must be positive, got {capacity}"
            )
        #: Maximum number of cached values.
        self.capacity = capacity
        #: Hit/miss/eviction accounting (shared with the service layer).
        self.counters = counters or CacheCounters()
        self._entries: OrderedDict[str, FetchBlock] = OrderedDict()
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, value: str) -> bool:
        """Membership check without touching recency or the counters."""
        return value in self._entries

    def get(self, value: str) -> FetchBlock | None:
        """Return the cached block for ``value`` (``None`` on a miss).

        A hit refreshes the entry's recency; both outcomes are counted.
        """
        with self._lock:
            try:
                entry = self._entries[value]
            except KeyError:
                self.counters.misses += 1
                return None
            self._entries.move_to_end(value)
            self.counters.hits += 1
            return entry

    def put(
        self, value: str, items: FetchBlock | Iterable[FetchedItem]
    ) -> None:
        """Cache the fetch result of ``value``, evicting LRU entries if full.

        Accepts a packed :class:`~repro.index.columnar.FetchBlock` (stored
        as-is) or any iterable of :class:`FetchedItem` records (normalised
        to a block once, so hits never pay a conversion).
        """
        entry = (
            items
            if isinstance(items, FetchBlock)
            else FetchBlock.from_fetched_items(value, list(items))
        )
        with self._lock:
            self._entries[value] = entry
            self._entries.move_to_end(value)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.counters.evictions += 1

    def invalidate(self, value: str) -> None:
        """Drop the cached entry of one value (no-op when absent)."""
        with self._lock:
            self._entries.pop(value, None)

    def clear(self) -> None:
        """Drop every cached entry (counters are preserved)."""
        with self._lock:
            self._entries.clear()


class CachingIndex:
    """Read-through posting-list cache in front of any index.

    Wraps an :class:`~repro.index.inverted.InvertedIndex` or
    :class:`~repro.index.sharded.ShardedInvertedIndex` and serves
    ``fetch_batch`` per value from the LRU cache, falling back to one batched
    fetch of all missing values (so a sharded index still fans out once per
    request, not once per value).  Everything else — posting-list accessors,
    super keys, mutation, shard topology — is delegated to the wrapped index.
    """

    def __init__(
        self,
        index,
        capacity: int = 4096,
        cache: PostingListCache | None = None,
    ):
        self._index = index
        #: The underlying LRU cache (exposes the hit/miss counters).
        self.cache = cache or PostingListCache(capacity)

    @property
    def counters(self) -> CacheCounters:
        """The cache's hit/miss/eviction counters."""
        return self.cache.counters

    @property
    def wrapped(self):
        """The index this wrapper caches for."""
        return self._index

    # ------------------------------------------------------------------
    # Cached retrieval
    # ------------------------------------------------------------------
    def fetch_batch(self, values: Iterable[str]) -> list[FetchBlock]:
        """Fetch blocks for ``values``, serving cached values from the LRU.

        Identical output to the wrapped index's ``fetch_batch``: duplicate
        probe values collapse, missing values are skipped, per-value block
        order is preserved, and values without postings yield no block (an
        empty block is cached so the negative result is remembered).
        """
        ordered = [v for v in dict.fromkeys(values) if v != MISSING]
        resolved: dict[str, FetchBlock] = {}
        missing: list[str] = []
        for value in ordered:
            entry = self.cache.get(value)
            if entry is None:
                missing.append(value)
            else:
                resolved[value] = entry

        if missing:
            fetch_batch = getattr(self._index, "fetch_batch", None)
            if fetch_batch is not None:
                fetched = fetch_batch(missing)
            else:
                fetched = blocks_from_fetch(self._index.fetch(missing))
            produced = {block.value: block for block in fetched}
            for value in missing:
                block = produced.get(value)
                if block is None:
                    block = FetchBlock.empty(value)
                self.cache.put(value, block)
                resolved[value] = block

        return [
            resolved[value] for value in ordered if len(resolved[value])
        ]

    def fetch(self, values: Iterable[str]) -> list[FetchedItem]:
        """Fetch PL items for ``values``, serving cached values from the LRU.

        Identical output to the wrapped index's ``fetch``: duplicate probe
        values collapse, missing values are skipped, and per-value item
        order is preserved.
        """
        fetched: list[FetchedItem] = []
        for block in self.fetch_batch(values):
            fetched.extend(block)
        return fetched

    def fetch_grouped_by_table(
        self, values: Iterable[str]
    ) -> dict[int, list[FetchedItem]]:
        """Fetch PL items and group them by table id (line 5 of Algorithm 1)."""
        grouped: dict[int, list[FetchedItem]] = defaultdict(list)
        for item in self.fetch(values):
            grouped[item.table_id].append(item)
        return dict(grouped)

    # ------------------------------------------------------------------
    # Mutation (delegates, with conservative invalidation)
    # ------------------------------------------------------------------
    def add_posting(
        self, value: str, table_id: int, column_index: int, row_index: int
    ) -> None:
        """Add a PL item to the wrapped index and invalidate its value."""
        self._index.add_posting(value, table_id, column_index, row_index)
        self.cache.invalidate(value)

    def set_super_key(self, table_id: int, row_index: int, super_key: int) -> None:
        """Store a super key; clears the cache (cached blocks embed super keys)."""
        self._index.set_super_key(table_id, row_index, super_key)
        self.cache.clear()

    def or_into_super_key(self, table_id: int, row_index: int, value_hash: int) -> int:
        """Update a super key; clears the cache (cached blocks embed super keys)."""
        updated = self._index.or_into_super_key(table_id, row_index, value_hash)
        self.cache.clear()
        return updated

    def remove_table(self, table_id: int) -> int:
        """Remove a table from the wrapped index; clears the cache."""
        removed = self._index.remove_table(table_id)
        self.cache.clear()
        return removed

    def remove_row(self, table_id: int, row_index: int) -> int:
        """Remove a row from the wrapped index; clears the cache."""
        removed = self._index.remove_row(table_id, row_index)
        self.cache.clear()
        return removed

    def remove_column(self, table_id: int, column_index: int) -> int:
        """Remove a column from the wrapped index; clears the cache."""
        removed = self._index.remove_column(table_id, column_index)
        self.cache.clear()
        return removed

    # ------------------------------------------------------------------
    # Delegated query surface
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._index)

    def __contains__(self, value: str) -> bool:
        return value in self._index

    def __getattr__(self, name: str):
        """Delegate everything else (accessors, shard topology) to the index."""
        return getattr(self._index, name)
