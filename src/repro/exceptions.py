"""Exception hierarchy for the MATE reproduction library.

All library-specific errors derive from :class:`MateError` so that callers can
catch a single exception type at API boundaries while still being able to
distinguish configuration problems from data problems.

Every error can carry the *originating request context* — the engine name and
the :class:`~repro.api.request.DiscoveryRequest` (or a caller-supplied label)
that triggered it.  The :class:`~repro.api.session.DiscoverySession` attaches
that context via :meth:`MateError.with_context` when it dispatches requests,
so failures inside a batch remain attributable to one request in the batch
statistics instead of surfacing as anonymous errors.
"""

from __future__ import annotations


class MateError(Exception):
    """Base class for every error raised by this library.

    Parameters
    ----------
    message:
        Human-readable description of the failure.
    engine:
        Optional name of the discovery engine that was executing when the
        error occurred (e.g. ``"mate"``, ``"josie"``).
    request:
        Optional originating request — a
        :class:`~repro.api.request.DiscoveryRequest` or any object whose
        ``str()`` identifies the request (a label, a query-table name, ...).
    """

    def __init__(self, message: str = "", *, engine=None, request=None):
        super().__init__(message)
        self.engine = engine
        self.request = request

    def with_context(self, engine=None, request=None) -> "MateError":
        """Attach originating engine/request context (in place, returns self).

        Existing context is never overwritten, so the innermost (most
        specific) attribution wins when an error crosses several layers.
        """
        if self.engine is None and engine is not None:
            self.engine = engine
        if self.request is None and request is not None:
            self.request = request
        return self

    @property
    def context_label(self) -> str:
        """The attribution suffix, empty when no context was attached."""
        parts = []
        if self.engine is not None:
            parts.append(f"engine={self.engine}")
        if self.request is not None:
            label = getattr(self.request, "label", None)
            parts.append(f"request={label if label is not None else self.request}")
        return ", ".join(parts)

    def __str__(self) -> str:
        base = super().__str__()
        context = self.context_label
        if not context:
            return base
        return f"{base} [{context}]"


class ConfigurationError(MateError):
    """Raised when a :class:`repro.config.MateConfig` is invalid."""


class DataModelError(MateError):
    """Raised for malformed tables, columns, rows, or query specifications."""


class CorpusError(MateError):
    """Raised when an operation references a table that is not in the corpus."""


class IndexError_(MateError):
    """Raised for inconsistent inverted-index operations.

    Named with a trailing underscore to avoid shadowing the built-in
    :class:`IndexError`.
    """


class IndexClosedError(IndexError_):
    """Raised when a closed (or sealed) index is fetched from or mutated.

    Indexes are closed explicitly (:meth:`InvertedIndex.close
    <repro.index.inverted.InvertedIndex.close>`) or sealed by the ingestion
    layer (:meth:`IngestBuffer.seal <repro.ingest.buffer.IngestBuffer.seal>`);
    either way the object refuses further work with this typed error instead
    of failing with an incidental ``AttributeError``.
    """


class StorageError(MateError):
    """Raised by storage backends for persistence failures."""


class SegmentFormatError(StorageError):
    """Raised when a binary ``.seg`` segment file is malformed.

    Covers every structural defect :func:`repro.storage.paged.load_segment`
    can detect — missing or wrong magic numbers, a truncated or torn file,
    a directory checksum mismatch, or region offsets pointing outside the
    file — so callers can distinguish "corrupt segment" from ordinary I/O
    errors and fall back to recovery instead of crashing mid-open.
    """


class HashingError(MateError):
    """Raised when a hash function is misconfigured or misused."""


class DiscoveryError(MateError):
    """Raised when a discovery run is invoked with invalid inputs."""


class EngineNotFoundError(DiscoveryError):
    """Raised when a request names an engine that is not registered."""


class ExperimentError(MateError):
    """Raised by the experiment harness for invalid experiment setups."""
