"""Exception hierarchy for the MATE reproduction library.

All library-specific errors derive from :class:`MateError` so that callers can
catch a single exception type at API boundaries while still being able to
distinguish configuration problems from data problems.
"""

from __future__ import annotations


class MateError(Exception):
    """Base class for every error raised by this library."""


class ConfigurationError(MateError):
    """Raised when a :class:`repro.config.MateConfig` is invalid."""


class DataModelError(MateError):
    """Raised for malformed tables, columns, rows, or query specifications."""


class CorpusError(MateError):
    """Raised when an operation references a table that is not in the corpus."""


class IndexError_(MateError):
    """Raised for inconsistent inverted-index operations.

    Named with a trailing underscore to avoid shadowing the built-in
    :class:`IndexError`.
    """


class StorageError(MateError):
    """Raised by storage backends for persistence failures."""


class HashingError(MateError):
    """Raised when a hash function is misconfigured or misused."""


class DiscoveryError(MateError):
    """Raised when a discovery run is invoked with invalid inputs."""


class ExperimentError(MateError):
    """Raised by the experiment harness for invalid experiment setups."""
