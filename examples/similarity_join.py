"""Similarity (fuzzy) join discovery — the future-work direction of Section 9.

Web tables are full of near-duplicates: transliterated names, typos, trailing
whitespace, "st." vs "street".  The paper's conclusion notes that XASH's
syntactic features make it a natural prefilter for *similarity* joins; this
example runs the :class:`repro.extensions.SimilarityJoinDiscovery` extension
on a corpus where the most valuable candidate table only matches the query
key approximately, and contrasts the result with exact MATE discovery.

Run with::

    python examples/similarity_join.py
"""

from __future__ import annotations

from repro import MateConfig, MateDiscovery, QueryTable, Table, TableCorpus, build_index
from repro.extensions import SimilarityJoinDiscovery, xash_similarity
from repro.hashing import SuperKeyGenerator


def build_corpus() -> tuple[TableCorpus, QueryTable]:
    """A corpus with one exact match, one typo-ridden match, one distractor."""
    corpus = TableCorpus(name="fuzzy-lake")
    corpus.create_table(
        name="clean_directory",
        columns=["first", "last", "country", "phone"],
        rows=[
            ["muhammad", "lee", "us", "555-0100"],
            ["ansel", "adams", "uk", "555-0101"],
        ],
    )
    corpus.create_table(
        name="scraped_directory",  # one character off in every last name
        columns=["given_name", "family_name", "country"],
        rows=[
            ["muhammad", "leo", "us"],
            ["ansel", "adama", "uk"],
            ["helmut", "nevton", "germany"],
        ],
    )
    corpus.create_table(
        name="unrelated_names",
        columns=["name", "animal"],
        rows=[["muhammad", "owl"], ["ansel", "fox"], ["helmut", "lynx"]],
    )

    query_table = Table(
        table_id=100,
        name="query",
        columns=["first", "last", "country"],
        rows=[
            ["muhammad", "lee", "us"],
            ["ansel", "adams", "uk"],
            ["helmut", "newton", "germany"],
        ],
    )
    query = QueryTable(table=query_table, key_columns=["first", "last"])
    return corpus, query


def main() -> None:
    corpus, query = build_corpus()
    config = MateConfig(hash_size=128, k=3, expected_unique_values=100_000)
    index = build_index(corpus, config=config)

    # Exact n-ary discovery only finds the clean directory.
    exact = MateDiscovery(corpus, index, config=config).discover(query, k=3)
    print("exact MATE discovery:")
    for entry in exact.tables:
        print(
            f"  {corpus.get_table(entry.table_id).name:<20} "
            f"joinability={entry.joinability}"
        )

    # Similarity discovery also surfaces the scraped (typo-ridden) directory.
    fuzzy = SimilarityJoinDiscovery(
        corpus, index, config=config, max_distance=1, min_bit_overlap=0.5
    )
    print("\nsimilarity-join discovery (edit distance <= 1 per key value):")
    for result in fuzzy.discover(query, k=3):
        table = corpus.get_table(result.table_id)
        print(
            f"  {table.name:<20} similarity joinability={result.similarity_joinability} "
            f"(exact: {result.exact_joinability})"
        )
        for match in result.matches:
            if match.total_distance > 0:
                print(
                    f"      {match.key_tuple} matched {match.matched_values} "
                    f"(total edit distance {match.total_distance})"
                )

    # The XASH-bit similarity proxy that powers the prefilter.
    generator = SuperKeyGenerator.from_name("xash", config)
    print("\nXASH-bit similarity proxy (shares rare characters + length):")
    for first, second in [("adams", "adama"), ("newton", "nevton"), ("adams", "owl")]:
        print(f"  {first!r:10} vs {second!r:10}: "
              f"{xash_similarity(first, second, generator):.2f}")


if __name__ == "__main__":
    main()
