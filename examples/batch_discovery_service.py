"""Batch discovery serving: sharded index, posting-list cache, query batches.

The other examples run one query at a time against a cold index.  This one
shows the serving layer (a :class:`repro.DiscoverySession` — the unified API
over ``repro.service``'s cache and sharding) that the production-scale
deployment would expose: the extended inverted index is partitioned across
shards by value hash, an LRU cache keeps hot posting lists in memory, and a
whole *batch* of :class:`repro.DiscoveryRequest` objects is answered in one
call — with probe values shared between the queries fetched only once.

Run with::

    python examples/batch_discovery_service.py
"""

from __future__ import annotations

from repro import (
    DiscoveryRequest,
    DiscoverySession,
    MateConfig,
    MateDiscovery,
    QueryTable,
    ServiceConfig,
    Table,
    TableCorpus,
    build_index,
    build_sharded_index,
)


def build_corpus() -> TableCorpus:
    """A small data lake: person tables plus unrelated distractors."""
    corpus = TableCorpus(name="service-lake")
    corpus.create_table(
        name="employees_de",
        columns=["vorname", "nachname", "land", "besetzung"],
        rows=[
            ["Helmut", "Newton", "Germany", "Photographer"],
            ["Muhammad", "Lee", "US", "Dancer"],
            ["Ansel", "Adams", "UK", "Dancer"],
            ["Ansel", "Adams", "US", "Photographer"],
            ["Muhammad", "Ali", "US", "Boxer"],
            ["Muhammad", "Lee", "Germany", "Birder"],
        ],
    )
    corpus.create_table(
        name="payroll",
        columns=["first", "last", "country", "salary"],
        rows=[
            ["Muhammad", "Lee", "US", "60k"],
            ["Ansel", "Adams", "UK", "50k"],
            ["Helmut", "Newton", "Germany", "300k"],
            ["Gretchen", "Lee", "Germany", "70k"],
        ],
    )
    corpus.create_table(
        name="cities",
        columns=["city", "country", "population"],
        rows=[
            ["berlin", "germany", "3600000"],
            ["london", "uk", "8900000"],
            ["new york", "us", "8400000"],
        ],
    )
    return corpus


def build_queries() -> list[QueryTable]:
    """Three query tables; the first two share most of their probe values."""
    hr = Table(
        table_id=100,
        name="hr_export",
        columns=["f_name", "l_name", "country", "note"],
        rows=[
            ["Muhammad", "Lee", "US", "a"],
            ["Ansel", "Adams", "UK", "b"],
            ["Helmut", "Newton", "Germany", "c"],
        ],
    )
    audit = Table(
        table_id=101,
        name="audit_sample",
        columns=["f_name", "l_name", "country", "flag"],
        rows=[
            ["Muhammad", "Lee", "Germany", "x"],
            ["Ansel", "Adams", "US", "y"],
            ["Helmut", "Newton", "Germany", "z"],
        ],
    )
    census = Table(
        table_id=102,
        name="census_slice",
        columns=["city", "country", "code"],
        rows=[
            ["Berlin", "Germany", "b1"],
            ["London", "UK", "l1"],
        ],
    )
    return [
        QueryTable(table=hr, key_columns=["f_name", "l_name", "country"]),
        QueryTable(table=audit, key_columns=["f_name", "l_name", "country"]),
        QueryTable(table=census, key_columns=["city", "country"]),
    ]


def main() -> None:
    corpus = build_corpus()
    queries = build_queries()
    config = MateConfig(hash_size=128, k=2, expected_unique_values=100_000)

    # Offline: partition the extended inverted index across 2 shards.
    index = build_sharded_index(corpus, num_shards=2, config=config)
    print(
        f"sharded index: {index.num_posting_items()} posting items over "
        f"{index.num_shards} shards {index.shard_sizes()}"
    )

    # Online: one session call answers the whole batch.
    session = DiscoverySession(
        corpus,
        index,
        config=config,
        service_config=ServiceConfig(cache_capacity=256, max_workers=2),
    )
    requests = [DiscoveryRequest(query=query) for query in queries]
    batch = session.discover_batch(requests)

    print(f"\nbatch of {len(batch)} queries:")
    for query, result in zip(queries, batch):
        ranked = ", ".join(
            f"{entry.table_name} (joinability={entry.joinability})"
            for entry in result.tables
        )
        print(f"  {query.table.name}: {ranked}")

    stats = batch.stats
    print(
        f"\nprobe values: {stats.distinct_probe_values} distinct, "
        f"{stats.duplicate_probe_values} deduplicated across the batch"
    )
    print(f"cold cache hit rate: {stats.cache.hit_rate:.2f}")

    # The cache stays warm across batches: the same batch again is all hits.
    warm = session.discover_batch(requests)
    print(f"warm cache hit rate: {warm.stats.cache.hit_rate:.2f}")

    # Serving is exact: the batch reproduces cold sequential engine runs.
    reference = build_index(corpus, config=config)
    engine = MateDiscovery(corpus, reference, config=config)
    identical = all(
        served.result_tuples() == engine.discover(query).result_tuples()
        for query, served in zip(queries, batch)
    )
    print(f"identical to sequential discovery: {identical}")


if __name__ == "__main__":
    main()
