"""Quickstart: index a small corpus and find n-ary joinable tables with MATE.

This walks through the full pipeline on the paper's running example
(Figure 1): a query table ``d`` with the composite key
<F. Name, L. Name, Country> and a candidate table ``T1`` whose German column
names and shuffled column order hide the join.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    DiscoveryRequest,
    DiscoverySession,
    MateConfig,
    QueryTable,
    Table,
    TableCorpus,
    build_index,
)


def build_query_table() -> QueryTable:
    """The input table d of Figure 1 with its three-column composite key."""
    d = Table(
        table_id=0,
        name="d",
        columns=["f_name", "l_name", "country", "salary"],
        rows=[
            ["Muhammad", "Lee", "US", "60k"],
            ["Ansel", "Adams", "UK", "50k"],
            ["Ansel", "Adams", "US", "400k"],
            ["Muhammad", "Lee", "Germany", "90k"],
            ["Helmut", "Newton", "Germany", "300k"],
        ],
    )
    return QueryTable(table=d, key_columns=["f_name", "l_name", "country"])


def build_corpus() -> TableCorpus:
    """A tiny data lake: the candidate table T1 plus unrelated tables."""
    corpus = TableCorpus(name="figure1-lake")
    corpus.add_table(
        Table(
            table_id=1,
            name="T1",
            columns=["vorname", "nachname", "land", "besetzung"],
            rows=[
                ["Helmut", "Newton", "Germany", "Photographer"],
                ["Muhammad", "Lee", "US", "Dancer"],
                ["Ansel", "Adams", "UK", "Dancer"],
                ["Ansel", "Adams", "US", "Photographer"],
                ["Muhammad", "Ali", "US", "Boxer"],
                ["Muhammad", "Lee", "Germany", "Birder"],
                ["Gretchen", "Lee", "Germany", "Artist"],
                ["Adam", "Sandler", "US", "Actor"],
            ],
        )
    )
    corpus.create_table(
        name="cities",
        columns=["city", "country", "population"],
        rows=[
            ["berlin", "germany", "3600000"],
            ["london", "uk", "8900000"],
            ["new york", "us", "8400000"],
        ],
    )
    corpus.create_table(
        name="single_column_matches_only",
        columns=["name", "country", "sport"],
        rows=[
            ["muhammad", "uk", "boxing"],
            ["helmut", "france", "tennis"],
            ["gretchen", "us", "golf"],
        ],
    )
    return corpus


def main() -> None:
    query = build_query_table()
    corpus = build_corpus()

    # 1. Configure: 128-bit super keys, alpha derived for a web-scale corpus.
    config = MateConfig(hash_size=128, k=2, expected_unique_values=700_000_000)

    # 2. Offline phase: build the extended inverted index (PL items + per-row
    #    super keys generated with XASH).
    index = build_index(corpus, config=config)
    print(f"indexed {len(corpus)} tables, {index.num_posting_items()} posting items")

    # 3. Online phase: open a discovery session (the unified API front door)
    #    and answer a typed request with the default "mate" engine.
    with DiscoverySession(corpus, index, config=config) as session:
        result = session.discover(DiscoveryRequest(query=query))

    print(f"\ntop-{result.k} joinable tables for key {query.key_columns}:")
    for entry in result.tables:
        mapping = entry.column_mapping
        candidate = corpus.get_table(entry.table_id)
        mapped_columns = (
            [candidate.columns[c] for c in mapping] if mapping is not None else []
        )
        print(
            f"  table {entry.table_id} ({entry.table_name}): "
            f"joinability={entry.joinability}, "
            f"query key maps onto columns {mapped_columns}"
        )

    counters = result.counters
    print("\ninstrumentation:")
    print(f"  PL items fetched:      {counters.pl_items_fetched}")
    print(f"  candidate rows checked:{counters.rows_checked}")
    print(f"  rows passing filter:   {counters.rows_passed_filter}")
    print(f"  false-positive rows:   {counters.false_positive_rows}")
    print(f"  row-filter precision:  {counters.precision:.2f}")
    print(f"  runtime:               {counters.runtime_seconds * 1000:.1f} ms")


if __name__ == "__main__":
    main()
