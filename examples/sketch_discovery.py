"""Approximate candidate tier: MinHash-LSH pruning ahead of exact MATE.

Builds a deliberately skewed data lake — four genuinely joinable tables
hiding among sixty "lurker" tables that share one hot key value (so the
exact engine must fetch and reject their posting lists) — and answers the
same query three ways through one session:

1. the exact engine (the baseline every mode is measured against),
2. planner mode ``"sketch"`` with ``threshold=0`` — the tier runs but is
   exhaustive, and the result is byte-identical to the exact run,
3. a real containment threshold — the candidate universe collapses from
   64 tables to the 4 real matches *before* the exact stages run, and the
   top-k is unchanged.

Run with::

    python examples/sketch_discovery.py
"""

from __future__ import annotations

from repro import (
    DiscoveryRequest,
    DiscoverySession,
    MateConfig,
    PlannerOptions,
    QueryTable,
    SketchOptions,
    Table,
    TableCorpus,
)

#: Query-table id outside the corpus id range.
QUERY_TABLE_ID = 10_000_000


def build_lake() -> tuple[TableCorpus, QueryTable]:
    """Four match tables among sixty hot-value lurkers, plus the query."""
    pairs = [(f"k{i:02d}", f"v{i:02d}") for i in range(40)]

    corpus = TableCorpus(name="sketch_lake")
    for j in range(60):
        rows = [["k00", f"noise{j}_{r}"] for r in range(3)]
        rows += [[f"x{j}_{r:03d}", f"y{j}_{r:03d}"] for r in range(20)]
        corpus.add_table(Table(1000 + j, f"lurker_{j}", ["n1", "n2"], rows))
    for j in range(4):
        rows = [[key, value, f"pay{j}"] for key, value in pairs[: 12 + 6 * j]]
        corpus.add_table(Table(200 + j, f"match_{j}", ["k1", "k2", "pay"], rows))

    query = QueryTable(
        table=Table(
            QUERY_TABLE_ID,
            "orders",
            ["a", "b", "payload"],
            [[key, value, f"p{i}"] for i, (key, value) in enumerate(pairs)],
        ),
        key_columns=["a", "b"],
    )
    return corpus, query


def main() -> None:
    corpus, query = build_lake()
    config = MateConfig(hash_size=128, k=5, expected_unique_values=10_000)

    with DiscoverySession(corpus, config=config) as session:
        exact = session.discover(DiscoveryRequest(query=query, k=5))
        exhaustive = session.discover(
            DiscoveryRequest(
                query=query,
                k=5,
                planner=PlannerOptions(mode="sketch"),
                sketch=SketchOptions(threshold=0.0),
            )
        )
        pruned = session.discover(
            DiscoveryRequest(
                query=query,
                k=5,
                planner=PlannerOptions(mode="sketch"),
                sketch=SketchOptions(threshold=0.2),
            )
        )

    print(f"lake: {len(corpus)} tables (4 matches, 60 hot-value lurkers)")
    print(f"\nexact top-{exact.k}:")
    for entry in exact.tables:
        print(f"  table {entry.table_id}  joinability={entry.joinability}  "
              f"{entry.table_name}")

    identical = exact.result_tuples() == exhaustive.result_tuples()
    print(f"\nthreshold=0 top-k identical to exact: {identical}")

    extra = pruned.counters.extra
    print(f"\nthreshold=0.2 prune:")
    print(f"  candidate tables after LSH prune: {int(extra['sketch_candidates'])}"
          f" (of {len(corpus)})")
    print(f"  estimated recall at the threshold: "
          f"{extra['sketch_estimated_recall']:.4f}")
    print(f"  rows checked: {pruned.counters.rows_checked} "
          f"(exact engine checked {exact.counters.rows_checked})")
    print(f"  top-k identical to exact: "
          f"{pruned.result_tuples() == exact.result_tuples()}")


if __name__ == "__main__":
    main()
