"""Kaggle-style feature enrichment with a composite <director, title> key.

Section 7.3 of the paper reports that searching for joinable tables to the
Kaggle IMDB dataset with the single-column key "Movie Title" only surfaces
tables with one extra float column, while the composite key
<"Director name", "Movie title"> surfaces an 8-column table with plots, actor
names, and more.  This example reproduces that contrast on a synthetic lake:

* one *rich* table joins on the full composite key,
* several shallow tables join on the title only (and would dominate a
  single-column search),
* MATE with the composite key finds the rich table first.

Run with::

    python examples/movie_feature_enrichment.py
"""

from __future__ import annotations

import random

from repro import MateConfig, MateDiscovery, build_index
from repro.datagen import (
    WEB_TABLE_PROFILE,
    SyntheticCorpusGenerator,
    generate_movie_query,
)
from repro.datagen.vocab import FIRST_NAMES, LAST_NAMES, OCCUPATIONS
from repro.datamodel import QueryTable, TableCorpus


def plant_rich_movie_table(
    corpus: TableCorpus, query: QueryTable, rng: random.Random, coverage: float
) -> int:
    """A wide table joinable on <director, title> with many useful columns."""
    pairs = sorted(query.key_tuples())
    covered = rng.sample(pairs, max(1, int(len(pairs) * coverage)))
    rows = []
    for director, title in covered:
        rows.append(
            [
                title,
                director,
                f"{rng.choice(FIRST_NAMES)} {rng.choice(LAST_NAMES)}",   # lead actor
                f"{rng.choice(FIRST_NAMES)} {rng.choice(LAST_NAMES)}",   # supporting
                rng.choice(OCCUPATIONS),                                  # genre-ish tag
                f"a story about {rng.choice(OCCUPATIONS)}s",              # plot
                str(rng.randint(60, 210)),                                # runtime
                str(rng.randint(1_000, 500_000)),                         # votes
            ]
        )
    table = corpus.create_table(
        name="rich_movie_metadata",
        columns=[
            "titel", "regisseur", "lead actor", "supporting actor",
            "tag", "plot", "runtime", "votes",
        ],
        rows=rows,
    )
    return table.table_id


def plant_title_only_table(
    corpus: TableCorpus, query: QueryTable, rng: random.Random, index: int
) -> int:
    """A shallow table that joins on the title alone (float column only)."""
    pairs = sorted(query.key_tuples())
    rows = []
    for _, title in rng.sample(pairs, max(1, len(pairs) // 2)):
        rows.append([title, f"{rng.uniform(1.0, 10.0):.1f}"])
    table = corpus.create_table(
        name=f"title_rating_{index}",
        columns=["title", "score"],
        rows=rows,
    )
    return table.table_id


def main() -> None:
    rng = random.Random(7)
    config = MateConfig(hash_size=128, k=3, expected_unique_values=700_000_000)

    corpus = SyntheticCorpusGenerator(
        profile=WEB_TABLE_PROFILE.scaled(0.3), seed=7
    ).generate(name="movie-lake")
    movies = generate_movie_query(table_id=20_000, rng=rng, cardinality=120)

    rich_id = plant_rich_movie_table(corpus, movies, rng, coverage=0.8)
    shallow_ids = [plant_title_only_table(corpus, movies, rng, i) for i in range(4)]

    print(f"lake: {len(corpus)} tables; query: {movies.table.num_rows} movies, "
          f"key = {movies.key_columns}")
    print(f"planted: rich table {rich_id}, title-only tables {shallow_ids}\n")

    index = build_index(corpus, config=config)

    # --- single-column search (title only) --------------------------------
    title_only = QueryTable(table=movies.table, key_columns=["movie title"])
    single = MateDiscovery(corpus, index, config=config).discover(title_only)
    print("single-column key <movie title>:")
    for entry in single.tables:
        table = corpus.get_table(entry.table_id)
        print(f"  {table.name:<22} joinability={entry.joinability:>3}  columns={table.num_columns}")

    # --- composite-key search (director, title) ---------------------------
    composite = MateDiscovery(corpus, index, config=config).discover(movies)
    print("\ncomposite key <director name, movie title>:")
    for entry in composite.tables:
        table = corpus.get_table(entry.table_id)
        print(f"  {table.name:<22} joinability={entry.joinability:>3}  columns={table.num_columns}")

    best = composite.tables[0]
    best_table = corpus.get_table(best.table_id)
    new_features = [
        column
        for position, column in enumerate(best_table.columns)
        if best.column_mapping is None or position not in best.column_mapping
    ]
    print(f"\nthe composite key surfaces {best_table.name!r} with "
          f"{len(new_features)} enrichment columns: {new_features}")


if __name__ == "__main__":
    main()
