"""Index maintenance: keeping the MATE index consistent under corpus edits.

Section 5.4 of the paper describes how the extended inverted index reacts to
inserts, updates, and deletes.  This example applies each edit type through
:class:`repro.index.IndexMaintainer`, shows which parts of the index change,
and verifies consistency after every step.  It also demonstrates persisting
the corpus and index to SQLite and reloading them.

Run with::

    python examples/index_maintenance.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro import MateConfig, MateDiscovery, build_index
from repro.datamodel import QueryTable, Table, TableCorpus
from repro.hashing import SuperKeyGenerator
from repro.index import IndexMaintainer, storage_report
from repro.storage import SQLiteBackend


def report(label: str, maintainer: IndexMaintainer) -> None:
    index = maintainer.index
    issues = maintainer.verify_consistency()
    status = "consistent" if not issues else f"INCONSISTENT: {issues}"
    print(f"  after {label:<28} postings={index.num_posting_items():>4} "
          f"values={len(index):>4} rows={index.num_rows():>4}  [{status}]")


def main() -> None:
    config = MateConfig(hash_size=128, k=2, expected_unique_values=700_000_000)

    corpus = TableCorpus(name="editable-lake")
    corpus.add_table(
        Table(
            table_id=0,
            name="employees",
            columns=["first", "last", "city"],
            rows=[
                ["ada", "lovelace", "london"],
                ["alan", "turing", "cambridge"],
                ["grace", "hopper", "new york"],
            ],
        )
    )
    corpus.add_table(
        Table(
            table_id=1,
            name="offices",
            columns=["city", "country"],
            rows=[["london", "uk"], ["cambridge", "uk"], ["berlin", "germany"]],
        )
    )

    index = build_index(corpus, config=config)
    generator = SuperKeyGenerator.from_name("xash", config)
    maintainer = IndexMaintainer(corpus, index, generator)

    print("initial state:")
    report("building the index", maintainer)

    print("\napplying Section 5.4 edit operations:")
    maintainer.insert_table(
        Table(
            table_id=2,
            name="projects",
            columns=["owner_last", "city", "budget"],
            rows=[["lovelace", "london", "100"], ["turing", "cambridge", "250"]],
        )
    )
    report("insert table 'projects'", maintainer)

    maintainer.insert_row(0, ["katherine", "johnson", "hampton"])
    report("insert row into 'employees'", maintainer)

    maintainer.insert_column(1, "timezone", ["utc", "utc", "cet"])
    report("insert column 'timezone'", maintainer)

    maintainer.update_cell(0, 2, 2, "arlington")
    report("update grace hopper's city", maintainer)

    maintainer.delete_row(1, 2)
    report("delete the berlin office row", maintainer)

    maintainer.delete_column(0, "city")
    report("delete column 'city'", maintainer)

    # The index stays immediately queryable after every edit.
    query = QueryTable(
        table=Table(
            table_id=99,
            name="q",
            columns=["last", "city"],
            rows=[["lovelace", "london"], ["turing", "cambridge"]],
        ),
        key_columns=["last", "city"],
    )
    result = MateDiscovery(corpus, index, config=config).discover(query)
    print("\ndiscovery on the edited corpus, key <last, city>:")
    for entry in result.tables:
        print(f"  {corpus.get_table(entry.table_id).name:<12} joinability={entry.joinability}")

    # Storage footprint of the two super-key layouts (Section 7.1).
    storage = storage_report(index)
    print("\nindex storage footprint:")
    print(f"  postings:             {storage.posting_bytes} B")
    print(f"  super keys per cell:  {storage.super_key_bytes_per_cell} B")
    print(f"  super keys per row:   {storage.super_key_bytes_per_row} B")

    # Persist and reload through the SQLite backend.
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "mate.db"
        with SQLiteBackend(path) as backend:
            backend.save_corpus(corpus)
            backend.save_index("main", index)
            reloaded = backend.load_index("main")
        print(f"\npersisted to {path.name}: reloaded index has "
              f"{reloaded.num_posting_items()} postings "
              f"({'identical' if reloaded.num_posting_items() == index.num_posting_items() else 'MISMATCH'})")


if __name__ == "__main__":
    main()
