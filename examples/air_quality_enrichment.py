"""Air-quality enrichment: the motivating example from the paper's introduction.

A sensor table with only <timestamp, location, pollution ratio> must be
enriched with weather, public-event, and road-traffic tables to explain
pollution spikes.  The join key is the *composite* <timestamp, location> —
a single-column search on either column floods the analyst with irrelevant
tables, which is exactly the scenario MATE is built for.

The script:

1. generates a synthetic data lake plus weather / events / traffic tables that
   genuinely join on <timestamp, location>,
2. adds distractor tables that share only timestamps or only locations,
3. runs MATE and the SCR baseline and compares what they had to inspect,
4. performs the actual enrichment join with the discovered best table.

Run with::

    python examples/air_quality_enrichment.py
"""

from __future__ import annotations

import random

from repro import MateConfig, MateDiscovery, build_index
from repro.baselines import ScrDiscovery
from repro.datagen import (
    WEB_TABLE_PROFILE,
    SyntheticCorpusGenerator,
    generate_sensor_query,
    plant_distractor_table,
)
from repro.datagen.vocab import CITIES, EVENT_TYPES, WEATHER_CONDITIONS
from repro.datamodel import QueryTable, TableCorpus


def plant_dimension_table(
    corpus: TableCorpus,
    query: QueryTable,
    rng: random.Random,
    name: str,
    attribute_column: str,
    attribute_values: tuple[str, ...],
    coverage: float,
) -> int:
    """Plant a dimension table joining on <timestamp, location>.

    ``coverage`` controls which fraction of the sensor readings the dimension
    table covers, which in turn determines its joinability rank.
    """
    key_tuples = sorted(query.key_tuples())
    covered = rng.sample(key_tuples, max(1, int(len(key_tuples) * coverage)))
    rows = []
    for timestamp, location in covered:
        rows.append([timestamp, location, rng.choice(attribute_values)])
    # Rows for other cities/timestamps (single-column matches only).
    for _ in range(30):
        rows.append(
            [
                f"20{rng.randint(10, 22)}-0{rng.randint(1, 9)}-1{rng.randint(0, 9)} "
                f"{rng.randint(0, 23):02d}:00",
                rng.choice(CITIES),
                rng.choice(attribute_values),
            ]
        )
    rng.shuffle(rows)
    table = corpus.create_table(
        name=name,
        columns=["zeit", "ort", attribute_column],
        rows=rows,
    )
    return table.table_id


def main() -> None:
    rng = random.Random(42)
    config = MateConfig(hash_size=128, k=3, expected_unique_values=700_000_000)

    # The data lake: generic web tables plus our planted dimension tables.
    corpus = SyntheticCorpusGenerator(
        profile=WEB_TABLE_PROFILE.scaled(0.3), seed=42
    ).generate(name="air-quality-lake")

    # The analyst's sensor table, keyed on <timestamp, location>.
    sensor = generate_sensor_query(table_id=10_000, rng=rng, cardinality=60)

    weather_id = plant_dimension_table(
        corpus, sensor, rng, "weather", "condition", WEATHER_CONDITIONS, coverage=0.9
    )
    events_id = plant_dimension_table(
        corpus, sensor, rng, "public_events", "event", EVENT_TYPES, coverage=0.5
    )
    traffic_id = plant_dimension_table(
        corpus, sensor, rng, "road_traffic", "congestion",
        ("low", "medium", "high", "gridlock"), coverage=0.25,
    )
    for _ in range(5):
        plant_distractor_table(corpus, sensor, rng, matching_rows=80, noise_rows=20)

    print(f"data lake: {len(corpus)} tables")
    print(f"sensor readings: {sensor.table.num_rows} rows, key = {sensor.key_columns}")
    print(f"planted dimension tables: weather={weather_id}, events={events_id}, traffic={traffic_id}")

    index = build_index(corpus, config=config)

    mate_result = MateDiscovery(corpus, index, config=config).discover(sensor)
    scr_result = ScrDiscovery(corpus, index, config=config).discover(sensor)

    print("\nMATE top-3 joinable tables:")
    for entry in mate_result.tables:
        print(f"  {corpus.get_table(entry.table_id).name:<16} joinability={entry.joinability}")

    print("\nfiltering effort (MATE vs SCR):")
    print(f"  rows verified exactly:  {mate_result.counters.rows_passed_filter:>6} vs "
          f"{scr_result.counters.rows_passed_filter}")
    print(f"  value comparisons:      {mate_result.counters.value_comparisons:>6} vs "
          f"{scr_result.counters.value_comparisons}")
    print(f"  false-positive rows:    {mate_result.counters.false_positive_rows:>6} vs "
          f"{scr_result.counters.false_positive_rows}")
    print(f"  runtime:                {mate_result.runtime_seconds * 1000:>6.1f} ms vs "
          f"{scr_result.runtime_seconds * 1000:.1f} ms")

    # Enrich: equi-join the sensor readings with the best discovered table.
    best = mate_result.tables[0]
    dimension = corpus.get_table(best.table_id)
    mapping = best.column_mapping or ()
    print(f"\nenriching with table {dimension.name} "
          f"(key columns map onto {[dimension.columns[c] for c in mapping]}):")
    dimension_index = {
        tuple(row[c] for c in mapping): row for row in dimension.rows
    }
    enriched = 0
    for timestamp, location in sorted(sensor.key_tuples()):
        match = dimension_index.get((timestamp, location))
        if match is None:
            continue
        enriched += 1
        if enriched <= 5:
            extra = [v for i, v in enumerate(match) if i not in mapping]
            print(f"  {timestamp} @ {location:<12} -> {extra}")
    print(f"  ... {enriched} of {sensor.table.num_rows} readings enriched")


if __name__ == "__main__":
    main()
