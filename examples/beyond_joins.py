"""Beyond join discovery: duplicates, union search, and the §6.4 theory.

The paper's introduction argues that the super-key machinery generalises to
duplicate table detection and table union search, and Section 6.4 analyses
why XASH's sparse, syntactic encoding beats uniform hashes under
OR-aggregation.  This example demonstrates all three:

1. duplicate-record detection across two overlapping tables, with the super
   key acting as a prefilter;
2. union search: finding tables whose columns draw from the same domains as a
   query table;
3. the analytical false-positive model, printed for the row widths of the
   paper's corpora (web tables ~5 columns, open data ~26 columns).

Run with::

    python examples/beyond_joins.py
"""

from __future__ import annotations

from repro import MateConfig, build_index
from repro.datamodel import Table, TableCorpus
from repro.extensions import UnionSearch, find_duplicate_rows, find_duplicate_tables
from repro.hashing import SuperKeyGenerator
from repro.hashing.analysis import (
    compare_filters_theoretically,
    theoretical_summary,
)
from repro.metrics import DiscoveryCounters


def build_corpus() -> TableCorpus:
    corpus = TableCorpus(name="beyond-joins")
    corpus.add_table(
        Table(
            table_id=0,
            name="eu_offices",
            columns=["city", "country", "employees"],
            rows=[
                ["berlin", "germany", "120"],
                ["paris", "france", "85"],
                ["rome", "italy", "40"],
                ["madrid", "spain", "64"],
            ],
        )
    )
    corpus.add_table(
        Table(
            table_id=1,
            name="eu_offices_copy",  # a partially duplicated export
            columns=["standort", "land", "mitarbeiter"],
            rows=[
                ["berlin", "germany", "120"],
                ["paris", "france", "85"],
                ["lisbon", "portugal", "30"],
                ["madrid", "spain", "64"],
            ],
        )
    )
    corpus.add_table(
        Table(
            table_id=2,
            name="asian_offices",
            columns=["city", "country", "employees"],
            rows=[
                ["tokyo", "japan", "200"],
                ["delhi", "india", "150"],
                ["beijing", "china", "175"],
            ],
        )
    )
    corpus.add_table(
        Table(
            table_id=3,
            name="payroll",
            columns=["employee", "salary"],
            rows=[["ada lovelace", "100"], ["alan turing", "120"]],
        )
    )
    return corpus


def main() -> None:
    config = MateConfig(hash_size=128, expected_unique_values=700_000_000)
    corpus = build_corpus()
    generator = SuperKeyGenerator.from_name("xash", config)

    # 1. Duplicate records across the original table and its partial copy.
    counters = DiscoveryCounters()
    pairs = find_duplicate_rows(
        corpus.get_table(0), corpus.get_table(1), generator, counters
    )
    print("duplicate rows between eu_offices and eu_offices_copy:")
    for pair in pairs:
        print(f"  row {pair.first_row} == row {pair.second_row}")
    print(f"  candidates compared after prefilter: {counters.rows_checked} "
          f"(of {corpus.get_table(1).num_rows})")

    duplicates = find_duplicate_tables(
        corpus.get_table(0), corpus, config=config, min_overlap_ratio=0.3
    )
    print("\nduplicate-table candidates for eu_offices:")
    for result in duplicates:
        print(f"  {corpus.get_table(result.table_id).name:<18} "
              f"overlap={result.overlap_ratio:.2f}")

    # 2. Union search: which tables could be stacked under eu_offices?
    index = build_index(corpus, config=config)
    union = UnionSearch(corpus, index).top_k_unionable(corpus.get_table(0), k=3)
    print("\nunionable tables for eu_offices:")
    for candidate in union:
        table = corpus.get_table(candidate.table_id)
        aligned = [
            f"{corpus.get_table(0).columns[q]} -> {table.columns[c]}"
            for q, c in candidate.alignment
            if c is not None
        ]
        print(f"  {table.name:<18} unionability={candidate.unionability:.2f}  ({', '.join(aligned)})")

    # 3. Section 6.4 theory: why sparse syntactic hashes survive wide rows.
    print("\nanalytical model (Section 6.4):")
    summary = theoretical_summary(config)
    print(f"  alpha={summary['alpha']:.0f}, beta={summary['beta']:.0f}, "
          f"length segment={summary['length_segment_bits']:.0f} bits")
    print(f"  pairwise collision probability: XASH {summary['xash_collision_probability']:.2e} "
          f"vs LHBF {summary['lhbf_collision_probability']:.2e}")
    for label, width in (("web-table row (5 values)", 5), ("open-data row (26 values)", 26)):
        rates = compare_filters_theoretically(config, values_per_row=width, key_size=2)
        ordered = ", ".join(f"{name}={rate:.1e}" for name, rate in sorted(rates.items()))
        print(f"  expected FP rate for a {label}: {ordered}")


if __name__ == "__main__":
    main()
