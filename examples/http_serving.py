"""Process-parallel HTTP serving: worker pool, admission control, hedging.

The other examples call the library in process.  This one runs the full
serving stack a deployment would: a :class:`repro.DiscoverySession` in
``execution="process"`` mode (one worker process per corpus shard, each
mapping its shard's ``.seg`` segment read-only), fronted by the asyncio
HTTP server with admission control.  A client then talks to it over real
sockets and verifies the deployment contract — the served top-k is exactly
what an in-process engine returns — before draining the server gracefully.

Run with::

    python examples/http_serving.py
"""

from __future__ import annotations

import asyncio
import json
import threading
import urllib.request

from repro import (
    AdmissionController,
    DiscoveryHTTPServer,
    DiscoveryRequest,
    DiscoverySession,
    MateConfig,
    QueryTable,
    ServeConfig,
    Table,
    TableCorpus,
    TenantQuota,
)

NUM_SHARDS = 2
K = 3


def build_corpus() -> TableCorpus:
    """A small data lake: person tables spread across two shards."""
    corpus = TableCorpus(name="serving-lake")
    corpus.create_table(
        name="employees_de",
        columns=["vorname", "nachname", "land", "besetzung"],
        rows=[
            ["Helmut", "Newton", "Germany", "Photographer"],
            ["Muhammad", "Lee", "US", "Dancer"],
            ["Ansel", "Adams", "UK", "Dancer"],
            ["Ansel", "Adams", "US", "Photographer"],
            ["Muhammad", "Ali", "US", "Boxer"],
            ["Muhammad", "Lee", "Germany", "Birder"],
        ],
    )
    corpus.create_table(
        name="payroll",
        columns=["first", "last", "country", "salary"],
        rows=[
            ["Muhammad", "Lee", "US", "60k"],
            ["Ansel", "Adams", "UK", "50k"],
            ["Helmut", "Newton", "Germany", "300k"],
            ["Gretchen", "Lee", "Germany", "70k"],
        ],
    )
    corpus.create_table(
        name="cities",
        columns=["city", "country", "population"],
        rows=[
            ["Berlin", "Germany", "3600000"],
            ["Hamburg", "Germany", "1800000"],
            ["London", "UK", "9000000"],
        ],
    )
    corpus.create_table(
        name="sports",
        columns=["athlete", "sport"],
        rows=[
            ["Muhammad", "Boxing"],
            ["Gretchen", "Golf"],
        ],
    )
    return corpus


def build_query() -> QueryTable:
    table = Table(
        table_id=0,
        name="people",
        columns=["f_name", "l_name", "country"],
        rows=[
            ["Muhammad", "Lee", "US"],
            ["Ansel", "Adams", "UK"],
            ["Helmut", "Newton", "Germany"],
        ],
    )
    return QueryTable(table=table, key_columns=["f_name", "l_name", "country"])


def post_discover(base_url: str, query: QueryTable) -> dict:
    body = {
        "query": {
            "name": query.table.name,
            "columns": list(query.table.columns),
            "rows": [list(row) for row in query.table.rows],
        },
        "key_columns": list(query.key_columns),
        "k": K,
        "engine": "sharded",
    }
    request = urllib.request.Request(
        f"{base_url}/v1/discover",
        data=json.dumps(body).encode("utf-8"),
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=60) as response:
        return json.load(response)


def main() -> None:
    corpus = build_corpus()
    query = build_query()
    config = MateConfig(hash_size=128, expected_unique_values=100_000)

    # The in-process reference the served results must match byte for byte.
    with DiscoverySession(corpus, config=config) as reference_session:
        reference = reference_session.discover(
            DiscoveryRequest(query=query, k=K, engine="sharded")
        )
        expected = json.loads(json.dumps(reference.to_dict()))["tables"]

    session = DiscoverySession(
        corpus,
        config=config,
        execution="process",
        serve_config=ServeConfig(num_shards=NUM_SHARDS),
    )
    server = DiscoveryHTTPServer(
        session,
        admission=AdmissionController(
            max_pending=8, tenant_quota=TenantQuota(max_inflight=4)
        ),
    )

    loop = asyncio.new_event_loop()
    thread = threading.Thread(target=loop.run_forever, daemon=True)
    thread.start()
    try:
        asyncio.run_coroutine_threadsafe(server.start(), loop).result(timeout=30)
        base_url = f"http://{server.host}:{server.port}"
        print(f"serving {len(corpus)} tables on {base_url} "
              f"({NUM_SHARDS} worker processes)")

        envelope = post_discover(base_url, query)
        print(f"top-{K} over HTTP:")
        for entry in envelope["tables"]:
            print(
                f"  table {entry['table_id']}: "
                f"joinability={entry['joinability']}"
            )
        print(
            "served top-k identical to in-process engine: "
            f"{envelope['tables'] == expected}"
        )

        stats = json.load(
            urllib.request.urlopen(f"{base_url}/v1/stats", timeout=30)
        )
        print(
            f"admission stats: {stats['admission']['admitted_total']} admitted, "
            f"{stats['admission']['rejected_total']} rejected"
        )

        asyncio.run_coroutine_threadsafe(
            server.drain_and_stop(), loop
        ).result(timeout=30)
        print("server drained cleanly")
    finally:
        loop.call_soon_threadsafe(loop.stop)
        thread.join(timeout=10)
        loop.close()
        session.close()


if __name__ == "__main__":
    main()
