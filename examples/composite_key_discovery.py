"""From an undocumented table to an n-ary join: composite-key discovery + MATE.

The paper's introduction motivates n-ary discovery with corpora whose keys
are undocumented: "In open data lakes primary key information and other
metadata are generally not known."  This example shows the full workflow for
that situation:

1. a sensor-style query table (timestamp, location, reading) with no declared
   key — the air-pollution use case of the paper's introduction;
2. :func:`repro.extensions.discover_key_candidates` finds the minimal unique
   column combinations and suggests <timestamp, location> as the composite
   key (the measure column is excluded automatically);
3. MATE discovers the dimension tables (weather, public events) that join on
   that composite key, while single-column distractors stay behind.

Run with::

    python examples/composite_key_discovery.py
"""

from __future__ import annotations

from repro import MateConfig, MateDiscovery, QueryTable, Table, TableCorpus, build_index
from repro.extensions import discover_key_candidates, suggest_query


def build_sensor_table() -> Table:
    """Hourly particulate-matter readings for two cities (no declared key)."""
    rows = []
    for day in ("2019-06-01", "2019-06-02"):
        for hour in ("08:00", "12:00", "16:00"):
            for city, base in (("dresden", 21), ("hannover", 14)):
                rows.append([f"{day} {hour}", city, str(base + len(hour))])
    return Table(
        table_id=500,
        name="pm10_sensor_readings",
        columns=["timestamp", "location", "pm10"],
        rows=rows,
    )


def build_corpus(sensor: Table) -> TableCorpus:
    """Dimension tables joinable on <timestamp, location> plus distractors."""
    corpus = TableCorpus(name="air-quality-lake")
    weather_rows = [
        [timestamp, location, condition]
        for (timestamp, location), condition in zip(
            ((row[0], row[1]) for row in sensor.rows),
            ["sunny", "rainy", "cloudy", "sunny", "windy", "foggy"] * 2,
        )
    ]
    corpus.create_table(
        name="weather_observations",
        columns=["zeit", "stadt", "wetter"],
        rows=weather_rows,
    )
    corpus.create_table(
        name="public_events",
        columns=["city", "event", "time"],
        rows=[
            ["dresden", "marathon", "2019-06-01 08:00"],
            ["dresden", "concert", "2019-06-02 16:00"],
            ["hannover", "festival", "2019-06-01 12:00"],
        ],
    )
    corpus.create_table(
        name="city_population",  # joins on location only (distractor)
        columns=["city", "population"],
        rows=[["dresden", "556000"], ["hannover", "532000"], ["berlin", "3645000"]],
    )
    corpus.create_table(
        name="unrelated_timestamps",  # joins on timestamp only (distractor)
        columns=["logged_at", "server"],
        rows=[[row[0], f"srv{i % 3}"] for i, row in enumerate(sensor.rows)],
    )
    return corpus


def main() -> None:
    sensor = build_sensor_table()

    # 1. Which column combinations could serve as the composite key?
    candidates = discover_key_candidates(sensor, max_arity=3)
    print("composite-key candidates (best first):")
    for candidate in candidates[:5]:
        marker = "UCC " if candidate.is_unique else f"{candidate.uniqueness:.2f}"
        print(f"  [{marker}] {', '.join(candidate.columns)}")

    # 2. Build the query from the best suggestion (prefer a 2-column key).
    query: QueryTable = suggest_query(sensor, prefer_arity=2)
    print(f"\nselected composite key: {query.key_columns}")

    # 3. Standard MATE discovery against the data lake.
    corpus = build_corpus(sensor)
    config = MateConfig(hash_size=128, k=3, expected_unique_values=100_000)
    index = build_index(corpus, config=config)
    result = MateDiscovery(corpus, index, config=config).discover(query)

    print(f"\ntop-{result.k} joinable tables on {query.key_columns}:")
    for entry in result.tables:
        table = corpus.get_table(entry.table_id)
        mapping = entry.column_mapping or ()
        print(
            f"  {table.name:<22} joinability={entry.joinability}  "
            f"key maps onto {[table.columns[c] for c in mapping]}"
        )

    print(
        "\nsingle-column distractors (population / raw timestamps) rank below "
        "the true dimension tables because they never contain the full key."
    )


if __name__ == "__main__":
    main()
