"""Discover joinable tables in a directory of CSV files with the DataLake facade.

This example mirrors how a practitioner would actually use the library: a
folder full of CSV exports (here: a small HR/finance data lake written to a
temporary directory), a query table, and no knowledge of which candidate
columns line up with the composite key.  The :class:`repro.lake.DataLake`
facade profiles the corpus, derives a MATE configuration from the measured
statistics (unique-value count for the Eq. 5 bit budget, corpus character
frequencies for the rare-character table), builds the extended inverted
index, and answers top-k n-ary join queries.

Run with::

    python examples/csv_data_lake.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.datamodel import QueryTable, Table
from repro.lake import DataLake
from repro.storage import table_to_csv


def write_example_lake(directory: Path) -> None:
    """Write a handful of CSV tables simulating an HR/finance data lake."""
    tables = [
        Table(
            table_id=0,
            name="employees",
            columns=["first_name", "last_name", "office", "role"],
            rows=[
                ["muhammad", "lee", "berlin", "dancer"],
                ["ansel", "adams", "london", "photographer"],
                ["helmut", "newton", "berlin", "photographer"],
                ["gretchen", "lee", "hannover", "artist"],
                ["adam", "sandler", "boston", "actor"],
            ],
        ),
        Table(
            table_id=1,
            name="salaries",
            columns=["vorname", "nachname", "standort", "salary"],
            rows=[
                ["muhammad", "lee", "berlin", "60000"],
                ["ansel", "adams", "london", "50000"],
                ["helmut", "newton", "berlin", "300000"],
                ["maria", "garcia", "madrid", "70000"],
            ],
        ),
        Table(
            table_id=2,
            name="office_addresses",
            columns=["office", "street", "country"],
            rows=[
                ["berlin", "unter den linden 1", "germany"],
                ["london", "baker street 221b", "uk"],
                ["hannover", "welfengarten 1", "germany"],
                ["boston", "main street 5", "us"],
            ],
        ),
        Table(
            table_id=3,
            name="first_names_only",
            columns=["name", "popularity"],
            rows=[
                ["muhammad", "high"],
                ["ansel", "low"],
                ["helmut", "low"],
                ["gretchen", "medium"],
            ],
        ),
    ]
    for table in tables:
        table_to_csv(table, directory / f"{table.name}.csv")


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        directory = Path(tmp)
        write_example_lake(directory)

        # 1. Ingest the directory: one corpus table per CSV file.
        lake = DataLake.from_directory(directory, name="hr-lake")
        print(f"ingested {len(lake)} tables from {directory}")

        # 2. Profile the lake; the recommended configuration is derived from
        #    the measured statistics rather than guessed.
        profile = lake.profile()
        print("\ncorpus profile:")
        for key, value in profile.as_dict().items():
            print(f"  {key}: {value}")

        # 3. Query: which tables join with (first name, last name)?  The
        #    salaries table uses German column names and a different column
        #    order — exactly the situation n-ary discovery has to handle.
        employees = lake.table_by_source("employees")
        query = QueryTable(
            table=employees, key_columns=["first_name", "last_name"]
        )
        result = lake.discover(query, k=3)

        print(f"\ntop-{result.k} joinable tables for key {query.key_columns}:")
        for entry in result.tables:
            candidate = lake.corpus.get_table(entry.table_id)
            mapping = entry.column_mapping or ()
            mapped = [candidate.columns[c] for c in mapping]
            print(
                f"  {candidate.name:<20} joinability={entry.joinability}  "
                f"key maps onto {mapped}"
            )

        counters = result.counters
        print("\ninstrumentation:")
        print(f"  candidate rows checked: {counters.rows_checked}")
        print(f"  false-positive rows:    {counters.false_positive_rows}")
        print(f"  row-filter precision:   {counters.precision:.2f}")

        # 4. The single-column table ("first_names_only") matches one key
        #    value per row but never the full composite key, so it should not
        #    outrank the real joinable tables — the core claim of the paper.
        names_only_id = lake.sources["first_names_only"]
        print(
            "\njoinability of the single-column distractor table: "
            f"{result.joinability_of(names_only_id)}"
        )


if __name__ == "__main__":
    main()
