"""Live ingestion: stream tables into a serving session while querying it.

Every other example indexes its corpus once, offline.  This one runs the
online path of :mod:`repro.ingest`: a :class:`~repro.LiveIndex` accepts
tables through ``session.ingest()`` while a background
:class:`~repro.Compactor` seals the write buffer into immutable columnar
segments and merges them — and a concurrent reader thread keeps answering
``engine="live"`` discovery requests the whole time.  Snapshot isolation
guarantees each query a consistent view no matter how compaction interleaves.

Run with::

    python examples/live_ingest.py
"""

from __future__ import annotations

import random
import threading
import time

from repro import (
    CompactionPolicy,
    Compactor,
    DiscoveryRequest,
    DiscoverySession,
    LiveIndex,
    MateConfig,
    QueryTable,
    Table,
    TableCorpus,
)

NUM_TABLES = 120
CONFIG = MateConfig(hash_size=128, k=3, expected_unique_values=100_000)


def build_query() -> QueryTable:
    table = Table(
        table_id=10_000_000,
        name="watchlist",
        columns=["player", "club", "note"],
        rows=[
            [f"player-{i}", f"club-{i % 7}", f"note-{i}"] for i in range(8)
        ],
    )
    return QueryTable(table=table, key_columns=["player", "club"])


def make_table(table_id: int, rng: random.Random) -> Table:
    """A transfer-window feed table; later ids overlap the watchlist more."""
    overlap = min(table_id // 15 + 1, 8)
    rows = [
        [f"player-{i}", f"club-{i % 7}", f"fee-{rng.randint(1, 99)}m"]
        for i in rng.sample(range(10), overlap)
    ] + [
        [f"player-{rng.randint(50, 999)}", f"club-{rng.randint(8, 30)}", "fee-0m"]
        for _ in range(3)
    ]
    return Table(
        table_id=table_id,
        name=f"feed-{table_id}",
        columns=["athlete", "team", "fee"],
        rows=rows,
    )


def main() -> None:
    rng = random.Random(7)
    query = build_query()
    request = DiscoveryRequest(query=query, engine="live")

    live = LiveIndex(config=CONFIG)  # pass directory=... for WAL durability
    session = DiscoverySession(TableCorpus(name="stream"), live, config=CONFIG)
    policy = CompactionPolicy(
        max_buffer_rows=40, max_segments=3, interval_seconds=0.005
    )

    observations: list[tuple[int, int, list[tuple[int, int]]]] = []
    done = threading.Event()

    def reader() -> None:
        """Query concurrently with ingestion and compaction."""
        while not done.is_set():
            result = session.discover(request)
            observations.append(
                (live.generation, live.num_segments, result.result_tuples())
            )
            time.sleep(0.002)

    reader_thread = threading.Thread(target=reader, name="reader")
    with session, Compactor(live, policy):  # background compaction thread
        reader_thread.start()
        started = time.perf_counter()
        total_rows = 0
        for table_id in range(NUM_TABLES):
            total_rows += session.ingest(make_table(table_id, rng))
        elapsed = time.perf_counter() - started
        done.set()
        reader_thread.join()

        final = session.discover(request)

    print(
        f"ingested {NUM_TABLES} tables / {total_rows} rows in {elapsed:.3f}s "
        f"({total_rows / elapsed:.0f} rows/s) while serving "
        f"{len(observations)} concurrent queries"
    )
    print(
        f"live index: {live.num_posting_items()} postings in "
        f"{live.num_segments} segments + {live.buffer_rows} buffered rows "
        f"(generation {live.generation})"
    )

    # Each concurrent query saw a consistent snapshot; the top-k only ever
    # improves as more joinable feed tables arrive.
    best_seen = 0
    monotone = True
    for _generation, _segments, ranked in observations:
        top = ranked[0][1] if ranked else 0
        monotone = monotone and top >= best_seen
        best_seen = max(best_seen, top)
    print(f"concurrent top-1 joinability grew monotonically: {monotone}")

    print(f"\nfinal top-{final.k} for key {query.key_columns}:")
    for entry in final.tables:
        print(
            f"  table {entry.table_id} ({entry.table_name}): "
            f"joinability={entry.joinability}"
        )


if __name__ == "__main__":
    main()
