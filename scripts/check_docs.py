#!/usr/bin/env python
"""Docs completeness check (run by CI).

Asserts that ``README.md`` and ``docs/ARCHITECTURE.md`` exist, that each of
them mentions every subpackage of ``src/repro/`` by name, and that the
load-bearing sections listed in :data:`REQUIRED_SECTIONS` are present — so
the documentation cannot silently fall behind the package layout or lose a
section a subsystem depends on being documented.
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DOCS = ("README.md", "docs/ARCHITECTURE.md")

#: Headings (exact substrings) each document must contain.
REQUIRED_SECTIONS: dict[str, tuple[str, ...]] = {
    "docs/ARCHITECTURE.md": (
        "## Query planning",
        "## Sketch tier",
        "## Vectorized execution",
        "## Process-parallel serving",
        "## SQL pushdown",
        "## Telemetry",
    ),
    "README.md": (
        "--explain",
        "MATE_KERNEL",
        "MATE_SKETCH",
        "Mmap-backed segments",
        "Approximate tier",
        "## Serving",
        "/metrics",
        "--trace-out",
        "SQL pushdown",
    ),
}


def subpackages() -> list[str]:
    """Names of all repro subpackages (directories with an __init__.py)."""
    package_root = REPO_ROOT / "src" / "repro"
    return sorted(
        entry.name
        for entry in package_root.iterdir()
        if entry.is_dir() and (entry / "__init__.py").is_file()
    )


def main() -> int:
    packages = subpackages()
    if not packages:
        print("error: no subpackages found under src/repro/", file=sys.stderr)
        return 1
    failures = []
    for doc in DOCS:
        path = REPO_ROOT / doc
        if not path.is_file():
            failures.append(f"{doc}: missing")
            continue
        text = path.read_text(encoding="utf-8")
        missing = [name for name in packages if f"repro.{name}" not in text]
        if missing:
            failures.append(f"{doc}: does not mention {', '.join(missing)}")
        absent = [
            section
            for section in REQUIRED_SECTIONS.get(doc, ())
            if section not in text
        ]
        if absent:
            failures.append(f"{doc}: missing required section {', '.join(absent)}")
    if failures:
        for failure in failures:
            print(f"error: {failure}", file=sys.stderr)
        return 1
    print(f"docs OK: {', '.join(DOCS)} mention all {len(packages)} subpackages")
    return 0


if __name__ == "__main__":
    sys.exit(main())
