#!/usr/bin/env python
"""CLI ``--explain`` smoke test (run by the plan-equivalence CI job).

Generates a tiny corpus plus a query CSV, runs ``mate-repro discover`` with
``--explain`` for every planner mode on the requested index layout, and
asserts the plan output shows up with the expected shape (seed column,
per-column estimates, stage timings) while the top-k stays identical across
modes.

Usage::

    PYTHONPATH=src python scripts/plan_explain_smoke.py --layout columnar
    PYTHONPATH=src python scripts/plan_explain_smoke.py --layout legacy
"""

from __future__ import annotations

import argparse
import contextlib
import csv
import io
import re
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
_SRC = REPO_ROOT / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.cli import main as cli_main  # noqa: E402
from repro.config import INDEX_LAYOUTS  # noqa: E402
from repro.experiments.planner import _build_skew_scenario  # noqa: E402
from repro.experiments.runner import ExperimentSettings  # noqa: E402
from repro.storage import save_corpus_json  # noqa: E402


def run_cli(argv: list[str]) -> str:
    buffer = io.StringIO()
    with contextlib.redirect_stdout(buffer):
        code = cli_main(argv)
    if code != 0:
        raise SystemExit(f"cli {' '.join(argv)} exited with {code}")
    return buffer.getvalue()


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--layout", choices=INDEX_LAYOUTS, default="columnar")
    args = parser.parse_args()

    corpus, query = _build_skew_scenario(ExperimentSettings(corpus_scale=0.3))
    with tempfile.TemporaryDirectory(prefix="plan-smoke-") as tmp:
        corpus_path = Path(tmp) / "corpus.json"
        query_path = Path(tmp) / "query.csv"
        save_corpus_json(corpus, corpus_path)
        with query_path.open("w", newline="", encoding="utf-8") as handle:
            writer = csv.writer(handle)
            writer.writerow(query.table.columns)
            writer.writerows(list(row) for row in query.table.rows)

        rankings: dict[str, list[str]] = {}
        for mode in ("selector", "cost", "adaptive"):
            output = run_cli(
                [
                    "discover",
                    str(corpus_path),
                    str(query_path),
                    "--key", "hot", "cold",
                    "--k", "5",
                    "--layout", args.layout,
                    "--planner-mode", mode,
                    "--explain",
                ]
            )
            assert "plan: mode=" + mode in output, output
            assert "stages:" in output, output
            for stage in (
                "candidate_generation",
                "superkey_prefilter",
                "row_verification",
                "topk_maintenance",
            ):
                assert stage in output, f"{stage} missing from --explain output"
            rankings[mode] = re.findall(r"joinability=\s*(\d+)", output)
            seed = re.search(r"seed column '(\w+)'", output)
            assert seed is not None, output
            if mode != "selector":
                # The skew corpus makes the cost model flip off the hot column.
                assert seed.group(1) == "cold", output

        assert rankings["selector"] == rankings["cost"] == rankings["adaptive"], (
            f"plan modes disagreed on the top-k: {rankings}"
        )

    print(f"plan --explain smoke OK (layout={args.layout}; "
          "selector/cost/adaptive agree, stages and estimates printed)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
