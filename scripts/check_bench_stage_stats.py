#!/usr/bin/env python
"""Validate the stage statistics in exported ``BENCH_*.json`` artifacts.

Run by the CI ``bench-smoke`` job after ``scripts/export_bench_json.py``:
asserts that the benchmark JSON actually carries the prefilter stage
columns the performance trajectory is tracked by, enforces the
kernel-vs-loop regression guard — the vectorized prefilter
(``repro.index.kernels``) must beat the per-row loop on the prefilter
stage of ``BENCH_columnar.json`` — enforces the sketch-tier
recall-vs-speedup guard on ``BENCH_sketch.json`` (>= 5x candidate
reduction at recall >= 0.95, threshold=0 byte-identical to exact),
enforces the SQL-pushdown guard on ``BENCH_sql.json`` (top-k identical to
mate, zero Python-side posting fetches, runtime within 1.2x of the exact
engine), and enforces the idle-telemetry overhead guard on
``BENCH_telemetry.json`` (a default session, telemetry off, stays within
2% of the bare engine).

The speedup bound is deliberately lenient (CI runners are noisy and the
smoke corpus is tiny); locally the kernels win by ~4-6x at benchmark
scale.

Usage::

    python scripts/check_bench_stage_stats.py --dir bench-artifacts
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: The prefilter kernels must be at least this much faster than the loop.
MIN_KERNEL_SPEEDUP = 1.5

#: The sketch prune must shrink the candidate universe at least this much.
MIN_SKETCH_CANDIDATE_REDUCTION = 5.0

#: Measured recall floor of the pruning sketch row.
MIN_SKETCH_RECALL = 0.95


def _load(directory: Path, name: str) -> dict:
    path = directory / f"BENCH_{name}.json"
    if not path.is_file():
        raise AssertionError(f"missing artifact {path}")
    return json.loads(path.read_text(encoding="utf-8"))


def check_columnar(directory: Path) -> list[str]:
    payload = _load(directory, "columnar")
    rows = {row["layout"]: row for row in payload["row_dicts"]}
    problems = []
    expected = {"legacy", "columnar", "columnar/loop"}
    if not expected <= set(rows):
        return [
            f"BENCH_columnar.json rows {sorted(rows)} are missing "
            f"{sorted(expected - set(rows))}"
        ]
    for layout in expected:
        for column in ("prefilter s", "discover s"):
            try:
                value = float(rows[layout][column])
            except (KeyError, ValueError) as exc:
                problems.append(
                    f"BENCH_columnar.json {layout!r} lacks a numeric "
                    f"{column!r} column: {exc}"
                )
                continue
            if value < 0:
                problems.append(
                    f"BENCH_columnar.json {layout!r} {column!r} is negative"
                )
    if problems:
        return problems
    kernel = float(rows["columnar"]["prefilter s"])
    loop = float(rows["columnar/loop"]["prefilter s"])
    if loop < MIN_KERNEL_SPEEDUP * kernel:
        problems.append(
            f"prefilter kernel regression: kernel {kernel:.4f}s vs loop "
            f"{loop:.4f}s is below the {MIN_KERNEL_SPEEDUP}x guard"
        )
    return problems


def check_planner(directory: Path) -> list[str]:
    payload = _load(directory, "planner")
    problems = []
    if "prefilter s" not in payload["headers"]:
        return ["BENCH_planner.json headers lack 'prefilter s'"]
    for row in payload["row_dicts"]:
        label = f"{row.get('scenario')}/{row.get('mode')}"
        try:
            prefilter = float(row["prefilter s"])
            runtime = float(row["runtime s"])
        except (KeyError, ValueError) as exc:
            problems.append(
                f"BENCH_planner.json {label} lacks numeric stage columns: {exc}"
            )
            continue
        if not 0.0 <= prefilter <= max(runtime, 0.0001):
            problems.append(
                f"BENCH_planner.json {label}: prefilter {prefilter}s "
                f"outside [0, runtime={runtime}s]"
            )
    return problems


def check_serve(directory: Path) -> list[str]:
    payload = _load(directory, "serve")
    problems = []
    for column in ("scatter s", "gather s", "identical"):
        if column not in payload["headers"]:
            problems.append(f"BENCH_serve.json headers lack {column!r}")
    if problems:
        return problems
    rows = {row["mode"]: row for row in payload["row_dicts"]}
    expected = {"threads", "process", "process+hedge"}
    if not expected <= set(rows):
        return [
            f"BENCH_serve.json rows {sorted(rows)} are missing "
            f"{sorted(expected - set(rows))}"
        ]
    for mode in expected:
        row = rows[mode]
        # The serving contract: every mode's top-k matched the thread engine.
        if row["identical"] != "yes":
            problems.append(
                f"BENCH_serve.json {mode!r}: top-k diverged from the thread "
                "engine ('identical' is not 'yes')"
            )
        for column in ("scatter s", "gather s"):
            try:
                value = float(row[column])
            except (KeyError, ValueError) as exc:
                problems.append(
                    f"BENCH_serve.json {mode!r} lacks a numeric "
                    f"{column!r} column: {exc}"
                )
                continue
            if value < 0:
                problems.append(
                    f"BENCH_serve.json {mode!r} {column!r} is negative"
                )
    return problems


def check_sketch(directory: Path) -> list[str]:
    payload = _load(directory, "sketch")
    rows = {row["mode"]: row for row in payload["row_dicts"]}
    expected = {"exact", "sketch0", "sketch"}
    if not expected <= set(rows):
        return [
            f"BENCH_sketch.json rows {sorted(rows)} are missing "
            f"{sorted(expected - set(rows))}"
        ]
    problems = []
    # The exhaustive tier (threshold=0) must match the exact engine exactly.
    for mode in ("sketch0", "sketch"):
        if rows[mode]["topk"] != "=":
            problems.append(
                f"BENCH_sketch.json {mode!r}: top-k diverged from the exact "
                "engine ('topk' is not '=')"
            )
    try:
        exact_candidates = int(rows["exact"]["candidates"])
        pruned_candidates = int(rows["sketch"]["candidates"])
        recall = float(rows["sketch"]["recall"])
        exact_runtime = float(rows["exact"]["runtime s"])
        sketch_runtime = float(rows["sketch"]["runtime s"])
    except (KeyError, ValueError) as exc:
        problems.append(f"BENCH_sketch.json lacks numeric guard columns: {exc}")
        return problems
    if pruned_candidates * MIN_SKETCH_CANDIDATE_REDUCTION > exact_candidates:
        problems.append(
            "sketch candidate-reduction regression: "
            f"{exact_candidates} -> {pruned_candidates} is below the "
            f"{MIN_SKETCH_CANDIDATE_REDUCTION}x guard"
        )
    if recall < MIN_SKETCH_RECALL:
        problems.append(
            f"sketch recall regression: {recall} is below the "
            f"{MIN_SKETCH_RECALL} floor"
        )
    if sketch_runtime >= exact_runtime:
        problems.append(
            f"sketch speedup regression: pruned run {sketch_runtime}s is "
            f"not faster than the exact run {exact_runtime}s"
        )
    return problems


#: The pushdown engine may cost at most this factor over the exact mate
#: engine at smoke scale (at real scale it should win; the smoke corpus is
#: too small for the per-query SQL compilation overhead to amortise fully).
MAX_SQL_RUNTIME_FACTOR = 1.2

#: Absolute slack on the pushdown runtime guard, in seconds: the smoke
#: totals are a few tens of ms, where one scheduler tick would otherwise
#: dominate the relative bound.
SQL_RUNTIME_SLACK_SECONDS = 0.05


def check_sql(directory: Path) -> list[str]:
    payload = _load(directory, "sql")
    by_key = {
        (row.get("scale"), row.get("engine")): row
        for row in payload["row_dicts"]
    }
    scales = sorted({scale for scale, _ in by_key})
    expected = {(scale, engine) for scale in scales for engine in ("mate", "sql")}
    if len(scales) != 2 or set(by_key) != expected:
        return [
            f"BENCH_sql.json rows {sorted(by_key)} do not cover "
            "(mate, sql) at two scales"
        ]
    problems = []
    for (scale, engine), row in by_key.items():
        # The contract: every row's top-k matched the mate engine exactly.
        if row.get("identical") != "yes":
            problems.append(
                f"BENCH_sql.json scale {scale} engine {engine!r}: top-k "
                "diverged from the mate engine ('identical' is not 'yes')"
            )
    for scale in scales:
        try:
            mate_runtime = float(by_key[(scale, "mate")]["runtime s"])
            sql_runtime = float(by_key[(scale, "sql")]["runtime s"])
            sql_fetched = int(by_key[(scale, "sql")]["pl fetched"])
            sql_scanned = int(by_key[(scale, "sql")]["rows scanned"])
            mate_fetched = int(by_key[(scale, "mate")]["pl fetched"])
        except (KeyError, ValueError) as exc:
            problems.append(
                f"BENCH_sql.json scale {scale} lacks numeric guard "
                f"columns: {exc}"
            )
            continue
        # The pushdown property: zero Python-side posting fetches, and the
        # database scanned exactly the volume the mate engine fetched.
        if sql_fetched != 0:
            problems.append(
                f"BENCH_sql.json scale {scale}: sql engine fetched "
                f"{sql_fetched} posting items into Python (must be 0)"
            )
        if sql_scanned != mate_fetched:
            problems.append(
                f"BENCH_sql.json scale {scale}: sql scanned {sql_scanned} "
                f"rows but mate fetched {mate_fetched}"
            )
        allowed = (
            mate_runtime * MAX_SQL_RUNTIME_FACTOR + SQL_RUNTIME_SLACK_SECONDS
        )
        if sql_runtime > allowed:
            problems.append(
                f"pushdown runtime regression at scale {scale}: sql "
                f"{sql_runtime:.4f}s exceeds {allowed:.4f}s "
                f"({MAX_SQL_RUNTIME_FACTOR}x mate {mate_runtime:.4f}s "
                f"+ {SQL_RUNTIME_SLACK_SECONDS}s slack)"
            )
    return problems


#: Idle-telemetry ceiling: a default session (telemetry constructed but
#: tracing off) may cost at most this factor over the bare engine.
MAX_IDLE_TELEMETRY_OVERHEAD = 1.02

#: Absolute slack on the idle-overhead guard, in seconds: at smoke scale
#: the totals are a few ms, where a single scheduler tick would otherwise
#: dominate the 2% relative bound.
IDLE_TELEMETRY_SLACK_SECONDS = 0.002


def check_telemetry(directory: Path) -> list[str]:
    payload = _load(directory, "telemetry")
    rows = {row["mode"]: row for row in payload["row_dicts"]}
    expected = {"engine_direct", "session_idle", "session_tracing"}
    if not expected <= set(rows):
        return [
            f"BENCH_telemetry.json rows {sorted(rows)} are missing "
            f"{sorted(expected - set(rows))}"
        ]
    problems = []
    try:
        direct = float(rows["engine_direct"]["total s"])
        idle = float(rows["session_idle"]["total s"])
        tracing = float(rows["session_tracing"]["total s"])
        spans = int(rows["session_tracing"]["spans"])
    except (KeyError, ValueError) as exc:
        problems.append(f"BENCH_telemetry.json lacks numeric guard columns: {exc}")
        return problems
    if min(direct, idle, tracing) <= 0:
        problems.append("BENCH_telemetry.json has a non-positive total")
        return problems
    allowed = direct * MAX_IDLE_TELEMETRY_OVERHEAD + IDLE_TELEMETRY_SLACK_SECONDS
    if idle > allowed:
        problems.append(
            "idle telemetry overhead regression: session_idle "
            f"{idle:.6f}s exceeds {allowed:.6f}s "
            f"({MAX_IDLE_TELEMETRY_OVERHEAD}x engine_direct {direct:.6f}s "
            f"+ {IDLE_TELEMETRY_SLACK_SECONDS}s slack)"
        )
    # Tracing must actually have produced spans, or the "overhead" rows
    # compared nothing.
    if spans <= 0:
        problems.append(
            "BENCH_telemetry.json session_tracing exported no spans"
        )
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--dir",
        type=Path,
        default=Path("."),
        help="directory holding the BENCH_*.json artifacts",
    )
    args = parser.parse_args(argv)
    problems = (
        check_columnar(args.dir)
        + check_planner(args.dir)
        + check_serve(args.dir)
        + check_sketch(args.dir)
        + check_sql(args.dir)
        + check_telemetry(args.dir)
    )
    if problems:
        for problem in problems:
            print(f"error: {problem}", file=sys.stderr)
        return 1
    print(
        "bench stage stats OK: prefilter columns present, kernel beats "
        "loop, serving top-k identical, sketch prune within the "
        "recall/speedup guard, sql pushdown identical with zero Python "
        "fetches and within the runtime guard, idle telemetry within the "
        "overhead guard"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
