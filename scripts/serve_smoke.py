#!/usr/bin/env python
"""HTTP serving smoke test (run by the CI ``serving`` job).

Boots the real thing — ``python -m repro.cli serve`` with the process-pool
execution mode — as a subprocess on an ephemeral port, then verifies the
deployment contract end to end over actual sockets:

* concurrent ``POST /v1/discover`` requests (process-pool ``sharded``
  engine) return top-k results byte-identical to an in-process session on
  the same corpus;
* ``GET /metrics`` serves Prometheus text exposition and the
  ``repro_http_requests_total`` counter reflects the served requests;
* a zero-capacity instance answers 429 with a ``Retry-After`` header
  (backpressure is visible to clients, not just internal);
* SIGTERM drains gracefully: the server prints its drain banner and exits 0.

Usage::

    PYTHONPATH=src python scripts/serve_smoke.py [--queries 4]
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
import tempfile
import time
import urllib.error
import urllib.request
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
_SRC = REPO_ROOT / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro import DiscoveryRequest, DiscoverySession, MateConfig  # noqa: E402
from repro.datagen import build_workload  # noqa: E402
from repro.storage import save_corpus_json  # noqa: E402

SERVE_BANNER = "serving on http://"
NUM_SHARDS = 2
K = 5


def launch_server(corpus_path: Path, extra_args: list[str]) -> tuple:
    """Start ``repro.cli serve`` and wait for its listening banner."""
    env = dict(os.environ, PYTHONPATH=str(_SRC))
    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.cli",
            "serve",
            str(corpus_path),
            "--port",
            "0",
            "--execution",
            "process",
            "--shards",
            str(NUM_SHARDS),
            *extra_args,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    deadline = time.monotonic() + 120
    base_url = None
    while time.monotonic() < deadline:
        line = process.stdout.readline()
        if not line:
            raise AssertionError(
                f"server exited during startup (rc={process.poll()})"
            )
        print(f"  [server] {line.rstrip()}")
        if SERVE_BANNER in line:
            base_url = line.split(SERVE_BANNER, 1)[1].strip()
            return process, f"http://{base_url}"
    raise AssertionError("server never printed its listening banner")


def post_discover(base_url: str, body: dict) -> tuple:
    request = urllib.request.Request(
        f"{base_url}/v1/discover",
        data=json.dumps(body).encode("utf-8"),
        method="POST",
    )
    try:
        with urllib.request.urlopen(request, timeout=60) as response:
            return response.status, json.load(response), dict(response.headers)
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read() or b"{}"), dict(error.headers)


def discover_body(query) -> dict:
    return {
        "query": {
            "name": query.table.name,
            "columns": list(query.table.columns),
            "rows": [list(row) for row in query.table.rows],
        },
        "key_columns": list(query.key_columns),
        "k": K,
        "engine": "sharded",
    }


def scrape_metrics(base_url: str) -> str:
    with urllib.request.urlopen(f"{base_url}/metrics", timeout=30) as response:
        assert response.status == 200, f"/metrics answered {response.status}"
        content_type = response.headers.get("Content-Type", "")
        assert content_type.startswith("text/plain"), (
            f"/metrics Content-Type {content_type!r} is not text/plain"
        )
        return response.read().decode("utf-8")


def assert_metrics(text: str, min_requests: int) -> None:
    """Validate the Prometheus exposition and the request counter's value."""
    requests_total = None
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        name, _, value = line.rpartition(" ")
        assert name and value, f"malformed sample line: {line!r}"
        float(value)  # every sample value must parse as a number
        if name == "repro_http_requests_total":
            requests_total = float(value)
    assert requests_total is not None, (
        "repro_http_requests_total missing from /metrics"
    )
    assert requests_total >= min_requests, (
        f"repro_http_requests_total={requests_total} after "
        f"{min_requests} requests"
    )
    for metric in (
        "repro_http_request_latency_seconds_bucket",
        "repro_request_latency_seconds_bucket",
        "repro_pool_requests_total",
        "repro_admission_admitted_total",
    ):
        assert metric in text, f"{metric} missing from /metrics"


def shutdown(process: subprocess.Popen) -> tuple[int, str]:
    process.send_signal(signal.SIGTERM)
    try:
        remainder = process.communicate(timeout=60)[0] or ""
    except subprocess.TimeoutExpired:
        process.kill()
        raise AssertionError("server did not exit within 60s of SIGTERM")
    return process.returncode, remainder


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--queries", type=int, default=4)
    args = parser.parse_args(argv)

    workload = build_workload(
        "WT_100", seed=31, num_queries=args.queries, corpus_scale=0.3
    )
    queries = workload.queries

    # The in-process reference: same corpus, same config the CLI builds.
    print("building in-process reference results ...")
    config = MateConfig(hash_size=128)
    with DiscoverySession(workload.corpus, config=config) as session:
        reference = [
            json.loads(
                json.dumps(
                    session.discover(
                        DiscoveryRequest(query=query, k=K, engine="sharded")
                    ).to_dict()
                )
            )["tables"]
            for query in queries
        ]

    with tempfile.TemporaryDirectory(prefix="mate-serve-smoke-") as tmp:
        corpus_path = save_corpus_json(workload.corpus, Path(tmp) / "corpus.json")

        print("launching process-pool server ...")
        process, base_url = launch_server(corpus_path, extra_args=[])
        try:
            with ThreadPoolExecutor(max_workers=len(queries)) as pool:
                responses = list(
                    pool.map(
                        lambda query: post_discover(base_url, discover_body(query)),
                        queries,
                    )
                )
            for query_index, (status, envelope, _) in enumerate(responses):
                assert status == 200, f"query {query_index}: HTTP {status}"
                served = envelope["tables"]
                expected = reference[query_index]
                assert served == expected, (
                    f"query {query_index}: served top-k diverged from the "
                    f"in-process session\n  served:   {served}\n"
                    f"  expected: {expected}"
                )
            print(f"OK: {len(queries)} concurrent queries byte-identical")
            metrics_text = scrape_metrics(base_url)
            assert_metrics(metrics_text, min_requests=len(queries))
            print("OK: /metrics serves Prometheus text with the request counter")
        finally:
            returncode, remainder = shutdown(process)
        assert returncode == 0, f"server exited {returncode} on SIGTERM"
        assert "drained" in remainder, (
            f"server did not print its drain banner; tail: {remainder[-500:]}"
        )
        print("OK: SIGTERM drained gracefully, exit 0")

        print("launching zero-capacity server for the backpressure path ...")
        process, base_url = launch_server(
            corpus_path, extra_args=["--max-pending", "0"]
        )
        try:
            status, envelope, headers = post_discover(
                base_url, discover_body(queries[0])
            )
            assert status == 429, f"expected 429 at zero capacity, got {status}"
            assert "Retry-After" in headers, "429 response lacks Retry-After"
            print(
                "OK: zero-capacity server rejected with 429, "
                f"Retry-After={headers['Retry-After']}"
            )
        finally:
            returncode, _ = shutdown(process)
        assert returncode == 0, f"server exited {returncode} on SIGTERM"

    print("serve smoke test passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
