#!/usr/bin/env python
"""Export machine-readable benchmark results as ``BENCH_<name>.json``.

Runs the registered smoke benchmarks (scaled via the same ``MATE_BENCH_*``
environment variables the pytest harness honours) and writes one JSON file
per benchmark with the run's scale knobs, wall time, result rows, and notes —
the artifacts the CI ``bench-smoke`` job uploads so the performance
trajectory of the repository is recorded per commit.

Usage::

    PYTHONPATH=src python scripts/export_bench_json.py               # all
    PYTHONPATH=src python scripts/export_bench_json.py columnar      # one
    PYTHONPATH=src python scripts/export_bench_json.py --out-dir ci/
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
_SRC = REPO_ROOT / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.api.schema import (  # noqa: E402  (sys.path setup must run first)
    KIND_BENCHMARK,
    json_envelope,
)
from repro.experiments import (  # noqa: E402
    ExperimentResult,
    ExperimentSettings,
    run_batch_service,
    run_columnar,
    run_ingest,
    run_planner,
    run_pushdown,
    run_serving,
    run_sketch,
    run_telemetry,
)


def _bench_columnar(settings: ExperimentSettings) -> ExperimentResult:
    return run_columnar(settings)


def _bench_service(settings: ExperimentSettings) -> ExperimentResult:
    return run_batch_service(settings, shard_counts=(1, 2))


def _bench_ingest(settings: ExperimentSettings) -> ExperimentResult:
    return run_ingest(settings)


def _bench_planner(settings: ExperimentSettings) -> ExperimentResult:
    return run_planner(settings)


def _bench_serve(settings: ExperimentSettings) -> ExperimentResult:
    return run_serving(settings, num_shards=2)


def _bench_sketch(settings: ExperimentSettings) -> ExperimentResult:
    return run_sketch(settings)


def _bench_sql(settings: ExperimentSettings) -> ExperimentResult:
    return run_pushdown(settings)


def _bench_telemetry(settings: ExperimentSettings) -> ExperimentResult:
    return run_telemetry(settings)


#: name -> callable(settings) -> ExperimentResult
BENCHMARKS = {
    "columnar": _bench_columnar,
    "ingest": _bench_ingest,
    "planner": _bench_planner,
    "serve": _bench_serve,
    "service": _bench_service,
    "sketch": _bench_sketch,
    "sql": _bench_sql,
    "telemetry": _bench_telemetry,
}


def bench_settings_from_env() -> ExperimentSettings:
    """Build experiment settings from the ``MATE_BENCH_*`` environment."""
    return ExperimentSettings(
        seed=int(os.environ.get("MATE_BENCH_SEED", "7")),
        num_queries=int(os.environ.get("MATE_BENCH_QUERIES", "2")),
        corpus_scale=float(os.environ.get("MATE_BENCH_CORPUS_SCALE", "0.3")),
        k=int(os.environ.get("MATE_BENCH_K", "10")),
    )


def export_benchmark(
    name: str, settings: ExperimentSettings, out_dir: Path
) -> Path:
    """Run one registered benchmark and write its ``BENCH_<name>.json``."""
    runner = BENCHMARKS[name]
    started = time.perf_counter()
    result = runner(settings)
    wall_seconds = time.perf_counter() - started
    # The same versioned envelope the CLI's --json output uses (one shared
    # response schema across every machine-readable artifact of the repo).
    payload = json_envelope(KIND_BENCHMARK, {
        "name": name,
        "title": result.name,
        "wall_seconds": round(wall_seconds, 4),
        "corpus_scale": settings.corpus_scale,
        "seed": settings.seed,
        "num_queries": settings.num_queries,
        "k": settings.k,
        "unix_time": int(time.time()),
        "headers": result.headers,
        "rows": [[str(cell) for cell in row] for row in result.rows],
        "row_dicts": [
            {key: str(value) for key, value in row.items()}
            for row in result.row_dicts()
        ],
        "notes": list(result.notes),
    })
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / f"BENCH_{name}.json"
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return path


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "benchmarks",
        nargs="*",
        metavar="BENCH",
        help=f"benchmarks to export (default: all of {', '.join(sorted(BENCHMARKS))})",
    )
    parser.add_argument(
        "--out-dir",
        type=Path,
        default=REPO_ROOT,
        help="directory the BENCH_*.json files are written to",
    )
    args = parser.parse_args(argv)
    names = args.benchmarks or sorted(BENCHMARKS)
    unknown = [name for name in names if name not in BENCHMARKS]
    if unknown:
        parser.error(
            f"unknown benchmark(s) {', '.join(unknown)}; "
            f"registered: {', '.join(sorted(BENCHMARKS))}"
        )
    settings = bench_settings_from_env()
    for name in names:
        path = export_benchmark(name, settings, args.out_dir)
        print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
