#!/usr/bin/env python
"""WAL crash-recovery smoke test (run by the CI ``ingest`` job).

Spawns a child process that streams tables into a persisted
:class:`repro.ingest.LiveIndex`, printing each table id *after* the write is
acknowledged (WAL appended + buffer applied).  The parent SIGKILLs the child
mid-ingest — no clean shutdown, no seal — then reopens the directory and
verifies the recovery contract:

* every acknowledged table is visible after WAL replay (durability), and
* the recovered index equals a bulk-built index over those same tables
  (correctness) and keeps accepting writes.

A torn in-flight record (the table being logged when the kill landed) is
allowed to be absent; anything acknowledged is not.

Usage::

    PYTHONPATH=src python scripts/wal_crash_smoke.py [--tables 200]
"""

from __future__ import annotations

import argparse
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
_SRC = REPO_ROOT / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

#: The ingesting child: prints "ACK <table_id>" per durable write, forever
#: re-ingesting fresh ids until killed.
CHILD_SCRIPT = """
import sys
sys.path.insert(0, {src!r})
from repro import LiveIndex, MateConfig
from repro.datamodel import Table

live = LiveIndex.open({directory!r}, config=MateConfig(hash_size=128))
table_id = 0
while True:
    table = Table(
        table_id=table_id,
        name=f"t{{table_id}}",
        columns=["a", "b"],
        rows=[[f"v{{table_id % 17}}", f"w{{(table_id * 3) % 17}}"]] * 3,
    )
    live.add_table(table)
    print(f"ACK {{table_id}}", flush=True)
    table_id += 1
"""


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--tables", type=int, default=200,
        help="acknowledged tables to wait for before killing the child",
    )
    args = parser.parse_args(argv)

    from repro import LiveIndex, MateConfig, TableCorpus, build_index
    from repro.datamodel import Table

    with tempfile.TemporaryDirectory(prefix="wal-crash-") as tmp:
        directory = str(Path(tmp) / "live")
        child = subprocess.Popen(
            [sys.executable, "-c",
             CHILD_SCRIPT.format(src=str(_SRC), directory=directory)],
            stdout=subprocess.PIPE,
            text=True,
        )
        acknowledged: list[int] = []
        assert child.stdout is not None
        deadline = time.monotonic() + 120
        while len(acknowledged) < args.tables:
            if time.monotonic() > deadline:
                child.kill()
                print("error: child too slow to acknowledge", file=sys.stderr)
                return 1
            line = child.stdout.readline()
            if not line:
                print("error: child died before the kill", file=sys.stderr)
                return 1
            if line.startswith("ACK "):
                acknowledged.append(int(line.split()[1]))
        # SIGKILL mid-ingest: the child gets no chance to flush or seal.
        child.send_signal(signal.SIGKILL)
        child.wait()
        child.stdout.close()

        recovered = LiveIndex.open(directory, config=MateConfig(hash_size=128))
        visible = recovered.indexed_tables()
        missing = [tid for tid in acknowledged if tid not in visible]
        if missing:
            print(
                f"error: {len(missing)} acknowledged tables lost after "
                f"replay: {missing[:10]}",
                file=sys.stderr,
            )
            return 1
        # At most the one in-flight (never acknowledged) table may also be
        # visible — its WAL record can have been completed before the kill.
        extra = visible - set(acknowledged)
        if len(extra) > 1:
            print(f"error: unexpected extra tables {sorted(extra)}", file=sys.stderr)
            return 1

        # The replayed buffer equals a bulk rebuild over the same tables.
        corpus = TableCorpus(
            name="smoke",
            tables=sorted(recovered.recovered_tables(), key=lambda t: t.table_id),
        )
        bulk = build_index(corpus, config=MateConfig(hash_size=128))
        probes = [f"v{i}" for i in range(17)] + [f"w{i}" for i in range(17)]
        if recovered.fetch(probes) != bulk.fetch(probes):
            print("error: replayed fetch differs from bulk rebuild", file=sys.stderr)
            return 1

        # Recovery is not read-only: ingestion continues where it left off.
        next_id = max(visible) + 1
        recovered.add_table(
            Table(table_id=next_id, name="post-crash", columns=["a", "b"],
                  rows=[["v1", "w1"]])
        )
        recovered.close()

        print(
            f"wal crash smoke OK: killed child (pid {child.pid}) after "
            f"{len(acknowledged)} acked tables; {len(visible)} replayed "
            f"({len(extra)} in-flight), fetch identical to bulk rebuild, "
            "post-crash ingest accepted"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
