#!/usr/bin/env python
"""Distributed-tracing smoke test (run by the CI ``serving`` job).

Boots ``python -m repro.cli serve --execution process --trace-out ...`` on
an ephemeral port, sends one traced discovery (client-chosen
``X-Trace-Id``), and validates the exported JSONL span file end to end:

* the response echoes the client's trace id in ``X-Trace-Id``;
* every span in the file carries that trace id;
* the spans form a **single tree**: exactly one root (``http.discover``),
  every other span's ``parent_id`` resolves to a span in the file;
* the tree crosses the process boundary: per-shard ``shard.discover``
  spans are parented under ``pool.discover`` and were recorded in worker
  processes (their ``pid`` differs from the server's).

Usage::

    PYTHONPATH=src python scripts/trace_smoke.py
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import tempfile
import time
import urllib.request
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
_SRC = REPO_ROOT / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.datagen import build_workload  # noqa: E402
from repro.storage import save_corpus_json  # noqa: E402
from repro.telemetry import read_trace_file, span_tree  # noqa: E402

SERVE_BANNER = "serving on http://"
NUM_SHARDS = 2
TRACE_ID = "cafe" * 4


def launch_server(corpus_path: Path, trace_path: Path) -> tuple:
    env = dict(os.environ, PYTHONPATH=str(_SRC))
    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.cli",
            "serve",
            str(corpus_path),
            "--port",
            "0",
            "--execution",
            "process",
            "--shards",
            str(NUM_SHARDS),
            "--trace-out",
            str(trace_path),
            "--log-json",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    deadline = time.monotonic() + 120
    while time.monotonic() < deadline:
        line = process.stdout.readline()
        if not line:
            raise AssertionError(
                f"server exited during startup (rc={process.poll()})"
            )
        print(f"  [server] {line.rstrip()}")
        if SERVE_BANNER in line:
            return process, f"http://{line.split(SERVE_BANNER, 1)[1].strip()}"
    raise AssertionError("server never printed its listening banner")


def post_traced_discover(base_url: str, query) -> dict:
    body = {
        "query": {
            "name": query.table.name,
            "columns": list(query.table.columns),
            "rows": [list(row) for row in query.table.rows],
        },
        "key_columns": list(query.key_columns),
        "k": 5,
        "engine": "sharded",
    }
    request = urllib.request.Request(
        f"{base_url}/v1/discover",
        data=json.dumps(body).encode("utf-8"),
        headers={"X-Trace-Id": TRACE_ID},
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=60) as response:
        assert response.status == 200, f"discover answered {response.status}"
        echoed = response.headers.get("X-Trace-Id")
        assert echoed == TRACE_ID, (
            f"X-Trace-Id echoed {echoed!r}, expected {TRACE_ID!r}"
        )
        return json.load(response)


def validate_trace(trace_path: Path, server_pid: int) -> None:
    spans = read_trace_file(trace_path)
    assert spans, f"{trace_path} holds no spans"
    for span in spans:
        assert span["trace_id"] == TRACE_ID, (
            f"span {span['name']} has trace_id {span['trace_id']!r}"
        )

    by_id = {span["span_id"]: span for span in spans}
    tree = span_tree(spans)
    roots = tree.get(None, [])
    assert len(roots) == 1, (
        f"expected exactly one root span, got "
        f"{[span['name'] for span in roots]}"
    )
    root = roots[0]
    assert root["name"] == "http.discover", f"root is {root['name']!r}"
    for span in spans:
        if span is root:
            continue
        assert span["parent_id"] in by_id, (
            f"span {span['name']} has dangling parent {span['parent_id']!r}"
        )

    names = [span["name"] for span in spans]
    for expected in ("http.discover", "session.discover", "pool.discover"):
        assert names.count(expected) == 1, (
            f"expected exactly one {expected!r} span, got {names}"
        )
    pool_span = next(s for s in spans if s["name"] == "pool.discover")
    shard_spans = [s for s in spans if s["name"] == "shard.discover"]
    assert len(shard_spans) == NUM_SHARDS, (
        f"expected {NUM_SHARDS} shard.discover spans, got {len(shard_spans)}"
    )
    worker_pids = set()
    for span in shard_spans:
        assert span["parent_id"] == pool_span["span_id"], (
            "shard.discover is not parented under pool.discover"
        )
        worker_pids.add(span["pid"])
    assert all(pid != server_pid for pid in worker_pids), (
        "worker spans report the server pid — they did not cross processes"
    )
    print(
        f"OK: {len(spans)} spans, single tree under {TRACE_ID}, "
        f"{len(shard_spans)} worker spans from pids {sorted(worker_pids)}"
    )


def main() -> int:
    workload = build_workload("WT_100", seed=43, num_queries=1, corpus_scale=0.3)
    with tempfile.TemporaryDirectory(prefix="mate-trace-smoke-") as tmp:
        corpus_path = save_corpus_json(workload.corpus, Path(tmp) / "corpus.json")
        trace_path = Path(tmp) / "trace.jsonl"

        print("launching traced process-pool server ...")
        process, base_url = launch_server(corpus_path, trace_path)
        try:
            envelope = post_traced_discover(base_url, workload.queries[0])
            assert envelope.get("tables") is not None, "no tables in envelope"
            print("OK: traced discovery answered, X-Trace-Id echoed")
        finally:
            process.send_signal(signal.SIGTERM)
            try:
                process.communicate(timeout=60)
            except subprocess.TimeoutExpired:
                process.kill()
                raise AssertionError("server did not exit within 60s of SIGTERM")
        assert process.returncode == 0, f"server exited {process.returncode}"

        validate_trace(trace_path, server_pid=process.pid)

    print("trace smoke test passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
