"""Tests for the short-value XASH variant (repro.hashing.short_values)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import MateConfig
from repro.hashing import (
    ShortValueXashHashFunction,
    XashHashFunction,
    available_hash_functions,
    bigram_bucket,
    create_hash_function,
    popcount,
)

#: Web-scale budget: alpha = 6 (5 character bits + 1 length bit) at 128 bits,
#: so values with fewer than 5 distinct characters are "short".
CONFIG = MateConfig(hash_size=128, expected_unique_values=700_000_000)


@pytest.fixture()
def xash():
    return XashHashFunction(CONFIG)


@pytest.fixture()
def xash_short():
    return ShortValueXashHashFunction(CONFIG)


class TestBigramBucket:
    def test_bucket_is_in_alphabet(self):
        assert bigram_bucket("ab", CONFIG.alphabet) in CONFIG.alphabet

    def test_order_matters(self):
        assert bigram_bucket("ab", CONFIG.alphabet) != bigram_bucket("ba", CONFIG.alphabet)

    def test_deterministic(self):
        assert bigram_bucket("us", CONFIG.alphabet) == bigram_bucket("us", CONFIG.alphabet)

    def test_rejects_wrong_length(self):
        with pytest.raises(ValueError):
            bigram_bucket("abc", CONFIG.alphabet)


class TestShortValueHash:
    def test_registered_in_the_registry(self):
        assert "xash_short" in available_hash_functions()
        function = create_hash_function("xash_short", CONFIG)
        assert isinstance(function, ShortValueXashHashFunction)

    def test_empty_value_hashes_to_zero(self, xash_short):
        assert xash_short.hash_value("") == 0

    def test_long_values_match_plain_xash(self, xash, xash_short):
        # A value with >= budget distinct characters leaves no unused budget,
        # so the variant must be bit-identical to plain XASH.
        for value in ("muhammad", "photographer", "hannover", "table1234"):
            assert not xash_short.is_short_value(value)
            assert xash_short.hash_value(value) == xash.hash_value(value)

    def test_short_values_gain_extra_bits(self, xash, xash_short):
        for value in ("us", "uk", "de", "a1", "ab"):
            assert xash_short.is_short_value(value)
            plain = xash.hash_value(value)
            extended = xash_short.hash_value(value)
            assert popcount(extended) >= popcount(plain)
        assert any(
            popcount(xash_short.hash_value(v)) > popcount(xash.hash_value(v))
            for v in ("us", "uk", "de", "ab")
        )

    def test_budget_is_respected(self, xash_short):
        budget = CONFIG.alpha  # character budget + 1 length bit
        for value in ("u", "us", "usa", "ab12", "xyz"):
            assert popcount(xash_short.hash_value(value)) <= budget

    def test_short_hash_covers_plain_character_bits(self, xash, xash_short):
        """The variant only adds bits, it never moves the plain XASH bits."""
        for value in ("us", "de", "a1"):
            plain = xash.hash_value(value)
            extended = xash_short.hash_value(value)
            assert plain & extended == plain

    def test_never_merges_values_plain_xash_distinguishes(self, xash, xash_short):
        """Adding bigram bits never makes two distinct hashes collide."""
        codes = ["us", "su", "ab", "ba", "de", "ed", "a1", "1a"]
        for first in codes:
            for second in codes:
                if first == second:
                    continue
                if xash.hash_value(first) != xash.hash_value(second):
                    assert (
                        xash_short.hash_value(first) != xash_short.hash_value(second)
                    )

    def test_reduces_masking_false_positives(self, xash, xash_short):
        """Short keys are masked by unrelated row values less often with bigrams.

        This is the actual §9 failure mode: a short key combination sets so
        few bits that the OR-aggregated super key of an unrelated row covers
        it by accident.  With a fixed seed, the bigram-extended variant must
        produce no more such accidental coverings than plain XASH.
        """
        import random

        from repro.hashing import SuperKeyGenerator, subsumes

        rng = random.Random(13)
        alphabet = "abcdefghijklmnopqrstuvwxyz"
        codes = ["".join(rng.choice(alphabet) for _ in range(2)) for _ in range(120)]
        words = [
            "".join(rng.choice(alphabet) for _ in range(rng.randint(6, 12)))
            for _ in range(8)
        ]

        def masking_count(function_name: str) -> int:
            generator = SuperKeyGenerator.from_name(function_name, CONFIG)
            row_super_key = generator.row_super_key(words)
            return sum(
                1
                for first, second in zip(codes[::2], codes[1::2])
                if subsumes(row_super_key, generator.key_super_key((first, second)))
            )

        assert masking_count("xash_short") <= masking_count("xash")

    def test_deterministic(self, xash_short):
        assert xash_short.hash_value("us") == xash_short.hash_value("us")

    @given(st.text(alphabet="abcdefghijklmnopqrstuvwxyz0123456789 ", min_size=1, max_size=12))
    @settings(max_examples=80, deadline=None)
    def test_property_fits_hash_size_and_budget(self, value):
        function = ShortValueXashHashFunction(CONFIG)
        hashed = function.hash_value(value)
        assert 0 <= hashed < (1 << CONFIG.hash_size)
        assert popcount(hashed) <= CONFIG.alpha

    @given(st.text(alphabet="abcdefghijklmnopqrstuvwxyz", min_size=5, max_size=15))
    @settings(max_examples=50, deadline=None)
    def test_property_long_values_identical_to_xash(self, value):
        plain = XashHashFunction(CONFIG)
        extended = ShortValueXashHashFunction(CONFIG)
        if not extended.is_short_value(value):
            assert extended.hash_value(value) == plain.hash_value(value)


class TestShortValueNoFalseNegatives:
    """The super-key no-false-negative guarantee holds for the variant too."""

    @given(
        st.lists(
            st.text(alphabet="abcdefghijklmnopqrstuvwxyz0123456789", min_size=1, max_size=4),
            min_size=2,
            max_size=6,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_row_super_key_always_covers_member_values(self, row):
        from repro.hashing import SuperKeyGenerator, subsumes

        generator = SuperKeyGenerator.from_name("xash_short", CONFIG)
        row_super_key = generator.row_super_key(row)
        for value in row:
            assert subsumes(row_super_key, generator.value_hash(value))
        key_super_key = generator.key_super_key(row[:2])
        assert subsumes(row_super_key, key_super_key)


class TestShortValueExperiment:
    def test_plumbing(self):
        from repro.experiments import ExperimentSettings, run_short_values

        settings = ExperimentSettings(seed=5, num_queries=1, corpus_scale=0.1, k=3)
        result = run_short_values(settings, cardinality=20, hashes=("xash", "xash_short"))
        assert [row[0] for row in result.rows] == ["xash", "xash_short"]
        for row in result.row_dicts():
            assert 0.0 <= row["precision"] <= 1.0

    def test_scenario_keys_are_short(self):
        from repro.experiments import ExperimentSettings, build_short_value_scenario

        settings = ExperimentSettings(seed=5, num_queries=1, corpus_scale=0.1, k=3)
        _, queries = build_short_value_scenario(settings, cardinality=15)
        for query in queries:
            for key_tuple in query.key_tuples():
                assert all(len(value) <= 3 for value in key_tuple)
