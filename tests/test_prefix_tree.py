"""Tests for the prefix-tree related-work baseline (repro.baselines.prefix_tree)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import MateConfig
from repro.core import MateDiscovery, exact_joinability, top_k_by_exact_joinability
from repro.baselines import PrefixTreeDiscovery, TablePrefixTree
from repro.datamodel import Table
from repro.exceptions import DiscoveryError
from repro.index import build_index
from repro.metrics import DiscoveryCounters

CONFIG = MateConfig(expected_unique_values=100_000, k=5)


@pytest.fixture()
def figure1(running_example_corpus):
    """The paper's running example: query d and candidate table T1."""
    return running_example_corpus


class TestTablePrefixTree:
    @pytest.fixture()
    def table(self):
        return Table(
            table_id=1,
            name="t1",
            columns=["vorname", "nachname", "land"],
            rows=[
                ["muhammad", "lee", "us"],
                ["ansel", "adams", "uk"],
                ["muhammad", "ali", "us"],
            ],
        )

    def test_node_count_shares_prefixes(self, table):
        tree = TablePrefixTree(table)
        # Root + 2 first-level (muhammad, ansel) + 3 second + 3 third = 9.
        assert tree.node_count == 9

    def test_contains_with_full_assignment(self, table):
        tree = TablePrefixTree(table)
        assert tree.contains({0: "muhammad", 1: "lee", 2: "us"})
        assert not tree.contains({0: "muhammad", 1: "adams", 2: "us"})

    def test_contains_with_wildcards(self, table):
        tree = TablePrefixTree(table)
        assert tree.contains({1: "adams"})
        assert tree.contains({2: "us"})
        assert not tree.contains({1: "newton"})

    def test_contains_counts_node_visits(self, table):
        tree = TablePrefixTree(table)
        counters = DiscoveryCounters()
        tree.contains({0: "muhammad", 1: "lee", 2: "us"}, counters)
        assert counters.value_comparisons >= 3

    def test_contains_rejects_bad_column(self, table):
        tree = TablePrefixTree(table)
        with pytest.raises(DiscoveryError):
            tree.contains({7: "x"})

    def test_joinability_with_known_mapping(self, table):
        tree = TablePrefixTree(table)
        key_tuples = [("muhammad", "lee"), ("ansel", "adams"), ("helmut", "newton")]
        assert tree.joinability_with_mapping(key_tuples, (0, 1)) == 2
        assert tree.joinability_with_mapping(key_tuples, (1, 0)) == 0

    def test_joinability_rejects_repeated_mapping(self, table):
        tree = TablePrefixTree(table)
        with pytest.raises(DiscoveryError):
            tree.joinability_with_mapping([("a", "b")], (1, 1))

    @given(
        st.lists(
            st.tuples(st.sampled_from("abc"), st.sampled_from("xyz")),
            min_size=1,
            max_size=10,
        ),
        st.lists(
            st.tuples(st.sampled_from("abc"), st.sampled_from("xyz")),
            min_size=1,
            max_size=6,
        ),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_known_mapping_matches_set_intersection(self, rows, keys):
        table = Table(
            table_id=3, name="random", columns=["p", "q"],
            rows=[list(row) for row in rows],
        )
        tree = TablePrefixTree(table)
        distinct_keys = sorted(set(keys))
        expected = len(set(distinct_keys) & {tuple(row) for row in table.rows})
        assert tree.joinability_with_mapping(distinct_keys, (0, 1)) == expected


class TestPrefixTreeDiscovery:
    def test_figure1_example(self, figure1):
        query, corpus = figure1
        engine = PrefixTreeDiscovery(corpus, config=CONFIG)
        result = engine.discover(query, k=2)
        assert result.tables
        assert result.tables[0].joinability == 5
        assert result.counters.extra["mappings_evaluated"] > 0

    def test_agrees_with_brute_force_on_small_corpus(self, figure1):
        query, corpus = figure1
        engine = PrefixTreeDiscovery(corpus, config=CONFIG)
        result = engine.discover(query, k=3)
        expected = top_k_by_exact_joinability(query, list(corpus), k=3)
        assert result.result_tuples() == expected

    def test_agrees_with_mate_on_figure1(self, figure1):
        query, corpus = figure1
        index = build_index(corpus, config=CONFIG)
        mate = MateDiscovery(corpus, index, config=CONFIG).discover(query, k=2)
        prefix = PrefixTreeDiscovery(corpus, config=CONFIG).discover(query, k=2)
        assert prefix.result_tuples() == mate.result_tuples()

    def test_best_mapping_is_reported(self, figure1):
        query, corpus = figure1
        engine = PrefixTreeDiscovery(corpus, config=CONFIG)
        result = engine.discover(query, k=1)
        top = result.tables[0]
        score, expected_mapping = exact_joinability(
            query, corpus.get_table(top.table_id)
        )
        assert top.joinability == score
        assert top.column_mapping is not None
        assert set(top.column_mapping) == set(expected_mapping)

    def test_wide_tables_are_skipped(self, figure1):
        query, corpus = figure1
        wide = Table(
            table_id=900,
            name="very_wide",
            columns=[f"c{i}" for i in range(15)],
            rows=[[str(i) for i in range(15)]],
        )
        corpus.add_table(wide)
        engine = PrefixTreeDiscovery(corpus, config=CONFIG, max_candidate_columns=10)
        result = engine.discover(query, k=2)
        assert result.counters.extra["tables_skipped_too_wide"] == 1.0
        corpus.remove_table(900)

    def test_mapping_enumeration_is_factorial(self, figure1):
        """The number of enumerated mappings equals sum of P(|T'|, |Q|)."""
        from math import perm

        query, corpus = figure1
        engine = PrefixTreeDiscovery(corpus, config=CONFIG)
        result = engine.discover(query, k=2)
        expected = sum(
            perm(table.num_columns, query.key_size)
            for table in corpus
            if table.num_columns >= query.key_size
        )
        assert result.counters.extra["mappings_evaluated"] == expected

    def test_invalid_parameters(self, figure1):
        query, corpus = figure1
        with pytest.raises(DiscoveryError):
            PrefixTreeDiscovery(corpus, config=CONFIG, max_candidate_columns=0)
        engine = PrefixTreeDiscovery(corpus, config=CONFIG)
        with pytest.raises(DiscoveryError):
            engine.discover(query, k=0)

    def test_total_nodes(self, figure1):
        _, corpus = figure1
        engine = PrefixTreeDiscovery(corpus, config=CONFIG)
        assert engine.total_nodes() >= len(corpus)

    def test_default_k_from_config(self, figure1):
        query, corpus = figure1
        engine = PrefixTreeDiscovery(corpus, config=CONFIG)
        assert engine.discover(query).k == CONFIG.k


class TestRelatedWorkExperiment:
    def test_plumbing(self):
        from repro.experiments import ExperimentSettings, run_related_work

        settings = ExperimentSettings(seed=5, num_queries=1, corpus_scale=0.1, k=3)
        result = run_related_work(settings, workload_names=("WT_10",))
        assert len(result.rows) == 1
        row = result.row_dicts()[0]
        assert row["query set"] == "WT_10"
        assert row["mate runtime (s)"] >= 0.0
        assert row["avg mappings enumerated"] > 0
