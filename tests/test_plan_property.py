"""Property-based plan equivalence (the plan-equivalence CI job's core).

Two properties over arbitrary corpora, queries, and budgets, on both index
layouts:

* with re-planning disabled, the executor's top-k is *byte-identical* to
  the verbatim pre-refactor loop (:func:`tests.helpers.legacy_discover`) —
  tables, mappings, names, completeness, and every counter;
* with re-planning enabled (deliberately trigger-happy knobs), the result
  is still a valid top-k: the same scores as the brute-force oracle, with
  tie order free — MATE's exact verification makes the reported scores
  independent of the seed column.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro import MateConfig, MateDiscovery, build_index
from repro.api import PlannerOptions
from repro.api.request import RequestBudget
from repro.core import top_k_by_exact_joinability
from repro.datamodel import QueryTable, Table, TableCorpus
from repro.index import use_kernel

from tests.helpers import (
    assert_results_byte_identical,
    assert_topk_equivalent,
    available_kernel_modes,
    legacy_discover,
)

#: Small vocabulary so that overlaps actually happen.
VOCABULARY = ["ada", "alan", "grace", "berlin", "paris", "rome", "us", "uk", "de"]

values = st.sampled_from(VOCABULARY)

#: Trigger-happy adaptive knobs: chunk size 1 and the minimum re-plan factor
#: make re-planning fire on tiny random corpora whenever estimates wobble.
AGGRESSIVE_ADAPTIVE = PlannerOptions(
    mode="adaptive", replan_factor=1.0, replan_check_every=1, sample_size=1
)


def corpus_and_query(draw) -> tuple[TableCorpus, QueryTable]:
    corpus = TableCorpus(name="prop")
    num_tables = draw(st.integers(min_value=1, max_value=5))
    for table_id in range(num_tables):
        rows = draw(
            st.lists(
                st.lists(values, min_size=3, max_size=3),
                min_size=1,
                max_size=6,
            )
        )
        corpus.add_table(
            Table(table_id=table_id, name=f"t{table_id}", columns=["a", "b", "c"],
                  rows=rows)
        )
    query_rows = draw(
        st.lists(
            st.lists(values, min_size=2, max_size=2), min_size=1, max_size=6
        )
    )
    query = QueryTable(
        table=Table(table_id=900, name="q", columns=["x", "y"], rows=query_rows),
        key_columns=["x", "y"],
    )
    return corpus, query


def build_engine(corpus: TableCorpus, layout: str) -> MateDiscovery:
    config = MateConfig(
        hash_size=128, k=3, expected_unique_values=1000, index_layout=layout
    )
    return MateDiscovery(corpus, build_index(corpus, config=config), config=config)


@pytest.mark.parametrize("layout", ["columnar", "legacy"])
class TestPlanEquivalenceProperties:
    @given(data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_executor_is_byte_identical_to_legacy_loop(self, layout, data):
        corpus, query = corpus_and_query(data.draw)
        engine = build_engine(corpus, layout)
        limit = data.draw(
            st.one_of(st.none(), st.integers(min_value=0, max_value=6))
        )
        budget = None if limit is None else RequestBudget(max_pl_fetches=limit)
        oracle_budget = (
            None if limit is None else RequestBudget(max_pl_fetches=limit)
        )
        assert_results_byte_identical(
            engine.discover(query, budget=budget),
            legacy_discover(engine, query, budget=oracle_budget),
        )

    @given(data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_adaptive_replanning_yields_a_valid_topk(self, layout, data):
        corpus, query = corpus_and_query(data.draw)
        engine = build_engine(corpus, layout)
        result = engine.discover(query, planner=AGGRESSIVE_ADAPTIVE)
        truth = top_k_by_exact_joinability(query, corpus, k=engine.config.k)
        assert_topk_equivalent(result.result_tuples(), truth)

    @given(data=st.data())
    @settings(max_examples=25, deadline=None)
    def test_cost_mode_yields_a_valid_topk(self, layout, data):
        corpus, query = corpus_and_query(data.draw)
        engine = build_engine(corpus, layout)
        result = engine.discover(
            query, planner=PlannerOptions(mode="cost", sample_size=2)
        )
        truth = top_k_by_exact_joinability(query, corpus, k=engine.config.k)
        assert_topk_equivalent(result.result_tuples(), truth)


@pytest.mark.parametrize("kernel", available_kernel_modes())
class TestKernelPlanEquivalence:
    """End-to-end byte-identity with the prefilter kernels forced on/off.

    The same random corpora and queries as the plan-equivalence properties,
    but run on the columnar layout under every exercisable kernel mode —
    ``off`` re-proves the per-row loop, ``fallback`` and ``numpy`` prove
    that the vectorized prefilter changes *nothing* observable: tables,
    scores, mappings, names, completeness, and every counter (including
    ``superkey_checks`` / ``short_circuit_hits`` / rule-2 prunes) match the
    verbatim pre-refactor loop byte for byte.
    """

    @given(data=st.data())
    @settings(max_examples=30, deadline=None)
    def test_forced_kernel_is_byte_identical_to_legacy_loop(self, kernel, data):
        corpus, query = corpus_and_query(data.draw)
        engine = build_engine(corpus, "columnar")
        with use_kernel(kernel):
            result = engine.discover(query)
        oracle = legacy_discover(engine, query)
        assert_results_byte_identical(result, oracle)

    @given(data=st.data())
    @settings(max_examples=15, deadline=None)
    def test_forced_kernel_respects_budgets(self, kernel, data):
        corpus, query = corpus_and_query(data.draw)
        engine = build_engine(corpus, "columnar")
        limit = data.draw(st.integers(min_value=0, max_value=6))
        with use_kernel(kernel):
            result = engine.discover(
                query, budget=RequestBudget(max_pl_fetches=limit)
            )
        oracle = legacy_discover(
            engine, query, budget=RequestBudget(max_pl_fetches=limit)
        )
        assert_results_byte_identical(result, oracle)
