"""Property-based tests for index construction and maintenance."""

import random

from hypothesis import given, settings, strategies as st

from repro import MateConfig, build_index
from repro.datamodel import Table, TableCorpus
from repro.hashing import SuperKeyGenerator
from repro.index import IndexMaintainer

VOCABULARY = ["ada", "alan", "grace", "berlin", "paris", "rome", "42", "x y"]
values = st.sampled_from(VOCABULARY)
CONFIG = MateConfig(hash_size=128, expected_unique_values=700_000_000)


def build_random_corpus(rng: random.Random, num_tables: int = 3) -> TableCorpus:
    corpus = TableCorpus(name="prop")
    for table_id in range(num_tables):
        num_columns = rng.randint(1, 4)
        rows = [
            [rng.choice(VOCABULARY) for _ in range(num_columns)]
            for _ in range(rng.randint(1, 6))
        ]
        corpus.add_table(
            Table(
                table_id=table_id,
                name=f"t{table_id}",
                columns=[f"c{i}" for i in range(num_columns)],
                rows=rows,
            )
        )
    return corpus


class TestIndexInvariants:
    @given(seed=st.integers(0, 100_000))
    @settings(max_examples=40, deadline=None)
    def test_posting_count_equals_non_missing_cells(self, seed):
        corpus = build_random_corpus(random.Random(seed))
        index = build_index(corpus, config=CONFIG)
        expected = sum(
            1
            for table in corpus
            for row in table.rows
            for value in row
            if value != ""
        )
        assert index.num_posting_items() == expected
        assert index.num_rows() == sum(t.num_rows for t in corpus)

    @given(seed=st.integers(0, 100_000))
    @settings(max_examples=40, deadline=None)
    def test_every_posting_points_at_its_value(self, seed):
        corpus = build_random_corpus(random.Random(seed))
        index = build_index(corpus, config=CONFIG)
        for value in index.values():
            for item in index.posting_list(value):
                assert corpus.get_cell(item.table_id, item.row_index, item.column_index) == value

    @given(seed=st.integers(0, 100_000))
    @settings(max_examples=40, deadline=None)
    def test_super_keys_cover_value_hashes(self, seed):
        corpus = build_random_corpus(random.Random(seed))
        index = build_index(corpus, config=CONFIG)
        generator = SuperKeyGenerator.from_name("xash", CONFIG)
        for value in index.values():
            value_hash = generator.value_hash(value)
            for item in index.posting_list(value):
                super_key = index.super_key(item.table_id, item.row_index)
                assert super_key | value_hash == super_key


class TestMaintenanceRoundTrips:
    @given(seed=st.integers(0, 100_000))
    @settings(max_examples=30, deadline=None)
    def test_random_edit_sequence_keeps_index_consistent(self, seed):
        rng = random.Random(seed)
        corpus = build_random_corpus(rng)
        index = build_index(corpus, config=CONFIG)
        generator = SuperKeyGenerator.from_name("xash", CONFIG)
        maintainer = IndexMaintainer(corpus, index, generator)

        for _ in range(6):
            operation = rng.choice(["insert_row", "update_cell", "delete_row", "insert_table"])
            table_ids = corpus.table_ids()
            if operation == "insert_table":
                maintainer.insert_table(
                    Table(
                        table_id=corpus.next_table_id(),
                        name="new",
                        columns=["a", "b"],
                        rows=[[rng.choice(VOCABULARY), rng.choice(VOCABULARY)]],
                    )
                )
            elif not table_ids:
                continue
            else:
                table_id = rng.choice(table_ids)
                table = corpus.get_table(table_id)
                if operation == "insert_row":
                    maintainer.insert_row(
                        table_id, [rng.choice(VOCABULARY)] * table.num_columns
                    )
                elif operation == "update_cell" and table.num_rows:
                    maintainer.update_cell(
                        table_id,
                        rng.randrange(table.num_rows),
                        rng.randrange(table.num_columns),
                        rng.choice(VOCABULARY),
                    )
                elif operation == "delete_row" and table.num_rows:
                    maintainer.delete_row(table_id, rng.randrange(table.num_rows))

        assert maintainer.verify_consistency() == []

    @given(seed=st.integers(0, 100_000))
    @settings(max_examples=20, deadline=None)
    def test_delete_table_then_rebuild_matches_fresh_build(self, seed):
        rng = random.Random(seed)
        corpus = build_random_corpus(rng, num_tables=4)
        index = build_index(corpus, config=CONFIG)
        generator = SuperKeyGenerator.from_name("xash", CONFIG)
        maintainer = IndexMaintainer(corpus, index, generator)

        victim = rng.choice(corpus.table_ids())
        maintainer.delete_table(victim)

        fresh = build_index(corpus, config=CONFIG)
        assert index.num_posting_items() == fresh.num_posting_items()
        assert set(index.iter_super_keys()) == set(fresh.iter_super_keys())
