"""Tests for the paged posting store and fetch-cost model (repro.storage.paged)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import MateConfig
from repro.datagen import generate_corpus
from repro.exceptions import StorageError
from repro.index import build_index
from repro.storage import FetchCostModel, PagedPostingStore

CONFIG = MateConfig(expected_unique_values=100_000)


@pytest.fixture(scope="module")
def corpus_and_index():
    corpus = generate_corpus("webtables", seed=5, scale=0.15)
    index = build_index(corpus, config=CONFIG)
    return corpus, index


class TestFetchCostModel:
    def test_cost_grows_with_pages(self):
        model = FetchCostModel()
        assert model.cost(10) > model.cost(1) > model.cost(0) == 0.0

    def test_cached_pages_are_cheaper(self):
        model = FetchCostModel()
        assert model.cost(0, pages_cached=10) < model.cost(10, pages_cached=0)

    def test_negative_counts_rejected(self):
        with pytest.raises(StorageError):
            FetchCostModel().cost(-1)
        with pytest.raises(StorageError):
            FetchCostModel().cost(1, pages_cached=-1)

    @given(st.integers(min_value=0, max_value=10_000), st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=50)
    def test_property_cost_is_monotone(self, pages, cached):
        model = FetchCostModel()
        assert model.cost(pages + 1, cached) >= model.cost(pages, cached)
        assert model.cost(pages, cached + 1) >= model.cost(pages, cached)


class TestPagedPostingStoreLayout:
    def test_every_indexed_value_has_pages(self, corpus_and_index):
        _, index = corpus_and_index
        store = PagedPostingStore(index)
        assert store.num_pages >= 1
        for value in index.values():
            pages = store.pages_for_value(value)
            assert pages
            assert all(0 <= page < store.num_pages for page in pages)

    def test_unknown_value_has_no_pages(self, corpus_and_index):
        _, index = corpus_and_index
        store = PagedPostingStore(index)
        assert store.pages_for_value("value-that-does-not-exist") == ()

    def test_long_posting_lists_span_multiple_pages(self, corpus_and_index):
        _, index = corpus_and_index
        store = PagedPostingStore(index, page_size_bytes=256)
        longest_value = max(index.values(), key=index.posting_list_length)
        assert len(store.pages_for_value(longest_value)) > 1

    def test_super_key_layout_is_wider(self, corpus_and_index):
        _, index = corpus_and_index
        with_keys = PagedPostingStore(index, include_super_keys=True)
        without_keys = PagedPostingStore(index, include_super_keys=False)
        assert with_keys.storage_bytes() > without_keys.storage_bytes()
        assert with_keys.num_pages >= without_keys.num_pages

    def test_invalid_parameters(self, corpus_and_index):
        _, index = corpus_and_index
        with pytest.raises(StorageError):
            PagedPostingStore(index, page_size_bytes=0)
        with pytest.raises(StorageError):
            PagedPostingStore(index, buffer_pool_pages=-1)


class TestPagedPostingStoreFetch:
    def test_fetch_returns_same_items_as_index(self, corpus_and_index):
        _, index = corpus_and_index
        store = PagedPostingStore(index)
        values = sorted(index.values())[:20]
        assert store.fetch(values) == index.fetch(values)

    def test_accounting_accumulates(self, corpus_and_index):
        _, index = corpus_and_index
        store = PagedPostingStore(index)
        values = sorted(index.values())[:10]
        store.fetch(values)
        first = store.accounting.as_dict()
        store.fetch(values)
        second = store.accounting.as_dict()
        assert second["fetches"] == 2
        assert second["values_probed"] == first["values_probed"] * 2
        assert second["estimated_seconds"] >= first["estimated_seconds"]

    def test_repeated_fetch_hits_the_buffer_pool(self, corpus_and_index):
        _, index = corpus_and_index
        store = PagedPostingStore(index, buffer_pool_pages=10_000)
        values = sorted(index.values())[:25]
        store.fetch(values)
        cold_pages = store.accounting.pages_read
        store.fetch(values)
        assert store.accounting.pages_read == cold_pages
        assert store.accounting.pages_from_cache > 0
        assert store.accounting.cache_hit_ratio > 0.0

    def test_zero_capacity_buffer_never_caches(self, corpus_and_index):
        _, index = corpus_and_index
        store = PagedPostingStore(index, buffer_pool_pages=0)
        values = sorted(index.values())[:10]
        store.fetch(values)
        store.fetch(values)
        assert store.accounting.pages_from_cache == 0

    def test_lru_eviction_bounds_cache_benefit(self, corpus_and_index):
        _, index = corpus_and_index
        tiny = PagedPostingStore(index, page_size_bytes=512, buffer_pool_pages=1)
        large = PagedPostingStore(index, page_size_bytes=512, buffer_pool_pages=10_000)
        values = sorted(index.values())[:50]
        for _ in range(2):
            tiny.fetch(values)
            large.fetch(values)
        assert tiny.accounting.pages_from_cache <= large.accounting.pages_from_cache

    def test_missing_and_duplicate_probe_values(self, corpus_and_index):
        _, index = corpus_and_index
        store = PagedPostingStore(index)
        value = next(iter(sorted(index.values())))
        items = store.fetch([value, value, "", "no-such-value"])
        assert items == index.fetch([value])
        assert store.accounting.values_probed == 2  # "" is dropped, dup collapsed

    def test_estimated_fetch_seconds_is_side_effect_free(self, corpus_and_index):
        _, index = corpus_and_index
        store = PagedPostingStore(index)
        values = sorted(index.values())[:30]
        estimate = store.estimated_fetch_seconds(values)
        assert estimate > 0.0
        assert store.accounting.fetches == 0

    def test_reset_accounting(self, corpus_and_index):
        _, index = corpus_and_index
        store = PagedPostingStore(index)
        store.fetch(sorted(index.values())[:5])
        store.reset_accounting()
        assert store.accounting.fetches == 0
        assert store.accounting.cache_hit_ratio == 0.0

    def test_fetch_cost_scales_with_query_breadth(self, corpus_and_index):
        """Fetching more distinct values touches at least as many pages."""
        _, index = corpus_and_index
        store = PagedPostingStore(index)
        values = sorted(index.values())
        narrow = store.estimated_fetch_seconds(values[:5])
        broad = store.estimated_fetch_seconds(values[:100])
        assert broad >= narrow
