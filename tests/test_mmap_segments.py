"""Lifecycle tests for mmap-backed ``.seg`` segments (repro.storage.paged).

Covers the whole contract of the persisted columnar segment format:

* write / load round trip — fetch output, super keys, and discovery results
  byte-identical to the in-memory index the segment was written from, with
  the packed kernel input served as zero-copy views into the mapping;
* a *second process* mapping the same file sees identical postings (the
  shared-page claim, proven with a real subprocess);
* explicit close semantics — reads after :meth:`close` raise
  :class:`~repro.exceptions.IndexClosedError`, close is idempotent;
* read-only semantics — every mutation raises ``IndexError_``;
* structural damage — truncation, wrong magic, torn footer, checksum
  mismatch — raises the typed
  :class:`~repro.exceptions.SegmentFormatError`, never garbage output;
* oversize (spilled) super keys survive the round trip;
* the live-index directory: seal persists ``.seg`` files, reopening
  recovers identical fetches, and legacy JSON segment files keep loading.
"""

from __future__ import annotations

import json
import random
import struct
import subprocess
import sys
from pathlib import Path

import pytest

import repro
from repro import LiveIndex, MateConfig, MateDiscovery, Table, TableCorpus, build_index
from repro.datamodel import QueryTable
from repro.exceptions import (
    IndexClosedError,
    IndexError_,
    SegmentFormatError,
    StorageError,
)
from repro.storage import (
    SEGMENT_MAGIC,
    SEGMENT_SUFFIX,
    MappedSegmentIndex,
    load_segment,
    write_segment,
)
from repro.storage.serialization import save_index_json

CONFIG = MateConfig(
    hash_size=128, k=3, expected_unique_values=1000, index_layout="columnar"
)

COLUMNS = ["name", "city", "team"]

PROBES = [f"n{i}" for i in range(13)] + [f"c{i}" for i in range(13)] + ["absent"]


def make_corpus(seed: int = 7, num_tables: int = 6) -> TableCorpus:
    rng = random.Random(seed)
    corpus = TableCorpus(name="seg")
    for table_id in range(num_tables):
        rows = [
            [f"n{rng.randint(0, 12)}", f"c{rng.randint(0, 12)}", f"t{rng.randint(0, 12)}"]
            for _ in range(rng.randint(2, 8))
        ]
        corpus.add_table(
            Table(table_id=table_id, name=f"t{table_id}", columns=COLUMNS, rows=rows)
        )
    return corpus


def make_query(seed: int = 3) -> QueryTable:
    rng = random.Random(seed)
    table = Table(
        table_id=9_999,
        name="q",
        columns=["name", "city"],
        rows=[[f"n{rng.randint(0, 12)}", f"c{rng.randint(0, 12)}"] for _ in range(5)],
    )
    return QueryTable(table=table, key_columns=["name", "city"])


def fetch_signature(index) -> list:
    """Order-preserving, JSON-able dump of everything a fetch can see."""
    return [
        [
            item.value,
            item.table_id,
            item.column_index,
            item.row_index,
            item.super_key,
        ]
        for item in index.fetch(PROBES)
    ]


@pytest.fixture()
def segment(tmp_path):
    corpus = make_corpus()
    index = build_index(corpus, config=CONFIG)
    path = write_segment(index, tmp_path / f"seg-0001{SEGMENT_SUFFIX}", fsync=False)
    return corpus, index, path


class TestRoundTrip:
    def test_fetch_identity(self, segment):
        _corpus, index, path = segment
        mapped = load_segment(path)
        try:
            assert isinstance(mapped, MappedSegmentIndex)
            assert mapped.hash_function_name == index.hash_function_name
            assert mapped.hash_size == index.hash_size
            assert fetch_signature(mapped) == fetch_signature(index)
            assert sorted(mapped.iter_super_keys()) == sorted(
                index.iter_super_keys()
            )
            assert mapped.indexed_tables() == index.indexed_tables()
        finally:
            mapped.close()

    def test_blocks_carry_zero_copy_packed_views(self, segment):
        _corpus, _index, path = segment
        mapped = load_segment(path)
        try:
            blocks = mapped.fetch_batch(PROBES)
            assert blocks
            for block in blocks:
                # The kernels' input: packed big-endian keys, zero copy.
                assert isinstance(block.super_key_bytes, memoryview)
                assert block.key_width == CONFIG.hash_size // 8
                assert isinstance(block.table_ids, memoryview)
        finally:
            mapped.close()

    def test_discovery_results_identical(self, segment):
        corpus, index, path = segment
        mapped = load_segment(path)
        try:
            query = make_query()
            live = MateDiscovery(corpus, index, config=CONFIG).discover(query)
            cold = MateDiscovery(corpus, mapped, config=CONFIG).discover(query)
            assert cold.result_tuples() == live.result_tuples()
            mine = cold.counters.as_dict()
            theirs = live.counters.as_dict()
            for volatile in ("runtime_seconds", "stages"):
                mine.pop(volatile, None)
                theirs.pop(volatile, None)
            assert mine == theirs
        finally:
            mapped.close()

    def test_second_process_sees_identical_postings(self, segment):
        _corpus, index, path = segment
        src_dir = str(Path(repro.__file__).resolve().parents[1])
        script = (
            "import json, sys\n"
            f"sys.path.insert(0, {src_dir!r})\n"
            "from repro.storage import load_segment\n"
            f"index = load_segment({str(path)!r})\n"
            f"probes = {PROBES!r}\n"
            "items = [[i.value, i.table_id, i.column_index, i.row_index,"
            " i.super_key] for i in index.fetch(probes)]\n"
            "print(json.dumps(items))\n"
            "index.close()\n"
        )
        completed = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert completed.returncode == 0, completed.stderr
        assert json.loads(completed.stdout) == fetch_signature(index)

    def test_oversize_spilled_key_round_trip(self, tmp_path):
        corpus = make_corpus(seed=1, num_tables=2)
        index = build_index(corpus, config=CONFIG)
        wide = 1 << 300  # far beyond the 128-bit packed slots
        index.set_super_key(0, 0, wide)
        path = write_segment(index, tmp_path / f"wide{SEGMENT_SUFFIX}", fsync=False)
        mapped = load_segment(path)
        try:
            assert sorted(mapped.iter_super_keys()) == sorted(
                index.iter_super_keys()
            )
            assert fetch_signature(mapped) == fetch_signature(index)
        finally:
            mapped.close()


class TestCloseSemantics:
    def test_reads_after_close_raise_typed_error(self, segment):
        _corpus, _index, path = segment
        mapped = load_segment(path)
        mapped.close()
        with pytest.raises(IndexClosedError):
            mapped.fetch(["n1"])
        with pytest.raises(IndexClosedError):
            mapped.fetch_batch(["n1"])
        with pytest.raises(IndexClosedError):
            mapped.add_posting("n1", 0, 0, 0)

    def test_close_is_idempotent(self, segment):
        _corpus, _index, path = segment
        mapped = load_segment(path)
        mapped.close()
        mapped.close()

    def test_close_with_outstanding_blocks(self, segment):
        # A fetched block pins mapping buffers; close() must still succeed
        # (the mapping is released when the last view dies).
        _corpus, _index, path = segment
        mapped = load_segment(path)
        blocks = mapped.fetch_batch(PROBES)
        assert blocks
        mapped.close()
        assert len(blocks[0]) > 0  # the snapshot stays readable

    def test_unlink_while_mapped_keeps_serving(self, segment):
        # POSIX semantics the live index's compaction relies on: unlinking
        # a mapped segment must not disturb readers of the open mapping.
        _corpus, index, path = segment
        mapped = load_segment(path)
        try:
            Path(path).unlink()
            assert fetch_signature(mapped) == fetch_signature(index)
        finally:
            mapped.close()


class TestReadOnly:
    def test_every_mutation_raises(self, segment):
        _corpus, _index, path = segment
        mapped = load_segment(path)
        try:
            with pytest.raises(IndexError_):
                mapped.add_posting("n1", 0, 0, 0)
            with pytest.raises(IndexError_):
                mapped.set_super_key(0, 0, 1)
            with pytest.raises(IndexError_):
                mapped.or_into_super_key(0, 0, 1)
            with pytest.raises(IndexError_):
                mapped.remove_table(0)
            with pytest.raises(IndexError_):
                mapped.remove_row(0, 0)
            with pytest.raises(IndexError_):
                mapped.remove_column(0, 0)
        finally:
            mapped.close()


class TestStructuralDamage:
    def test_missing_file(self, tmp_path):
        with pytest.raises(StorageError):
            load_segment(tmp_path / "nope.seg")

    def test_too_small_file(self, tmp_path):
        path = tmp_path / "tiny.seg"
        path.write_bytes(b"x")
        with pytest.raises(SegmentFormatError, match="truncated"):
            load_segment(path)

    def test_wrong_leading_magic(self, segment, tmp_path):
        _corpus, _index, path = segment
        data = bytearray(Path(path).read_bytes())
        data[:8] = b"NOTASEGM"
        bad = tmp_path / "magic.seg"
        bad.write_bytes(bytes(data))
        with pytest.raises(SegmentFormatError, match="leading magic"):
            load_segment(bad)

    def test_truncated_file_is_a_torn_footer(self, segment, tmp_path):
        _corpus, _index, path = segment
        data = Path(path).read_bytes()
        torn = tmp_path / "torn.seg"
        torn.write_bytes(data[: len(data) // 2])
        with pytest.raises(SegmentFormatError):
            load_segment(torn)

    def test_flipped_directory_byte_fails_checksum(self, segment, tmp_path):
        _corpus, _index, path = segment
        data = bytearray(Path(path).read_bytes())
        footer = struct.Struct("<QQI4s")
        directory_offset, _length, _crc, _magic = footer.unpack(
            bytes(data[-footer.size :])
        )
        data[directory_offset] ^= 0xFF
        bad = tmp_path / "crc.seg"
        bad.write_bytes(bytes(data))
        with pytest.raises(SegmentFormatError, match="checksum"):
            load_segment(bad)

    def test_magic_prefix_alone_is_rejected(self, tmp_path):
        path = tmp_path / "husk.seg"
        path.write_bytes(SEGMENT_MAGIC + b"\x00" * 64)
        with pytest.raises(SegmentFormatError):
            load_segment(path)


class TestLiveIndexSegments:
    def make_table(self, table_id: int, seed: int) -> Table:
        rng = random.Random(seed)
        rows = [
            [f"n{rng.randint(0, 12)}", f"c{rng.randint(0, 12)}", f"t{rng.randint(0, 12)}"]
            for _ in range(rng.randint(2, 6))
        ]
        return Table(
            table_id=table_id, name=f"t{table_id}", columns=COLUMNS, rows=rows
        )

    def test_seal_persists_binary_segments(self, tmp_path):
        live = LiveIndex(config=CONFIG, directory=tmp_path, fsync=False)
        live.add_table(self.make_table(1, 11))
        live.seal()
        live.close()
        seg_files = sorted(tmp_path.glob(f"*{SEGMENT_SUFFIX}"))
        assert len(seg_files) == 1
        assert seg_files[0].read_bytes()[:8] == SEGMENT_MAGIC
        assert not list(tmp_path.glob("segment-*.json"))

    def test_reopened_directory_serves_identical_fetches(self, tmp_path):
        live = LiveIndex(config=CONFIG, directory=tmp_path, fsync=False)
        for table_id in (1, 2, 3):
            live.add_table(self.make_table(table_id, table_id))
            if table_id != 3:
                live.seal()
        expected = [list(map(list, live.fetch([probe]))) for probe in PROBES]
        live.close()
        reopened = LiveIndex(config=CONFIG, directory=tmp_path, fsync=False)
        try:
            assert [
                list(map(list, reopened.fetch([probe]))) for probe in PROBES
            ] == expected
        finally:
            reopened.close()

    def test_merge_drops_stale_segment_files(self, tmp_path):
        live = LiveIndex(config=CONFIG, directory=tmp_path, fsync=False)
        for table_id in (1, 2):
            live.add_table(self.make_table(table_id, table_id))
            live.seal()
        assert len(list(tmp_path.glob(f"*{SEGMENT_SUFFIX}"))) == 2
        assert live.merge(0, None) is not None
        assert len(list(tmp_path.glob(f"*{SEGMENT_SUFFIX}"))) == 1
        live.close()

    def test_legacy_json_segment_still_loads(self, tmp_path):
        live = LiveIndex(config=CONFIG, directory=tmp_path, fsync=False)
        live.add_table(self.make_table(1, 5))
        live.seal()
        expected = [list(map(list, live.fetch([probe]))) for probe in PROBES]
        live.close()

        # Rewrite the directory the way a pre-binary-format process left it:
        # a JSON segment file, referenced by name from the manifest.
        (seg_path,) = tmp_path.glob(f"*{SEGMENT_SUFFIX}")
        mapped = load_segment(seg_path)
        json_path = seg_path.with_suffix(".json")
        save_index_json(mapped, json_path)
        mapped.close()
        seg_path.unlink()
        manifest_path = tmp_path / "manifest.json"
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
        manifest["segments"][0]["file"] = json_path.name
        manifest_path.write_text(json.dumps(manifest), encoding="utf-8")

        reopened = LiveIndex(config=CONFIG, directory=tmp_path, fsync=False)
        try:
            assert [
                list(map(list, reopened.fetch([probe]))) for probe in PROBES
            ] == expected
        finally:
            reopened.close()
