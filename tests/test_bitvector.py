"""Tests for repro.hashing.bitvector."""

import pytest

from repro.exceptions import HashingError
from repro.hashing import (
    fold,
    from_bit_string,
    mask,
    popcount,
    rotate_left,
    rotate_right,
    subsumes,
    to_bit_string,
    truncate,
)
from repro.hashing.bitvector import get_bit, set_bit


class TestBasics:
    def test_mask(self):
        assert mask(0) == 0
        assert mask(4) == 0b1111
        with pytest.raises(HashingError):
            mask(-1)

    def test_truncate(self):
        assert truncate(0b10110, 3) == 0b110

    def test_popcount(self):
        assert popcount(0) == 0
        assert popcount(0b1011) == 3
        with pytest.raises(HashingError):
            popcount(-1)

    def test_set_and_get_bit(self):
        value = set_bit(0, 5)
        assert get_bit(value, 5) == 1
        assert get_bit(value, 4) == 0
        with pytest.raises(HashingError):
            set_bit(0, -1)
        with pytest.raises(HashingError):
            get_bit(0, -1)


class TestRotation:
    def test_paper_example(self):
        # Section 5.3.5: "a 3-bit rotation of '01100101' equals '00101011'".
        value = from_bit_string("01100101")
        rotated = rotate_left(value, 3, 8)
        assert to_bit_string(rotated, 8) == "00101011"

    def test_rotation_preserves_popcount(self):
        value = 0b1011001
        for shift in range(20):
            assert popcount(rotate_left(value, shift, 7)) == popcount(value)

    def test_full_rotation_is_identity(self):
        value = 0b1010101
        assert rotate_left(value, 7, 7) == value
        assert rotate_left(value, 0, 7) == value

    def test_left_then_right_is_identity(self):
        value = 0b110010
        assert rotate_right(rotate_left(value, 4, 6), 4, 6) == value

    def test_rejects_value_wider_than_width(self):
        with pytest.raises(HashingError):
            rotate_left(0b10000, 1, 4)
        with pytest.raises(HashingError):
            rotate_left(1, 1, 0)


class TestSubsumption:
    def test_subset_is_subsumed(self):
        assert subsumes(0b1110, 0b0110)
        assert subsumes(0b1110, 0)
        assert subsumes(0b1110, 0b1110)

    def test_non_subset_is_not_subsumed(self):
        assert not subsumes(0b1110, 0b0001)
        assert not subsumes(0, 0b1)


class TestBitStrings:
    def test_roundtrip(self):
        assert from_bit_string(to_bit_string(0b1011, 8)) == 0b1011

    def test_to_bit_string_width_check(self):
        with pytest.raises(HashingError):
            to_bit_string(0b100000000, 8)

    def test_from_bit_string_validation(self):
        assert from_bit_string("") == 0
        with pytest.raises(HashingError):
            from_bit_string("012")


class TestFold:
    def test_fold_small_value_unchanged(self):
        assert fold(0b1010, 8) == 0b1010

    def test_fold_xors_chunks(self):
        # 0xAB00CD folded to 8 bits: 0xCD ^ 0x00 ^ 0xAB
        assert fold(0xAB00CD, 8) == 0xCD ^ 0x00 ^ 0xAB

    def test_fold_rejects_bad_width(self):
        with pytest.raises(HashingError):
            fold(1, 0)
