"""Tests for repro.datamodel.corpus: TableCorpus and its statistics."""

import pytest

from repro.datamodel import Table, TableCorpus
from repro.exceptions import CorpusError, DataModelError


def make_corpus() -> TableCorpus:
    corpus = TableCorpus(name="test")
    corpus.add_table(
        Table(
            table_id=0,
            name="a",
            columns=["x", "y"],
            rows=[["1", "2"], ["3", "4"]],
        )
    )
    corpus.add_table(
        Table(table_id=1, name="b", columns=["x"], rows=[["1"], ["5"], [""]])
    )
    return corpus


class TestContainer:
    def test_len_iter_contains(self):
        corpus = make_corpus()
        assert len(corpus) == 2
        assert {t.table_id for t in corpus} == {0, 1}
        assert 0 in corpus and 7 not in corpus

    def test_get_table_and_missing(self):
        corpus = make_corpus()
        assert corpus.get_table(1).name == "b"
        with pytest.raises(CorpusError):
            corpus.get_table(99)

    def test_duplicate_id_rejected(self):
        corpus = make_corpus()
        with pytest.raises(CorpusError):
            corpus.add_table(Table(table_id=0, name="dup", columns=["z"], rows=[]))

    def test_remove_table(self):
        corpus = make_corpus()
        removed = corpus.remove_table(0)
        assert removed.name == "a"
        assert len(corpus) == 1
        with pytest.raises(CorpusError):
            corpus.remove_table(0)

    def test_create_table_assigns_next_id(self):
        corpus = make_corpus()
        table = corpus.create_table("c", ["z"], [["9"]])
        assert table.table_id == 2
        assert corpus.next_table_id() == 3

    def test_next_table_id_empty(self):
        assert TableCorpus().next_table_id() == 0


class TestAccess:
    def test_get_row_and_cell(self):
        corpus = make_corpus()
        assert corpus.get_row(0, 1) == ("3", "4")
        assert corpus.get_cell(0, 0, 1) == "2"
        with pytest.raises(DataModelError):
            corpus.get_row(0, 9)

    def test_table_ids(self):
        assert make_corpus().table_ids() == [0, 1]


class TestStatistics:
    def test_statistics_counts(self):
        stats = make_corpus().statistics()
        assert stats.num_tables == 2
        assert stats.num_columns == 3
        assert stats.num_rows == 5
        assert stats.num_cells == 2 * 2 + 3 * 1
        # values: 1,2,3,4,5 ("" excluded)
        assert stats.num_unique_values == 5
        assert stats.avg_columns_per_table == pytest.approx(1.5)
        assert stats.avg_rows_per_table == pytest.approx(2.5)
        assert "tables" in stats.as_dict()

    def test_unique_values_excludes_missing(self):
        assert make_corpus().unique_values() == {"1", "2", "3", "4", "5"}

    def test_average_columns_empty_corpus(self):
        assert TableCorpus().average_columns_per_table() == 0.0
        stats = TableCorpus().statistics()
        assert stats.num_tables == 0
        assert stats.avg_rows_per_table == 0.0
