"""Tests for the MATE discovery engine (Algorithm 1)."""

import pytest

from repro import MateDiscovery, build_index
from repro.core import top_k_by_exact_joinability
from repro.datamodel import QueryTable, Table, TableCorpus
from repro.exceptions import DiscoveryError


class TestRunningExample:
    def test_finds_candidate_with_joinability_five(self, config, running_example_corpus):
        query, corpus = running_example_corpus
        index = build_index(corpus, config=config)
        mate = MateDiscovery(corpus, index, config=config)
        result = mate.discover(query, k=2)
        assert result.tables, "expected at least one joinable table"
        best = result.tables[0]
        assert best.table_id == 1
        assert best.joinability == 5
        # Best mapping: f_name -> vorname (0), l_name -> nachname (1),
        # country -> land (2).
        assert best.column_mapping == (0, 1, 2)

    def test_counters_populated(self, config, running_example_corpus):
        query, corpus = running_example_corpus
        index = build_index(corpus, config=config)
        result = MateDiscovery(corpus, index, config=config).discover(query, k=1)
        counters = result.counters
        assert counters.pl_items_fetched > 0
        assert counters.rows_checked > 0
        assert counters.true_positive_rows >= 5
        assert counters.runtime_seconds > 0
        assert 0.0 <= result.precision <= 1.0

    def test_result_helpers(self, config, running_example_corpus):
        query, corpus = running_example_corpus
        index = build_index(corpus, config=config)
        result = MateDiscovery(corpus, index, config=config).discover(query, k=2)
        assert result.table_ids()[0] == 1
        assert result.joinability_of(1) == 5
        assert result.joinability_of(999) == 0
        assert result.tables[0].as_dict()["joinability"] == 5


from tests.helpers import assert_topk_equivalent


class TestAgainstBruteForce:
    def test_matches_exact_top_k_on_workload(self, config, tiny_workload, tiny_index):
        corpus = tiny_workload.corpus
        mate = MateDiscovery(corpus, tiny_index, config=config)
        for query in tiny_workload.queries:
            result = mate.discover(query, k=3)
            truth = top_k_by_exact_joinability(query, corpus, k=3)
            assert_topk_equivalent(result.result_tuples(), truth)

    def test_different_k_values(self, config, tiny_workload, tiny_index):
        corpus = tiny_workload.corpus
        mate = MateDiscovery(corpus, tiny_index, config=config)
        query = tiny_workload.queries[0]
        for k in (1, 2, 5):
            result = mate.discover(query, k=k)
            truth = top_k_by_exact_joinability(query, corpus, k=k)
            assert_topk_equivalent(result.result_tuples(), truth)


class TestConfigurationHandling:
    def test_rejects_non_positive_k(self, config, running_example_corpus):
        query, corpus = running_example_corpus
        index = build_index(corpus, config=config)
        mate = MateDiscovery(corpus, index, config=config)
        with pytest.raises(DiscoveryError):
            mate.discover(query, k=0)

    def test_rejects_hash_function_mismatch(self, config, running_example_corpus):
        _, corpus = running_example_corpus
        index = build_index(corpus, config=config, hash_function_name="bloom")
        with pytest.raises(DiscoveryError):
            MateDiscovery(corpus, index, config=config, hash_function_name="xash")

    def test_mismatch_allowed_when_filter_disabled(self, config, running_example_corpus):
        query, corpus = running_example_corpus
        index = build_index(corpus, config=config, hash_function_name="bloom")
        engine = MateDiscovery(
            corpus, index, config=config, hash_function_name="xash",
            row_filter_mode="none",
        )
        assert engine.discover(query, k=1).tables[0].joinability == 5

    def test_rejects_selector_outside_key(self, config, running_example_corpus):
        query, corpus = running_example_corpus
        index = build_index(corpus, config=config)

        def bad_selector(query_table, idx=None):
            return "salary"  # not a key column

        mate = MateDiscovery(corpus, index, config=config, column_selector=bad_selector)
        with pytest.raises(DiscoveryError):
            mate.discover(query)

    def test_table_filters_can_be_disabled(self, config, tiny_workload, tiny_index):
        corpus = tiny_workload.corpus
        query = tiny_workload.queries[0]
        filtered = MateDiscovery(corpus, tiny_index, config=config).discover(query, k=2)
        unfiltered = MateDiscovery(
            corpus, tiny_index, config=config, use_table_filters=False
        ).discover(query, k=2)
        assert filtered.result_tuples() == unfiltered.result_tuples()
        assert (
            unfiltered.counters.tables_pruned_by_rule1 == 0
            and unfiltered.counters.tables_pruned_by_rule2 == 0
        )


class TestEdgeCases:
    def test_query_with_no_matches(self, config):
        corpus = TableCorpus(name="empty-match")
        corpus.create_table("only", ["a", "b"], [["x", "y"]])
        index = build_index(corpus, config=config)
        query_table = Table(
            table_id=99, name="q", columns=["p", "q"], rows=[["nope", "never"]]
        )
        query = QueryTable(table=query_table, key_columns=["p", "q"])
        result = MateDiscovery(corpus, index, config=config).discover(query, k=3)
        assert result.tables == []
        assert result.counters.pl_items_fetched == 0

    def test_query_with_missing_key_values(self, config):
        corpus = TableCorpus(name="missing")
        corpus.create_table("t", ["a", "b", "c"], [["x", "y", "z"]])
        index = build_index(corpus, config=config)
        query_table = Table(
            table_id=99,
            name="q",
            columns=["p", "q"],
            rows=[["x", None], ["x", "y"], [None, None]],
        )
        query = QueryTable(table=query_table, key_columns=["p", "q"])
        result = MateDiscovery(corpus, index, config=config).discover(query, k=3)
        # Only the complete key tuple (x, y) may count.
        assert result.result_tuples() == [(0, 1)]

    def test_single_column_key_degenerates_to_unary_join(self, config):
        corpus = TableCorpus(name="unary")
        corpus.create_table("t", ["a", "b"], [["x", "1"], ["y", "2"], ["x", "3"]])
        index = build_index(corpus, config=config)
        query_table = Table(table_id=99, name="q", columns=["k"], rows=[["x"], ["y"], ["z"]])
        query = QueryTable(table=query_table, key_columns=["k"])
        result = MateDiscovery(corpus, index, config=config).discover(query, k=1)
        assert result.result_tuples() == [(0, 2)]

    def test_duplicate_query_rows_do_not_inflate_joinability(self, config):
        corpus = TableCorpus(name="dups")
        corpus.create_table("t", ["a", "b"], [["x", "y"]])
        index = build_index(corpus, config=config)
        query_table = Table(
            table_id=99, name="q", columns=["p", "q"],
            rows=[["x", "y"], ["x", "y"], ["x", "y"]],
        )
        query = QueryTable(table=query_table, key_columns=["p", "q"])
        result = MateDiscovery(corpus, index, config=config).discover(query, k=1)
        assert result.result_tuples() == [(0, 1)]
