"""Tests for the extensions: duplicate detection and union search."""

import pytest

from repro import build_index
from repro.datamodel import QueryTable, Table, TableCorpus
from repro.exceptions import DiscoveryError
from repro.extensions import (
    UnionSearch,
    find_duplicate_rows,
    find_duplicate_tables,
)
from repro.hashing import SuperKeyGenerator
from repro.metrics import DiscoveryCounters


@pytest.fixture()
def generator(config) -> SuperKeyGenerator:
    return SuperKeyGenerator.from_name("xash", config)


class TestDuplicateRows:
    def test_finds_exact_duplicates_regardless_of_column_order(self, generator):
        first = Table(
            table_id=0, name="a", columns=["x", "y"],
            rows=[["ada", "london"], ["alan", "cambridge"]],
        )
        second = Table(
            table_id=1, name="b", columns=["p", "q"],
            rows=[["london", "ada"], ["grace", "new york"]],
        )
        pairs = find_duplicate_rows(first, second, generator)
        assert len(pairs) == 1
        assert pairs[0].first_row == 0 and pairs[0].second_row == 0
        assert pairs[0].first_table == 0 and pairs[0].second_table == 1

    def test_no_duplicates(self, generator):
        first = Table(table_id=0, name="a", columns=["x"], rows=[["ada"]])
        second = Table(table_id=1, name="b", columns=["x"], rows=[["grace"]])
        assert find_duplicate_rows(first, second, generator) == []

    def test_counters_track_prefilter_effectiveness(self, generator):
        first = Table(table_id=0, name="a", columns=["x", "y"],
                      rows=[["ada", "london"]])
        second = Table(table_id=1, name="b", columns=["x", "y"],
                       rows=[["ada", "london"], ["ada", "paris"], ["bob", "rome"]])
        counters = DiscoveryCounters()
        pairs = find_duplicate_rows(first, second, generator, counters)
        assert len(pairs) == 1
        # The super-key prefilter must have excluded at least the completely
        # unrelated row, so fewer than all 3 candidates were compared.
        assert counters.rows_checked < 3
        assert counters.true_positive_rows == 1


class TestDuplicateTables:
    def test_ranks_by_overlap(self, config):
        query = Table(
            table_id=0, name="q", columns=["a", "b"],
            rows=[["x", "1"], ["y", "2"], ["z", "3"], ["w", "4"]],
        )
        corpus = TableCorpus(name="dups")
        corpus.add_table(query)
        corpus.add_table(
            Table(table_id=1, name="full-copy", columns=["a", "b"],
                  rows=[["x", "1"], ["y", "2"], ["z", "3"], ["w", "4"]])
        )
        corpus.add_table(
            Table(table_id=2, name="half-copy", columns=["b", "a"],
                  rows=[["1", "x"], ["2", "y"], ["9", "q"], ["8", "r"]])
        )
        corpus.add_table(
            Table(table_id=3, name="unrelated", columns=["a", "b"],
                  rows=[["m", "7"], ["n", "8"]])
        )
        corpus.add_table(
            Table(table_id=4, name="different-width", columns=["a", "b", "c"],
                  rows=[["x", "1", "extra"]])
        )
        results = find_duplicate_tables(query, corpus, config=config, min_overlap_ratio=0.4)
        assert [r.table_id for r in results] == [1, 2]
        assert results[0].overlap_ratio == 1.0
        assert results[1].overlap_ratio == pytest.approx(0.5)

    def test_respects_k(self, config):
        query = Table(table_id=0, name="q", columns=["a"], rows=[["x"], ["y"]])
        corpus = TableCorpus(name="dups")
        corpus.add_table(query)
        for table_id in range(1, 5):
            corpus.add_table(
                Table(table_id=table_id, name=f"c{table_id}", columns=["a"],
                      rows=[["x"], ["y"]])
            )
        assert len(find_duplicate_tables(query, corpus, config=config, k=2)) == 2


class TestUnionSearch:
    @pytest.fixture()
    def corpus_and_index(self, config):
        corpus = TableCorpus(name="union")
        corpus.add_table(
            Table(table_id=0, name="query-like", columns=["city", "country"],
                  rows=[["berlin", "germany"], ["paris", "france"], ["rome", "italy"]])
        )
        corpus.add_table(
            Table(table_id=1, name="more-cities", columns=["stadt", "land", "pop"],
                  rows=[["berlin", "germany", "3.6m"], ["hamburg", "germany", "1.8m"],
                        ["rome", "italy", "2.8m"]])
        )
        corpus.add_table(
            Table(table_id=2, name="people", columns=["first", "last"],
                  rows=[["ada", "lovelace"], ["alan", "turing"]])
        )
        index = build_index(corpus, config=config)
        return corpus, index

    def test_finds_unionable_table(self, corpus_and_index):
        corpus, index = corpus_and_index
        query = corpus.get_table(0)
        results = UnionSearch(corpus, index).top_k_unionable(query, k=3)
        assert results
        assert results[0].table_id == 1
        # city column aligns with "stadt" (0), country with "land" (1).
        alignment = dict(results[0].alignment)
        assert alignment[0] == 0
        assert alignment[1] == 1
        assert all(r.table_id != 0 for r in results)

    def test_query_table_object_uses_key_columns(self, corpus_and_index):
        corpus, index = corpus_and_index
        query = QueryTable(table=corpus.get_table(0), key_columns=["city"])
        results = UnionSearch(corpus, index).top_k_unionable(query, k=2)
        assert results[0].table_id == 1

    def test_unrelated_table_scores_zero(self, corpus_and_index):
        corpus, index = corpus_and_index
        query = corpus.get_table(2)
        results = UnionSearch(corpus, index).top_k_unionable(query, k=3)
        assert all(r.table_id != 1 or r.unionability <= 1.0 for r in results)

    def test_rejects_bad_k(self, corpus_and_index):
        corpus, index = corpus_and_index
        with pytest.raises(DiscoveryError):
            UnionSearch(corpus, index).top_k_unionable(corpus.get_table(0), k=0)
