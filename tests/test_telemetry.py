"""Tests for the telemetry subsystem (repro.telemetry).

Four layers, tested bottom-up:

* tracing primitives — span nesting and parenting through the contextvar,
  the disabled-tracer fast path, synthetic (pre-measured) spans, and the
  JSONL exporter round trip;
* the metrics registry — counters/gauges/histograms, scrape-time
  callbacks, and the Prometheus text rendering;
* trace-correlated JSON logs and the slow-query ring buffer;
* the integrated story — session metrics, the batch-failure log
  regression, pool hedge counters flowing into the registry, and the
  acceptance test: a process-execution discovery whose JSONL trace forms
  a single tree reconstructed across process boundaries.
"""

from __future__ import annotations

import json
import logging
import math
import os

import pytest

from repro import DiscoveryRequest, DiscoverySession, Telemetry
from repro.config import MateConfig
from repro.datagen import build_workload
from repro.exceptions import EngineNotFoundError
from repro.serve import ProcessShardPool, ServeConfig
from repro.serve.http import DiscoveryHTTPServer
from repro.telemetry import (
    InMemoryExporter,
    JsonLinesExporter,
    JsonLogFormatter,
    MetricsRegistry,
    SlowQueryEntry,
    SlowQueryLog,
    TraceContext,
    Tracer,
    current_span,
    read_trace_file,
    span_tree,
    tracing_active,
)
from repro.telemetry.trace import NOOP_SPAN

CONFIG = MateConfig(expected_unique_values=100_000, k=5)


@pytest.fixture(scope="module")
def workload():
    return build_workload("WT_100", seed=29, num_queries=2, corpus_scale=0.3)


# ----------------------------------------------------------------------
# Tracing primitives
# ----------------------------------------------------------------------
class TestTracer:
    def test_nested_spans_parent_through_the_contextvar(self):
        exporter = InMemoryExporter()
        tracer = Tracer(exporter)
        try:
            assert tracing_active()
            with tracer.span("outer") as outer:
                assert current_span() is outer
                with tracer.span("inner") as inner:
                    assert current_span() is inner
                    assert inner.trace_id == outer.trace_id
                    assert inner.parent_id == outer.span_id
                assert current_span() is outer
            assert current_span() is None
        finally:
            tracer.close()
        names = [span["name"] for span in exporter.spans]
        assert names == ["inner", "outer"]  # children finish first
        assert exporter.spans[1]["parent_id"] is None
        assert all(span["duration"] >= 0 for span in exporter.spans)
        assert all(span["pid"] == os.getpid() for span in exporter.spans)

    def test_disabled_tracer_allocates_nothing(self):
        exporter = InMemoryExporter()
        tracer = Tracer(exporter, enabled=False)
        with tracer.span("ignored") as span:
            assert span is NOOP_SPAN
            assert span.trace_id == ""
            span.set_attribute("key", "dropped")
        assert exporter.spans == []
        assert NOOP_SPAN.attributes == {}
        tracer.close()

    def test_explicit_parent_context_wins_over_the_contextvar(self):
        tracer = Tracer(InMemoryExporter())
        try:
            context = TraceContext(trace_id="f" * 16, span_id="a" * 16)
            span = tracer.start_span("child", parent=context)
            assert span.trace_id == "f" * 16
            assert span.parent_id == "a" * 16
            tracer.end_span(span)
        finally:
            tracer.close()

    def test_emit_exports_a_premeasured_span(self):
        exporter = InMemoryExporter()
        tracer = Tracer(exporter)
        try:
            parent = tracer.start_span("run")
            emitted = tracer.emit(
                "stage.fetch",
                parent=parent,
                duration=0.5,
                attributes={"calls": 3},
            )
            tracer.end_span(parent)
        finally:
            tracer.close()
        assert emitted.parent_id == parent.span_id
        stage = next(s for s in exporter.spans if s["name"] == "stage.fetch")
        assert stage["duration"] == 0.5
        assert stage["trace_id"] == parent.trace_id
        assert stage["attributes"] == {"calls": 3}

    def test_jsonl_exporter_round_trips_a_tree(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = Tracer(JsonLinesExporter(path))
        with tracer.span("root"):
            with tracer.span("child"):
                pass
        tracer.close()
        spans = read_trace_file(path)
        assert [span["name"] for span in spans] == ["child", "root"]
        tree = span_tree(spans)
        assert [span["name"] for span in tree[None]] == ["root"]
        root_id = tree[None][0]["span_id"]
        assert [span["name"] for span in tree[root_id]] == ["child"]

    def test_close_retires_the_active_count(self):
        before = tracing_active()
        tracer = Tracer(InMemoryExporter())
        assert tracing_active()
        tracer.close()
        tracer.close()  # idempotent
        assert tracing_active() == before


# ----------------------------------------------------------------------
# Metrics registry
# ----------------------------------------------------------------------
class TestMetricsRegistry:
    def test_counter_is_monotonic(self):
        registry = MetricsRegistry()
        counter = registry.counter("repro_test_total", "help")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_registration_is_idempotent_but_kind_checked(self):
        registry = MetricsRegistry()
        first = registry.counter("repro_test_total")
        assert registry.counter("repro_test_total") is first
        with pytest.raises(ValueError):
            registry.gauge("repro_test_total")

    def test_gauge_moves_both_ways(self):
        gauge = MetricsRegistry().gauge("repro_test_inflight")
        gauge.set(4)
        gauge.dec()
        gauge.inc(2)
        assert gauge.value == 5.0

    def test_histogram_buckets_and_percentiles(self):
        registry = MetricsRegistry()
        histogram = registry.histogram(
            "repro_test_seconds", buckets=(0.1, 1.0, 10.0)
        )
        for value in (0.05, 0.05, 0.5, 5.0):
            histogram.observe(value)
        assert histogram.count == 4
        assert histogram.sum == pytest.approx(5.6)
        counts = dict(histogram.bucket_counts())
        assert counts[0.1] == 2
        assert counts[1.0] == 3
        assert counts[math.inf] == 4
        assert histogram.percentile(0.5) == 0.1
        assert histogram.percentile(0.99) == 10.0
        with pytest.raises(ValueError):
            histogram.percentile(1.5)

    def test_empty_histogram_percentile_is_zero(self):
        histogram = MetricsRegistry().histogram("repro_test_seconds")
        assert histogram.percentile(0.99) == 0.0

    def test_render_prometheus_is_parseable(self):
        registry = MetricsRegistry()
        registry.counter("repro_test_total", "a counter").inc(2)
        registry.gauge("repro_test_inflight", "a gauge").set(1)
        registry.histogram(
            "repro_test_seconds", "a histogram", buckets=(0.5,)
        ).observe(0.2)
        registry.counter_callback("repro_test_pulled_total", lambda: 7, "cb")
        text = registry.render_prometheus()
        lines = text.strip().splitlines()
        assert "# HELP repro_test_total a counter" in lines
        assert "# TYPE repro_test_total counter" in lines
        assert "# TYPE repro_test_seconds histogram" in lines
        assert 'repro_test_seconds_bucket{le="0.5"} 1' in lines
        assert 'repro_test_seconds_bucket{le="+Inf"} 1' in lines
        assert "repro_test_seconds_count 1" in lines
        assert "repro_test_pulled_total 7.0" in lines
        for line in lines:
            if line.startswith("#"):
                continue
            name, _, value = line.rpartition(" ")
            assert name, f"unparseable exposition line: {line!r}"
            float(value)  # every sample value must be a number

    def test_failing_callback_does_not_kill_the_scrape(self):
        registry = MetricsRegistry()
        registry.counter("repro_test_total").inc()

        def explode():
            raise RuntimeError("scrape-time failure")

        registry.counter_callback("repro_test_broken_total", explode)
        text = registry.render_prometheus()
        assert "repro_test_total 1.0" in text
        sample_lines = [
            line for line in text.splitlines() if not line.startswith("#")
        ]
        assert not any(
            line.startswith("repro_test_broken_total") for line in sample_lines
        )
        assert registry.snapshot()["repro_test_broken_total"] is None

    def test_snapshot_summarises_histograms(self):
        registry = MetricsRegistry()
        registry.histogram("repro_test_seconds", buckets=(0.1, 1.0)).observe(
            0.05
        )
        snapshot = registry.snapshot()
        summary = snapshot["repro_test_seconds"]
        assert summary["count"] == 1
        assert summary["p50"] == 0.1
        assert summary["p99"] == 0.1


# ----------------------------------------------------------------------
# JSON logs and the slow-query log
# ----------------------------------------------------------------------
def make_record(message="hello", **extra):
    record = logging.LogRecord(
        "repro.test", logging.INFO, __file__, 1, message, (), None
    )
    for key, value in extra.items():
        setattr(record, key, value)
    return record


class TestJsonLogFormatter:
    def test_renders_single_line_json(self):
        document = json.loads(JsonLogFormatter().format(make_record()))
        assert document["message"] == "hello"
        assert document["level"] == "INFO"
        assert document["logger"] == "repro.test"
        assert "trace_id" not in document

    def test_explicit_trace_id_and_extras_pass_through(self):
        record = make_record(trace_id="beef" * 4, request_label="q1")
        document = json.loads(JsonLogFormatter().format(record))
        assert document["trace_id"] == "beef" * 4
        assert document["request_label"] == "q1"

    def test_trace_id_falls_back_to_the_active_span(self):
        tracer = Tracer(InMemoryExporter())
        try:
            with tracer.span("op") as span:
                document = json.loads(JsonLogFormatter().format(make_record()))
            assert document["trace_id"] == span.trace_id
        finally:
            tracer.close()


class TestSlowQueryLog:
    def entry(self, seconds=2.0):
        return SlowQueryEntry(
            request="q", engine="mate", seconds=seconds, threshold_seconds=1.0
        )

    def test_threshold_gate(self):
        log = SlowQueryLog(threshold_seconds=1.0)
        assert not log.should_record(0.5)
        assert log.should_record(1.0)

    def test_ring_buffer_keeps_newest(self):
        log = SlowQueryLog(capacity=2, threshold_seconds=0.0)
        for seconds in (1.0, 2.0, 3.0):
            log.record(self.entry(seconds))
        assert len(log) == 2
        assert log.recorded_total == 3
        assert [entry["seconds"] for entry in log.entries()] == [3.0, 2.0]

    def test_invalid_parameters_raise(self):
        with pytest.raises(ValueError):
            SlowQueryLog(capacity=0)
        with pytest.raises(ValueError):
            SlowQueryLog(threshold_seconds=-1.0)


# ----------------------------------------------------------------------
# Session integration: metrics, slow log, batch-failure logging
# ----------------------------------------------------------------------
class TestSessionTelemetry:
    def test_requests_feed_the_registry(self, workload):
        with DiscoverySession(workload.corpus, config=CONFIG) as session:
            session.discover(DiscoveryRequest(query=workload.queries[0]))
            snapshot = session.telemetry.metrics.snapshot()
        assert snapshot["repro_session_requests_total"] == 1.0
        assert snapshot["repro_session_failures_total"] == 0.0
        assert snapshot["repro_request_latency_seconds"]["count"] == 1
        assert snapshot["repro_discovery_tables_evaluated_total"] >= 0.0

    def test_slow_queries_are_recorded_with_context(self, workload):
        telemetry = Telemetry(slow_log=SlowQueryLog(threshold_seconds=0.0))
        session = DiscoverySession(
            workload.corpus, config=CONFIG, telemetry=telemetry
        )
        try:
            session.discover(DiscoveryRequest(query=workload.queries[0]))
        finally:
            session.close()
            telemetry.close()
        entries = telemetry.slow_log.entries()
        assert len(entries) == 1
        entry = entries[0]
        assert entry["engine"] == "mate"
        assert entry["seconds"] >= 0.0
        assert entry["threshold_seconds"] == 0.0
        snapshot = telemetry.metrics.snapshot()
        assert snapshot["repro_slowlog_recorded_total"] == 1.0

    def test_batch_failures_are_logged_with_the_trace_id(
        self, workload, caplog
    ):
        """Regression: a failed batch query must land in the structured log,
        keyed by the query's trace id — not just in BatchStats.failures."""
        telemetry = Telemetry(tracer=Tracer(InMemoryExporter()))
        session = DiscoverySession(
            workload.corpus, config=CONFIG, telemetry=telemetry
        )
        try:
            requests = [
                DiscoveryRequest(query=workload.queries[0]),
                DiscoveryRequest(
                    query=workload.queries[1],
                    engine="warp-drive",
                    request_id="bad-engine",
                ),
            ]
            with caplog.at_level(logging.ERROR, logger="repro.session"):
                batch = session.discover_batch(requests, on_error="collect")
        finally:
            session.close()
            telemetry.close()
        assert batch.results[0] is not None and batch.results[1] is None
        assert len(batch.failures) == 1
        assert isinstance(batch.failures[0], EngineNotFoundError)
        records = [
            record
            for record in caplog.records
            if record.name == "repro.session"
            and "batch query failed" in record.getMessage()
        ]
        assert len(records) == 1
        record = records[0]
        assert record.request_label == "bad-engine"
        assert record.engine == "warp-drive"
        # The error was raised inside discover()'s root span, so the trace
        # id stamped onto it is a real 16-hex id from the enabled tracer.
        assert isinstance(record.trace_id, str)
        assert len(record.trace_id) == 16
        int(record.trace_id, 16)


# ----------------------------------------------------------------------
# Pool integration: hedge counters flow into the registry
# ----------------------------------------------------------------------
class TestPoolMetricsUnderHedging:
    def test_hedge_counters_reach_the_prometheus_text(self, workload):
        telemetry = Telemetry.disabled()
        pool = ProcessShardPool(
            workload.corpus,
            config=CONFIG,
            hash_function_name="xash",
            serve_config=ServeConfig(num_shards=2, hedge_after_seconds=0.0),
            telemetry=telemetry,
        )
        try:
            for query in workload.queries:
                pool.discover(query, k=CONFIG.k)
            assert pool.metrics.hedges_sent >= 1
            samples = {}
            for line in telemetry.metrics.render_prometheus().splitlines():
                if line.startswith("#"):
                    continue
                name, _, value = line.rpartition(" ")
                samples[name] = float(value)
        finally:
            pool.close()
        assert samples["repro_pool_requests_total"] == 2.0
        assert samples["repro_pool_hedges_sent_total"] >= 1.0
        assert samples["repro_pool_num_shards"] == 2.0
        assert samples["repro_pool_scatter_seconds_total"] >= 0.0
        assert samples["repro_pool_gather_seconds_total"] >= 0.0
        assert samples["repro_pool_hedge_wins_total"] >= 0.0
        assert samples["repro_pool_replies_discarded_total"] >= 0.0


# ----------------------------------------------------------------------
# HTTP front-end helpers
# ----------------------------------------------------------------------
class TestTraceHeaders:
    def test_real_span_id_wins(self):
        tracer = Tracer(InMemoryExporter())
        try:
            span = tracer.start_span("http.discover")
            headers = DiscoveryHTTPServer._trace_headers(span, "client-id")
            assert headers == {"X-Trace-Id": span.trace_id}
        finally:
            tracer.close()

    def test_noop_span_echoes_the_client_header(self):
        headers = DiscoveryHTTPServer._trace_headers(NOOP_SPAN, "cafe" * 4)
        assert headers == {"X-Trace-Id": "cafe" * 4}

    def test_no_trace_at_all_adds_no_header(self):
        assert DiscoveryHTTPServer._trace_headers(NOOP_SPAN, "") is None


# ----------------------------------------------------------------------
# Acceptance: one cross-process span tree from a JSONL trace file
# ----------------------------------------------------------------------
class TestCrossProcessTrace:
    def test_process_execution_forms_a_single_tree(self, workload, tmp_path):
        trace_path = tmp_path / "trace.jsonl"
        telemetry = Telemetry.with_trace_file(trace_path)
        session = DiscoverySession(
            workload.corpus,
            config=CONFIG,
            execution="process",
            serve_config=ServeConfig(num_shards=2),
            telemetry=telemetry,
        )
        try:
            result = session.discover(
                DiscoveryRequest(query=workload.queries[0], engine="sharded")
            )
            assert result.tables is not None
        finally:
            session.close()
            telemetry.close()

        spans = read_trace_file(trace_path)
        assert spans, "process-execution discovery exported no spans"

        trace_ids = {span["trace_id"] for span in spans}
        assert len(trace_ids) == 1, f"expected one trace, got {trace_ids}"

        by_id = {span["span_id"]: span for span in spans}
        tree = span_tree(spans)
        roots = tree.get(None, [])
        assert [span["name"] for span in roots] == ["session.discover"]
        root = roots[0]
        for span in spans:
            if span is root:
                continue
            assert span["parent_id"] in by_id, (
                f"span {span['name']} has a dangling parent "
                f"{span['parent_id']!r}"
            )

        pool_spans = [s for s in spans if s["name"] == "pool.discover"]
        assert len(pool_spans) == 1
        assert pool_spans[0]["parent_id"] == root["span_id"]

        shard_spans = [s for s in spans if s["name"] == "shard.discover"]
        assert len(shard_spans) == 2
        parent_pid = os.getpid()
        for span in shard_spans:
            assert span["parent_id"] == pool_spans[0]["span_id"]
            assert span["pid"] != parent_pid, (
                "shard span recorded in the parent process — the trace "
                "context did not cross the IPC boundary"
            )
