"""End-to-end integration tests across modules.

These exercise the full pipeline (generation -> indexing -> discovery ->
baselines -> persistence) on a shared workload and check cross-system
agreement plus the key comparative claims at tiny scale.
"""

import pytest

from repro import MateConfig, MateDiscovery, build_index
from repro.baselines import McrDiscovery, McrJosieDiscovery, ScrDiscovery, ScrJosieDiscovery
from repro.core import top_k_by_exact_joinability
from repro.datagen import build_workload
from repro.storage import SQLiteBackend
from tests.helpers import assert_topk_equivalent


@pytest.fixture(scope="module")
def setup():
    config = MateConfig(hash_size=128, k=3, expected_unique_values=700_000_000)
    workload = build_workload("OD_100", seed=21, num_queries=2, corpus_scale=0.1)
    index = build_index(workload.corpus, config=config)
    return config, workload, index


class TestSystemsAgree:
    def test_all_exact_systems_return_equivalent_topk(self, setup):
        config, workload, index = setup
        corpus = workload.corpus
        engines = {
            "mate": MateDiscovery(corpus, index, config=config),
            "scr": ScrDiscovery(corpus, index, config=config),
            "mcr": McrDiscovery(corpus, index, config=config),
        }
        for query in workload.queries:
            truth = top_k_by_exact_joinability(query, corpus, k=3)
            for name, engine in engines.items():
                result = engine.discover(query, k=3)
                assert_topk_equivalent(result.result_tuples(), truth)

    def test_josie_adapters_find_the_best_table(self, setup):
        config, workload, _ = setup
        corpus = workload.corpus
        for query in workload.queries:
            truth = top_k_by_exact_joinability(query, corpus, k=1)
            for engine in (
                ScrJosieDiscovery(corpus, config=config),
                McrJosieDiscovery(corpus, config=config),
            ):
                result = engine.discover(query, k=3)
                assert result.result_tuples()[0] == truth[0]

    def test_planted_tables_dominate_the_topk(self, setup):
        config, workload, index = setup
        corpus = workload.corpus
        mate = MateDiscovery(corpus, index, config=config)
        for query_index, query in enumerate(workload.queries):
            planted_ids = {
                record.table_id
                for record in workload.planted_for(query_index)
                if not record.is_distractor
            }
            result = mate.discover(query, k=3)
            assert set(result.table_ids()) <= planted_ids | {
                table_id for table_id, _ in top_k_by_exact_joinability(query, corpus, k=10)
            }
            assert planted_ids & set(result.table_ids())


class TestComparativeClaims:
    def test_mate_filter_prunes_rows_scr_must_verify(self, setup):
        config, workload, index = setup
        corpus = workload.corpus
        query = workload.queries[0]
        mate = MateDiscovery(corpus, index, config=config).discover(query, k=3)
        scr = ScrDiscovery(corpus, index, config=config).discover(query, k=3)
        # SCR verifies every fetched row; MATE verifies only the filtered ones.
        assert mate.counters.value_comparisons <= scr.counters.value_comparisons
        assert mate.precision >= scr.precision

    def test_mcr_fetches_more_postings_than_mate(self, setup):
        config, workload, index = setup
        corpus = workload.corpus
        query = workload.queries[0]
        mate = MateDiscovery(corpus, index, config=config).discover(query, k=3)
        mcr = McrDiscovery(corpus, index, config=config).discover(query, k=3)
        assert mcr.counters.pl_items_fetched >= mate.counters.pl_items_fetched

    def test_larger_hash_size_does_not_hurt_precision(self, setup):
        config, workload, _ = setup
        corpus = workload.corpus
        query = workload.queries[0]
        precisions = {}
        for hash_size in (64, 512):
            sized_config = config.with_hash_size(hash_size)
            sized_index = build_index(corpus, config=sized_config)
            result = MateDiscovery(corpus, sized_index, config=sized_config).discover(
                query, k=3
            )
            precisions[hash_size] = result.precision
        assert precisions[512] >= precisions[64] - 0.05


class TestPersistenceRoundTrip:
    def test_discovery_identical_after_sqlite_round_trip(self, setup, tmp_path):
        config, workload, index = setup
        corpus = workload.corpus
        query = workload.queries[0]
        direct = MateDiscovery(corpus, index, config=config).discover(query, k=3)

        with SQLiteBackend(tmp_path / "roundtrip.db") as backend:
            backend.save_corpus(corpus)
            backend.save_index("main", index)
            restored_corpus = backend.load_corpus(corpus.name)
            restored_index = backend.load_index("main")

        restored = MateDiscovery(
            restored_corpus, restored_index, config=config
        ).discover(query, k=3)
        assert restored.result_tuples() == direct.result_tuples()
