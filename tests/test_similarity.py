"""Tests for similarity-join discovery (repro.extensions.similarity)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import MateConfig
from repro.datamodel import QueryTable, TableCorpus
from repro.exceptions import DiscoveryError
from repro.extensions import (
    SimilarityJoinDiscovery,
    levenshtein_distance,
    xash_similarity,
)
from repro.hashing import SuperKeyGenerator
from repro.index import build_index

CONFIG = MateConfig(expected_unique_values=10_000)


class TestLevenshtein:
    def test_identical(self):
        assert levenshtein_distance("abc", "abc") == 0

    def test_empty_strings(self):
        assert levenshtein_distance("", "abc") == 3
        assert levenshtein_distance("abc", "") == 3
        assert levenshtein_distance("", "") == 0

    def test_known_distances(self):
        assert levenshtein_distance("kitten", "sitting") == 3
        assert levenshtein_distance("lee", "leo") == 1
        assert levenshtein_distance("cambridge", "bay ridge") == 3

    def test_upper_bound_early_exit(self):
        assert levenshtein_distance("aaaaaaaa", "bbbbbbbb", upper_bound=2) > 2
        assert levenshtein_distance("abcdef", "abcxef", upper_bound=2) == 1

    def test_length_difference_short_circuit(self):
        assert levenshtein_distance("a", "abcdef", upper_bound=2) > 2

    @given(st.text(max_size=12), st.text(max_size=12))
    @settings(max_examples=60, deadline=None)
    def test_property_symmetry_and_bounds(self, first, second):
        distance = levenshtein_distance(first, second)
        assert distance == levenshtein_distance(second, first)
        assert distance <= max(len(first), len(second))
        assert (distance == 0) == (first == second)

    @given(st.text(min_size=1, max_size=10), st.integers(min_value=0, max_value=9))
    @settings(max_examples=40, deadline=None)
    def test_property_single_substitution_costs_one(self, text, position):
        position %= len(text)
        mutated = text[:position] + ("#" if text[position] != "#" else "@") + text[position + 1:]
        assert levenshtein_distance(text, mutated) == 1


class TestXashSimilarity:
    def test_identical_values_score_one(self):
        generator = SuperKeyGenerator.from_name("xash", CONFIG)
        assert xash_similarity("brooklyn", "brooklyn", generator) == 1.0

    def test_similar_values_score_higher_than_dissimilar(self):
        # Same length + shared rare characters (the XASH collision profile)
        # must score above a value sharing neither length nor characters.
        generator = SuperKeyGenerator.from_name("xash", CONFIG)
        similar = xash_similarity("lee", "leo", generator)
        dissimilar = xash_similarity("lee", "42", generator)
        assert similar > dissimilar

    def test_score_range(self):
        generator = SuperKeyGenerator.from_name("xash", CONFIG)
        for first, second in [("abc", "xyz"), ("", "x"), ("", "")]:
            score = xash_similarity(first, second, generator)
            assert 0.0 <= score <= 1.0


@pytest.fixture()
def corpus_and_query():
    """A small corpus with exact, misspelled and unrelated candidate tables."""
    corpus = TableCorpus(name="similarity")
    # Table 0: exact matches for both keys.
    corpus.create_table(
        name="exact",
        columns=["first", "last", "country", "info"],
        rows=[
            ["muhammad", "lee", "us", "dancer"],
            ["ansel", "adams", "uk", "photographer"],
            ["helmut", "newton", "germany", "photographer"],
        ],
    )
    # Table 1: one value misspelled per row (edit distance 1).
    corpus.create_table(
        name="typos",
        columns=["vorname", "nachname", "land"],
        rows=[
            ["muhammad", "leo", "us"],
            ["ansel", "adama", "uk"],
        ],
    )
    # Table 2: shares first names only (should not be similarity-joinable).
    corpus.create_table(
        name="unrelated",
        columns=["name", "animal"],
        rows=[["muhammad", "owl"], ["ansel", "fox"]],
    )
    query_table = corpus.create_table(
        name="query",
        columns=["first", "last"],
        rows=[["muhammad", "lee"], ["ansel", "adams"]],
    )
    corpus.remove_table(query_table.table_id)
    query = QueryTable(table=query_table, key_columns=["first", "last"])
    index = build_index(corpus, config=CONFIG)
    return corpus, index, query


class TestSimilarityJoinDiscovery:
    def test_exact_matches_rank_first(self, corpus_and_query):
        corpus, index, query = corpus_and_query
        discovery = SimilarityJoinDiscovery(corpus, index, config=CONFIG, max_distance=1)
        results = discovery.discover(query, k=5)
        assert results
        assert results[0].table_id == 0
        assert results[0].similarity_joinability == 2
        assert results[0].exact_joinability == 2

    def test_typo_table_found_with_distance_budget(self, corpus_and_query):
        corpus, index, query = corpus_and_query
        discovery = SimilarityJoinDiscovery(corpus, index, config=CONFIG, max_distance=1)
        results = {r.table_id: r for r in discovery.discover(query, k=5)}
        assert 1 in results
        assert results[1].similarity_joinability == 2
        assert results[1].exact_joinability == 0

    def test_zero_distance_budget_degenerates_to_exact_join(self, corpus_and_query):
        corpus, index, query = corpus_and_query
        discovery = SimilarityJoinDiscovery(corpus, index, config=CONFIG, max_distance=0)
        results = {r.table_id: r for r in discovery.discover(query, k=5)}
        assert 0 in results
        assert 1 not in results

    def test_unrelated_table_is_not_reported(self, corpus_and_query):
        corpus, index, query = corpus_and_query
        discovery = SimilarityJoinDiscovery(corpus, index, config=CONFIG, max_distance=1)
        assert all(r.table_id != 2 for r in discovery.discover(query, k=5))

    def test_match_metadata(self, corpus_and_query):
        corpus, index, query = corpus_and_query
        discovery = SimilarityJoinDiscovery(corpus, index, config=CONFIG, max_distance=1)
        results = {r.table_id: r for r in discovery.discover(query, k=5)}
        typo_match = next(
            m for m in results[1].matches if m.key_tuple == ("muhammad", "lee")
        )
        assert typo_match.matched_values == ("muhammad", "leo")
        assert typo_match.total_distance == 1

    def test_k_limits_results(self, corpus_and_query):
        corpus, index, query = corpus_and_query
        discovery = SimilarityJoinDiscovery(corpus, index, config=CONFIG, max_distance=1)
        assert len(discovery.discover(query, k=1)) == 1

    def test_invalid_parameters(self, corpus_and_query):
        corpus, index, query = corpus_and_query
        with pytest.raises(DiscoveryError):
            SimilarityJoinDiscovery(corpus, index, config=CONFIG, max_distance=-1)
        with pytest.raises(DiscoveryError):
            SimilarityJoinDiscovery(corpus, index, config=CONFIG, min_bit_overlap=0.0)
        discovery = SimilarityJoinDiscovery(corpus, index, config=CONFIG)
        with pytest.raises(DiscoveryError):
            discovery.discover(query, k=0)

    def test_empty_query_returns_nothing(self, corpus_and_query):
        corpus, index, _ = corpus_and_query
        empty_query_table = corpus.get_table(0)
        query = QueryTable(table=empty_query_table, key_columns=["first", "info"])
        # Overwrite with rows that are all missing in the key columns.
        discovery = SimilarityJoinDiscovery(corpus, index, config=CONFIG)
        results = discovery.discover(
            QueryTable(
                table=TableCorpus(name="tmp").create_table(
                    name="empty", columns=["a", "b"], rows=[["", ""]]
                ),
                key_columns=["a", "b"],
            ),
            k=3,
        )
        assert results == []

    def test_exact_results_agree_with_mate_on_shared_tables(self, corpus_and_query):
        """Similarity discovery with distance 0 never exceeds MATE's joinability."""
        from repro.core import MateDiscovery

        corpus, index, query = corpus_and_query
        mate = MateDiscovery(corpus, index, config=CONFIG)
        exact = {r.table_id: r.joinability for r in mate.discover(query, k=5).tables}
        discovery = SimilarityJoinDiscovery(corpus, index, config=CONFIG, max_distance=0)
        for result in discovery.discover(query, k=5):
            assert result.similarity_joinability == exact.get(result.table_id, 0)
