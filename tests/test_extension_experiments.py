"""Tests for the extension experiments (scaling, fetch cost, frequency source, sharding)."""

from __future__ import annotations

import pytest

from repro.experiments import (
    DEFAULT_SHARD_COUNTS,
    ExperimentSettings,
    FREQUENCY_SOURCES,
    run_fetch_cost,
    run_frequency_source,
    run_scaling,
    run_sharding,
)

#: Deliberately tiny scale: these tests exercise the plumbing and the most
#: robust shape properties; the benchmarks run the full-size versions.
SETTINGS = ExperimentSettings(seed=5, num_queries=1, corpus_scale=0.1, k=3)


class TestScalingExperiment:
    @pytest.fixture(scope="class")
    def result(self):
        return run_scaling(SETTINGS, workload_name="WT_100", scale_factors=(0.5, 1.0))

    def test_row_shape(self, result):
        assert len(result.rows) == 2
        assert result.headers[0] == "scale factor"
        assert [row[0] for row in result.rows] == [0.5, 1.0]

    def test_corpus_grows_with_scale(self, result):
        tables = [row[1] for row in result.rows]
        assert tables[1] >= tables[0]

    def test_runtimes_positive(self, result):
        for row in result.row_dicts():
            assert row["mate runtime (s)"] >= 0.0
            assert row["scr runtime (s)"] >= 0.0

    def test_render_to_text(self, result):
        text = result.to_text()
        assert "Scaling study" in text
        assert "note:" in text


class TestFetchCostExperiment:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fetch_cost(SETTINGS, workload_names=("WT_100",))

    def test_rows_cover_both_heuristics(self, result):
        selectors = {row[1] for row in result.rows}
        assert selectors == {"cardinality", "worst_case"}

    def test_per_row_layout_is_never_more_expensive(self, result):
        for row in result.row_dicts():
            assert row["est. fetch s (per-row)"] <= row["est. fetch s (per-cell)"] + 1e-9

    def test_cardinality_fetches_no_more_pl_items_than_worst(self, result):
        rows = {row["initial column"]: row for row in result.row_dicts()}
        assert (
            rows["cardinality"]["avg PL items fetched"]
            <= rows["worst_case"]["avg PL items fetched"] + 1e-9
        )


class TestFrequencySourceExperiment:
    @pytest.fixture(scope="class")
    def result(self):
        return run_frequency_source(SETTINGS, workload_name="WT_100")

    def test_all_sources_reported(self, result):
        assert [row[0] for row in result.rows] == list(FREQUENCY_SOURCES)

    def test_precision_in_unit_interval(self, result):
        for row in result.row_dicts():
            assert 0.0 <= row["precision"] <= 1.0

    def test_unknown_source_raises(self):
        with pytest.raises(ValueError):
            run_frequency_source(
                SETTINGS, workload_name="WT_100", sources=("martian",)
            )


class TestShardingExperiment:
    @pytest.fixture(scope="class")
    def result(self):
        return run_sharding(SETTINGS, workload_name="WT_100", shard_counts=(1, 3))

    def test_default_shard_counts_are_increasing(self):
        assert list(DEFAULT_SHARD_COUNTS) == sorted(DEFAULT_SHARD_COUNTS)

    def test_topk_scores_identical_for_every_shard_count(self, result):
        for row in result.row_dicts():
            matched, total = str(row["top-k scores identical"]).split("/")
            assert matched == total

    def test_work_imbalance_at_least_one(self, result):
        for row in result.row_dicts():
            assert row["work imbalance"] >= 1.0 or row["work imbalance"] == 0.0

    def test_row_per_shard_count(self, result):
        assert [row[0] for row in result.rows] == [1, 3]
