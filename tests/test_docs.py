"""The documentation completeness check (same gate CI runs)."""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def test_readme_and_architecture_cover_every_subpackage():
    result = subprocess.run(
        [sys.executable, str(REPO_ROOT / "scripts" / "check_docs.py")],
        capture_output=True,
        text=True,
    )
    assert result.returncode == 0, result.stderr
    assert "docs OK" in result.stdout


def test_readme_states_tier1_command():
    text = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
    assert "PYTHONPATH=src python -m pytest -x -q" in text
