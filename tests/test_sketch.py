"""The approximate candidate tier: MinHash sketches, LSH index, integration.

Covers the :mod:`repro.sketch` subsystem end to end:

* signature determinism and the numpy/fallback kernel equivalence
  (``MATE_SKETCH``), Jaccard/containment estimator sanity;
* :class:`SketchIndex` mutation, banded-LSH lookup, threshold and
  ``max_candidates`` pruning, and the S-curve recall estimate;
* versioned persistence: atomic save/load round trips and corruption
  detection (missing files, bad magic, size mismatch, version drift);
* the discovery pipeline: planner mode ``"sketch"`` with ``threshold=0``
  is byte-identical to the exact engine, a real threshold prunes while
  keeping the full top-k on the skewed scenario corpus (measured recall);
* session plumbing: one cached engine serves every sketch threshold (the
  knobs stay out of the engine cache key), capability gating rejects
  engines without sketch support;
* live-index freshness: sketches survive seal + reopen and WAL crash
  recovery; pre-sketch directories degrade to a stale store that is never
  served or persisted;
* the similarity-join and union-search extensions behind the same store,
  and their CLI sub-commands.
"""

from __future__ import annotations

import json

import pytest

from repro import (
    DiscoveryRequest,
    DiscoverySession,
    MateConfig,
    SketchIndex,
    SketchIndexConfig,
    SketchOptions,
    build_index,
    build_sketch_index,
)
from repro.datamodel import QueryTable, Table, TableCorpus
from repro.exceptions import ConfigurationError, DiscoveryError, StorageError
from repro.experiments import ExperimentSettings, build_sketch_scenario
from repro.extensions import SimilarityJoinDiscovery, UnionSearch
from repro.index import IndexBuilder
from repro.ingest import LiveIndex
from repro.plan import PlannerOptions
from repro.sketch import (
    DEFAULT_SKETCH_OPTIONS,
    active_sketch_kernel,
    containment_estimate,
    jaccard_estimate,
    minhash_signature,
    permutation_params,
    use_sketch_kernel,
)

from tests.helpers import available_sketch_kernel_modes

CONFIG = MateConfig(hash_size=128, k=5, expected_unique_values=10_000)


def make_corpus() -> TableCorpus:
    corpus = TableCorpus(name="sketch_unit")
    corpus.add_table(
        Table(1, "cities", ["city", "country"],
              [["berlin", "de"], ["paris", "fr"], ["rome", "it"]])
    )
    corpus.add_table(
        Table(2, "people", ["name", "city"],
              [["ada", "london"], ["alan", "london"], ["grace", "nyc"]])
    )
    corpus.add_table(
        Table(3, "empty_ish", ["x"], [["only"]])
    )
    return corpus


class TestMinHash:
    def test_signature_is_deterministic_and_seeded(self):
        params = permutation_params(128, seed=1_000_003)
        first = minhash_signature(["a", "b", "c"], *params)
        second = minhash_signature(["c", "b", "a"], *params)
        assert first == second
        assert len(first) == 128
        other_seed = permutation_params(128, seed=42)
        assert minhash_signature(["a", "b", "c"], *other_seed) != first

    @pytest.mark.parametrize("kernel", available_sketch_kernel_modes())
    def test_kernels_are_bit_identical(self, kernel):
        params = permutation_params(64, seed=7)
        values = [f"value_{i}" for i in range(50)]
        with use_sketch_kernel("fallback"):
            reference = minhash_signature(values, *params)
        with use_sketch_kernel(kernel):
            assert active_sketch_kernel() == kernel
            assert minhash_signature(values, *params) == reference

    def test_jaccard_estimate_tracks_true_overlap(self):
        params = permutation_params(256, seed=11)
        base = [f"v{i}" for i in range(100)]
        half = base[:50] + [f"w{i}" for i in range(50)]
        same = minhash_signature(base, *params)
        other = minhash_signature(half, *params)
        assert jaccard_estimate(same, same) == 1.0
        estimate = jaccard_estimate(same, other)
        # True Jaccard is 50/150 = 1/3; 256 permutations keep the noise low.
        assert abs(estimate - 1 / 3) < 0.12

    def test_containment_estimate_of_subset_is_high(self):
        params = permutation_params(256, seed=11)
        big = [f"v{i}" for i in range(80)]
        small = big[:20]
        big_sig = minhash_signature(big, *params)
        small_sig = minhash_signature(small, *params)
        # |small ∩ big| / |small| = 1.0; the estimator sees Jaccard 0.25.
        jaccard = jaccard_estimate(small_sig, big_sig)
        estimate = containment_estimate(jaccard, len(small), len(big))
        assert estimate > 0.7

    def test_empty_values_yield_the_empty_signature(self):
        params = permutation_params(16, seed=3)
        signature = minhash_signature([], *params)
        assert len(signature) == 16


class TestSketchIndex:
    def test_add_query_remove_round_trip(self):
        index = SketchIndex()
        corpus = make_corpus()
        for table in corpus:
            assert index.add_table(table) > 0
        assert index.num_tables == 3
        scored = index.query(["berlin", "paris", "rome"])
        assert scored and scored[0][0] == 1
        assert scored[0][1] > 0.9
        assert index.remove_table(1)
        assert not index.remove_table(1)
        assert 1 not in {table_id for table_id, _ in
                         index.query(["berlin", "paris", "rome"])}

    def test_threshold_and_max_candidates_prune(self):
        index = SketchIndex()
        for table in make_corpus():
            index.add_table(table)
        everything = index.query(["berlin", "paris", "rome"], threshold=0.0)
        assert len(everything) >= 1
        tight = index.query(["berlin", "paris", "rome"], threshold=0.9)
        assert {table_id for table_id, _ in tight} == {1}
        capped = index.query(["berlin", "paris", "rome"], max_candidates=1)
        assert len(capped) == 1 and capped[0][0] == 1

    def test_estimated_recall_s_curve(self):
        config = SketchIndexConfig()
        assert config.estimated_recall(0.0) == 1.0
        assert config.estimated_recall(0.5) > 0.99
        assert config.estimated_recall(0.2) > config.estimated_recall(0.01) - 1.0
        assert 0.0 < config.estimated_recall(0.01) <= 1.0

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            SketchIndexConfig(num_perm=128, bands=60, rows=2)
        with pytest.raises(ConfigurationError):
            SketchIndexConfig(num_perm=0, bands=0, rows=0)
        with pytest.raises(ConfigurationError):
            SketchOptions(threshold=1.5)
        with pytest.raises(ConfigurationError):
            SketchOptions(max_candidates=0)
        assert not DEFAULT_SKETCH_OPTIONS.enabled
        assert SketchOptions(threshold=0.1).enabled
        assert SketchOptions(max_candidates=3).enabled

    def test_build_sketch_index_and_builder_agree(self):
        corpus = make_corpus()
        built = build_sketch_index(corpus)
        builder = IndexBuilder(config=CONFIG)
        _inverted, from_builder = builder.build_with_sketches(corpus)
        assert built.table_ids() == from_builder.table_ids()
        probe = ["berlin", "paris", "rome"]
        assert built.query(probe) == from_builder.query(probe)


class TestPersistence:
    def test_save_load_round_trip(self, tmp_path):
        index = SketchIndex()
        for table in make_corpus():
            index.add_table(table)
        manifest_path = index.save(tmp_path)
        assert manifest_path.exists()
        assert (tmp_path / "sketches.bin").exists()
        loaded = SketchIndex.load(tmp_path)
        assert loaded.config == index.config
        assert loaded.table_ids() == index.table_ids()
        probe = ["berlin", "paris", "ada"]
        assert loaded.query(probe) == index.query(probe)

    def test_missing_manifest_raises(self, tmp_path):
        with pytest.raises(StorageError, match="no sketch manifest"):
            SketchIndex.load(tmp_path)

    def test_corrupt_manifest_raises(self, tmp_path):
        (tmp_path / "sketches.json").write_text("{not json", encoding="utf-8")
        with pytest.raises(StorageError, match="corrupt sketch manifest"):
            SketchIndex.load(tmp_path)

    def test_version_drift_raises(self, tmp_path):
        index = SketchIndex()
        index.add_table(Table(1, "t", ["a"], [["x"]]))
        index.save(tmp_path)
        manifest = json.loads(
            (tmp_path / "sketches.json").read_text(encoding="utf-8")
        )
        manifest["format_version"] = 999
        (tmp_path / "sketches.json").write_text(
            json.dumps(manifest), encoding="utf-8"
        )
        with pytest.raises(StorageError, match="format_version"):
            SketchIndex.load(tmp_path)

    def test_truncated_data_file_raises(self, tmp_path):
        index = SketchIndex()
        index.add_table(Table(1, "t", ["a"], [["x"]]))
        index.save(tmp_path)
        data = (tmp_path / "sketches.bin").read_bytes()
        (tmp_path / "sketches.bin").write_bytes(data[: len(data) // 2])
        with pytest.raises(StorageError):
            SketchIndex.load(tmp_path)


def _strip_runtime(result) -> tuple:
    counters = result.counters.as_dict()
    counters.pop("runtime_seconds")
    counters.pop("stages", None)
    return (
        [(t.table_id, t.joinability, t.column_mapping, t.table_name)
         for t in result.tables],
        result.complete,
        counters,
    )


class TestDiscoveryIntegration:
    def setup_method(self):
        self.corpus, self.query = build_sketch_scenario(ExperimentSettings())

    def test_threshold_zero_is_byte_identical_to_exact(self):
        with DiscoverySession(self.corpus, config=CONFIG) as session:
            exact = session.discover(
                DiscoveryRequest(query=self.query, k=5)
            )
            sketch0 = session.discover(
                DiscoveryRequest(
                    query=self.query, k=5,
                    planner=PlannerOptions(mode="sketch"),
                    sketch=SketchOptions(threshold=0.0),
                )
            )
            assert _strip_runtime(sketch0.response) == _strip_runtime(
                exact.response
            )

    def test_threshold_prunes_with_full_recall(self):
        with DiscoverySession(self.corpus, config=CONFIG) as session:
            exact = session.discover(DiscoveryRequest(query=self.query, k=5))
            pruned = session.discover(
                DiscoveryRequest(
                    query=self.query, k=5,
                    planner=PlannerOptions(mode="sketch"),
                    sketch=SketchOptions(threshold=0.2),
                )
            )
            assert pruned.result_tuples() == exact.result_tuples()
            extra = pruned.counters.extra
            assert extra["sketch_candidates"] == 4.0
            assert 0.0 < extra["sketch_estimated_recall"] <= 1.0
            assert "sketch_candidates" not in exact.counters.extra

    def test_max_candidates_caps_the_universe(self):
        with DiscoverySession(self.corpus, config=CONFIG) as session:
            capped = session.discover(
                DiscoveryRequest(
                    query=self.query, k=5,
                    planner=PlannerOptions(mode="sketch"),
                    sketch=SketchOptions(max_candidates=2),
                )
            )
            assert capped.counters.extra["sketch_candidates"] <= 2.0
            # The two best-containment tables are the two top matches.
            assert [t for t, _ in capped.result_tuples()] == [203, 202]

    def test_sketch_options_stay_out_of_the_engine_cache_key(self):
        with DiscoverySession(self.corpus, config=CONFIG) as session:
            for threshold in (0.0, 0.1, 0.2):
                session.discover(
                    DiscoveryRequest(
                        query=self.query, k=5,
                        planner=PlannerOptions(mode="sketch"),
                        sketch=SketchOptions(threshold=threshold),
                    )
                )
            session.discover(DiscoveryRequest(query=self.query, k=5))
            # Every sketch threshold reused one cached engine; the exact
            # request shares it too (planner mode is not part of the key).
            assert len(session.cached_engines()) == 1

    def test_non_default_sketch_requires_sketch_mode(self):
        with pytest.raises(DiscoveryError, match="planner mode 'sketch'"):
            DiscoveryRequest(
                query=self.query, k=5, sketch=SketchOptions(threshold=0.3)
            )

    def test_unsupported_engine_is_rejected(self):
        with DiscoverySession(self.corpus, config=CONFIG) as session:
            with pytest.raises(DiscoveryError, match="sketch"):
                session.discover(
                    DiscoveryRequest(
                        query=self.query, k=5, engine="mcr",
                        planner=PlannerOptions(mode="sketch"),
                        sketch=SketchOptions(threshold=0.2),
                    )
                )

    def test_measured_recall_on_the_skewed_corpus(self):
        with DiscoverySession(self.corpus, config=CONFIG) as session:
            exact = session.discover(DiscoveryRequest(query=self.query, k=5))
            pruned = session.discover(
                DiscoveryRequest(
                    query=self.query, k=5,
                    planner=PlannerOptions(mode="sketch"),
                    sketch=SketchOptions(threshold=0.2),
                )
            )
        exact_ids = {t.table_id for t in exact.tables}
        pruned_ids = {t.table_id for t in pruned.tables}
        recall = len(exact_ids & pruned_ids) / len(exact_ids)
        assert recall >= 0.95


class TestLiveIndexFreshness:
    def _table(self, table_id: int) -> Table:
        return Table(
            table_id, f"t{table_id}", ["a", "b"],
            [[f"k{table_id}_{i}", f"v{table_id}_{i}"] for i in range(4)],
        )

    def test_sketches_survive_seal_and_reopen(self, tmp_path):
        directory = tmp_path / "live"
        live = LiveIndex.open(directory, config=CONFIG)
        for table_id in range(4):
            live.add_table(self._table(table_id))
        live.seal()
        live.close()
        assert (directory / "sketches.json").exists()

        reopened = LiveIndex.open(directory, config=CONFIG)
        store = reopened.sketch_index()
        assert store is not None
        assert store.table_ids() == {0, 1, 2, 3}
        reopened.close()

    def test_sketches_stay_fresh_after_wal_crash_recovery(self, tmp_path):
        directory = tmp_path / "live"
        live = LiveIndex.open(directory, config=CONFIG)
        live.add_table(self._table(0))
        live.seal()
        live.add_table(self._table(1))  # WAL only, never sealed
        # Simulated crash: no close(), no seal, torn in-flight record.
        with (directory / "wal.jsonl").open("a", encoding="utf-8") as handle:
            handle.write('{"op": "add_table", "seq": 99, "tab')

        recovered = LiveIndex.open(directory, config=CONFIG)
        store = recovered.sketch_index()
        assert store is not None
        # Table 1 was replayed from the WAL into the sketch store.
        assert store.table_ids() == {0, 1}
        recovered.close()

    def test_pre_sketch_directory_degrades_to_stale(self, tmp_path):
        directory = tmp_path / "live"
        live = LiveIndex.open(directory, config=CONFIG)
        live.add_table(self._table(0))
        live.seal()
        live.close()
        (directory / "sketches.json").unlink()
        (directory / "sketches.bin").unlink()

        reopened = LiveIndex.open(directory, config=CONFIG)
        # Sealed postings cannot be re-sketched: the store is stale and
        # never served (the session falls back to a corpus-built store).
        assert reopened.sketch_index() is None
        reopened.seal()
        assert not (directory / "sketches.json").exists()
        reopened.close()

    def test_session_falls_back_when_live_store_is_stale(self, tmp_path):
        directory = tmp_path / "live"
        live = LiveIndex.open(directory, config=CONFIG)
        corpus = TableCorpus(name="live_corpus")
        for table_id in range(3):
            table = self._table(table_id)
            corpus.add_table(table)
            live.add_table(table)
        live.seal()
        live.close()
        (directory / "sketches.json").unlink()
        (directory / "sketches.bin").unlink()

        reopened = LiveIndex.open(directory, config=CONFIG)
        with DiscoverySession(corpus, reopened, config=CONFIG) as session:
            store = session.sketch_index()
            assert store is not None
            assert store.table_ids() == {0, 1, 2}
        reopened.close()

    def test_session_ingest_keeps_the_shared_store_fresh(self, tmp_path):
        directory = tmp_path / "live"
        live = LiveIndex.open(directory, config=CONFIG)
        corpus = TableCorpus(name="live_corpus")
        with DiscoverySession(corpus, live, config=CONFIG) as session:
            session.ingest(self._table(0))
            assert session.sketch_index().table_ids() == {0}
            session.ingest(self._table(1))
            assert session.sketch_index().table_ids() == {0, 1}
            session.remove(0)
            assert session.sketch_index().table_ids() == {1}
        live.close()


class TestExtensions:
    def setup_method(self):
        self.corpus, self.query = build_sketch_scenario(ExperimentSettings())
        self.index = build_index(self.corpus, config=CONFIG)
        self.store = build_sketch_index(self.corpus)

    def test_similarity_join_prunes_without_losing_the_topk(self):
        exhaustive = SimilarityJoinDiscovery(
            self.corpus, self.index, config=CONFIG
        ).discover(self.query, k=5)
        from repro.metrics import DiscoveryCounters

        counters = DiscoveryCounters()
        pruned = SimilarityJoinDiscovery(
            self.corpus, self.index, config=CONFIG,
            sketch_index=self.store,
            sketch_options=SketchOptions(threshold=0.2),
        ).discover(self.query, k=5, counters=counters)
        assert [(r.table_id, r.similarity_joinability) for r in pruned] == [
            (r.table_id, r.similarity_joinability) for r in exhaustive
        ]
        assert counters.extra["sketch_candidates"] <= 8.0

    def test_union_search_prunes_without_losing_the_topk(self):
        query_columns = ["a", "b"]
        exhaustive = UnionSearch(self.corpus, self.index).top_k_unionable(
            self.query.table, k=4, columns=query_columns
        )
        pruned = UnionSearch(
            self.corpus, self.index,
            sketch_index=self.store,
            sketch_options=SketchOptions(threshold=0.2),
        ).top_k_unionable(self.query.table, k=4, columns=query_columns)
        assert [(c.table_id, c.unionability) for c in pruned] == [
            (c.table_id, c.unionability) for c in exhaustive
        ]

    def test_disabled_options_mean_no_pruning(self):
        search = UnionSearch(
            self.corpus, self.index,
            sketch_index=self.store,
            sketch_options=SketchOptions(),
        )
        assert search._sketch_allowed_tables(self.query.table, ["a"]) is None


class TestCli:
    @pytest.fixture()
    def corpus_and_query_files(self, tmp_path):
        import csv

        from repro.storage import save_corpus_json

        corpus, query = build_sketch_scenario(ExperimentSettings())
        corpus_path = tmp_path / "corpus.json"
        save_corpus_json(corpus, corpus_path)
        query_path = tmp_path / "query.csv"
        with query_path.open("w", newline="", encoding="utf-8") as handle:
            writer = csv.writer(handle)
            writer.writerow(query.table.columns)
            writer.writerows(query.table.rows)
        return corpus_path, query_path

    def test_discover_with_sketch_flags(self, corpus_and_query_files, capsys):
        from repro.cli import main

        corpus_path, query_path = corpus_and_query_files
        assert main([
            "discover", str(corpus_path), str(query_path),
            "--key", "a", "b", "--k", "4", "--sketch-threshold", "0.2",
        ]) == 0
        output = capsys.readouterr().out
        assert "sketch: 4 candidate tables" in output
        assert "match_3" in output

    def test_discover_json_carries_the_sketch_knobs(
        self, corpus_and_query_files, capsys
    ):
        from repro.cli import main

        corpus_path, query_path = corpus_and_query_files
        assert main([
            "discover", str(corpus_path), str(query_path),
            "--key", "a", "b", "--sketch-threshold", "0.2", "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        request = payload["request"]
        assert request["sketch_threshold"] == 0.2
        assert request["planner_mode"] == "sketch"

    def test_similarity_subcommand(self, corpus_and_query_files, capsys):
        from repro.cli import main

        corpus_path, query_path = corpus_and_query_files
        assert main([
            "similarity", str(corpus_path), str(query_path),
            "--key", "a", "b", "--k", "4", "--sketch-threshold", "0.2",
        ]) == 0
        output = capsys.readouterr().out
        assert "similarity-joinable" in output
        assert "sketch: 4 candidate tables" in output

    def test_union_subcommand(self, corpus_and_query_files, capsys):
        from repro.cli import main

        corpus_path, query_path = corpus_and_query_files
        assert main([
            "union", str(corpus_path), str(query_path),
            "--columns", "a", "b", "--k", "4",
            "--sketch-threshold", "0.2", "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert [entry["table_id"] for entry in payload["tables"]] == [
            203, 202, 201, 200
        ]
