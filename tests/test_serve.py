"""Tests for the process-pool serving backend (repro.serve).

The load-bearing contract here is byte-identity: the process pool must
return exactly the top-k the in-process engines return — same tables, same
joinability, same column mappings, same order — for any shard count, with
or without a budget.  Everything else (hedging, crash recovery, lifecycle)
rides on top of that.

Worker pools are expensive to start, so equivalence tests share
module-scoped pools keyed by shard count; lifecycle/crash tests that must
break a pool build their own tiny one.
"""

from __future__ import annotations

import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import DiscoveryRequest, DiscoverySession, RequestBudget
from repro.config import MateConfig
from repro.core import MateDiscovery, ShardedMateDiscovery
from repro.datagen import build_workload
from repro.datamodel import QueryTable, Table
from repro.exceptions import ConfigurationError, DiscoveryError
from repro.index import build_index
from repro.serve import ProcessShardPool, ServeConfig, split_budget
from repro.serve.protocol import (
    PROTOCOL_VERSION,
    ProtocolStats,
    ShardError,
    ShardQuery,
    Shutdown,
    WorkerReady,
)

CONFIG = MateConfig(expected_unique_values=100_000, k=5)
SHARD_COUNTS = (1, 2, 3)


def topk_tuples(result):
    """The byte-identity projection: everything except timing."""
    return [
        (t.table_id, t.joinability, tuple(t.column_mapping))
        for t in result.tables
    ]


@pytest.fixture(scope="module")
def workload():
    return build_workload("WT_100", seed=17, num_queries=2, corpus_scale=0.3)


def make_mate(corpus, config=CONFIG):
    index = build_index(corpus, config=config, hash_function_name="xash")
    return MateDiscovery(corpus, index, config=config)


@pytest.fixture(scope="module")
def reference(workload):
    """Single-process MateDiscovery top-k per query — the ground truth."""
    engine = make_mate(workload.corpus)
    return [topk_tuples(engine.discover(q, k=CONFIG.k)) for q in workload.queries]


@pytest.fixture(scope="module")
def pools(workload):
    """One process pool per shard count, started lazily, closed at teardown."""
    cache: dict[int, ProcessShardPool] = {}

    def get(num_shards: int) -> ProcessShardPool:
        if num_shards not in cache:
            cache[num_shards] = ProcessShardPool(
                workload.corpus,
                config=CONFIG,
                hash_function_name="xash",
                serve_config=ServeConfig(num_shards=num_shards),
            )
        return cache[num_shards]

    yield get
    for pool in cache.values():
        pool.close()


@pytest.fixture()
def tiny_query_corpus(running_example_corpus):
    return running_example_corpus


class TestProtocol:
    def make_query(self):
        table = Table(
            table_id=0,
            name="q",
            columns=["a", "b"],
            rows=[["x", "y"], ["z", "w"]],
        )
        return QueryTable(table=table, key_columns=["a"])

    def test_messages_pickle_round_trip(self):
        query = self.make_query()
        messages = [
            WorkerReady(
                shard_index=2,
                pid=1234,
                protocol_version=PROTOCOL_VERSION,
                num_tables=10,
                num_postings=99,
            ),
            ShardQuery(
                task_id=7,
                query=query,
                k=5,
                max_pl_fetches=12,
                deadline_seconds=1.5,
            ),
            ShardError(
                task_id=7, shard_index=2, kind="MateError", message="boom"
            ),
            Shutdown(reason="drain"),
        ]
        for message in messages:
            clone = pickle.loads(pickle.dumps(message))
            assert clone == message or isinstance(clone, ShardQuery)

    def test_shard_query_payload_survives_pickle(self):
        query = self.make_query()
        message = ShardQuery(
            task_id=1, query=query, k=3, max_pl_fetches=None, deadline_seconds=None
        )
        clone = pickle.loads(pickle.dumps(message))
        assert clone.task_id == 1
        assert clone.query.key_columns == query.key_columns
        assert clone.query.table.rows == query.table.rows

    def test_protocol_stats_as_dict(self):
        stats = ProtocolStats()
        stats.sent += 3
        stats.received += 2
        assert stats.as_dict() == {"sent": 3, "received": 2, "errors": 0}


class TestSplitBudget:
    def test_remainder_goes_to_lowest_shards(self):
        assert split_budget(10, 3) == [4, 3, 3]
        assert split_budget(2, 4) == [1, 1, 0, 0]
        assert split_budget(0, 2) == [0, 0]

    def test_none_stays_none(self):
        assert split_budget(None, 2) == [None, None]

    def test_shares_sum_to_total(self):
        for total in range(0, 40):
            for shards in range(1, 7):
                shares = split_budget(total, shards)
                assert sum(shares) == total
                assert max(shares) - min(shares) <= 1

    def test_invalid_inputs(self):
        with pytest.raises(DiscoveryError):
            split_budget(5, 0)
        with pytest.raises(DiscoveryError):
            split_budget(-1, 2)


class TestServeConfigValidation:
    def test_rejects_nonpositive_shards(self):
        with pytest.raises(ConfigurationError):
            ServeConfig(num_shards=0)

    def test_rejects_negative_hedge_delay(self):
        with pytest.raises(ConfigurationError):
            ServeConfig(hedge_after_seconds=-0.1)


class TestPoolEquivalence:
    @pytest.mark.parametrize("num_shards", SHARD_COUNTS)
    def test_topk_identical_to_thread_engine(
        self, workload, pools, num_shards
    ):
        thread_engine = ShardedMateDiscovery(
            workload.corpus,
            num_shards=num_shards,
            config=CONFIG,
            hash_function_name="xash",
        )
        pool = pools(num_shards)
        for query in workload.queries:
            expected = thread_engine.discover(query, k=CONFIG.k)
            actual = pool.discover(query, k=CONFIG.k)
            assert topk_tuples(actual) == topk_tuples(expected)
            assert actual.complete and expected.complete
            assert actual.system == expected.system

    def test_stage_stats_and_metrics_populated(self, workload, pools):
        pool = pools(2)
        result = pool.discover(workload.queries[0], k=CONFIG.k)
        stages = result.counters.stages
        assert stages["scatter"].calls == 1
        assert stages["gather"].calls == 1
        assert stages["scatter"].items_in == 2
        assert pool.metrics.requests >= 1
        stats = pool.statistics()
        assert stats["num_shards"] == 2
        assert len(stats["workers"]) == 2
        assert stats["serve"]["requests"] >= 1
        assert pool.work_imbalance() >= 0.0

    @settings(max_examples=10, deadline=None)
    @given(
        num_shards=st.sampled_from(SHARD_COUNTS),
        query_index=st.integers(min_value=0, max_value=1),
    )
    def test_property_pool_matches_single_process(
        self, workload, pools, reference, num_shards, query_index
    ):
        """Process-pool top-k == single-process top-k for any shard count."""
        pool = pools(num_shards)
        result = pool.discover(workload.queries[query_index], k=CONFIG.k)
        assert topk_tuples(result) == reference[query_index]


class TestBudget:
    def test_single_shard_budget_identical_to_mate(self, workload, pools):
        engine = make_mate(workload.corpus)
        query = workload.queries[0]
        reference_budget = RequestBudget(max_pl_fetches=4)
        expected = engine.discover(query, k=CONFIG.k, budget=reference_budget)
        pool_budget = RequestBudget(max_pl_fetches=4)
        actual = pools(1).discover(query, k=CONFIG.k, budget=pool_budget)
        assert topk_tuples(actual) == topk_tuples(expected)
        assert actual.complete == expected.complete
        assert pool_budget.remaining_pl_fetches == (
            reference_budget.remaining_pl_fetches
        )
        assert pool_budget.exhausted == reference_budget.exhausted

    def test_multi_shard_budget_reconciliation(self, workload, pools):
        budget = RequestBudget(max_pl_fetches=4)
        result = pools(3).discover(workload.queries[0], k=CONFIG.k, budget=budget)
        assert budget.remaining_pl_fetches == 0
        assert budget.exhausted
        assert not result.complete
        assert result.counters.budget_exhausted > 0

    def test_expired_deadline_latches_and_returns_nothing(
        self, workload, pools
    ):
        budget = RequestBudget(deadline_seconds=1e-9)
        while budget.remaining_seconds() > 0:  # let the clock tick past it
            pass
        result = pools(2).discover(workload.queries[0], k=CONFIG.k, budget=budget)
        assert budget.expired
        assert not result.complete
        assert result.tables == []

    def test_unbudgeted_requests_leave_no_ledger(self, workload, pools):
        result = pools(2).discover(workload.queries[0], k=CONFIG.k)
        assert result.complete


class TestSessionProcessExecution:
    def test_rejects_unknown_execution(self, workload):
        with pytest.raises(ConfigurationError):
            DiscoverySession(workload.corpus, config=CONFIG, execution="fiber")

    def test_process_session_matches_thread_session(self, workload):
        request = DiscoveryRequest(query=workload.queries[0], engine="sharded")
        with DiscoverySession(workload.corpus, config=CONFIG) as threads:
            expected = threads.discover(request)
        with DiscoverySession(
            workload.corpus,
            config=CONFIG,
            execution="process",
            serve_config=ServeConfig(num_shards=2),
        ) as processes:
            actual = processes.discover(request)
            assert topk_tuples(actual) == topk_tuples(expected)

            # The process pool honours budgets the thread engine refuses.
            limited = DiscoveryRequest(
                query=workload.queries[0], engine="sharded", max_pl_fetches=4
            )
            budgeted = processes.discover(limited)
            assert budgeted.counters.budget_exhausted >= 0
        with DiscoverySession(workload.corpus, config=CONFIG) as threads:
            with pytest.raises(DiscoveryError):
                threads.discover(limited)


class TestHedging:
    def test_hedged_pool_is_still_identical(self, workload, reference):
        pool = ProcessShardPool(
            workload.corpus,
            config=CONFIG,
            hash_function_name="xash",
            serve_config=ServeConfig(num_shards=2, hedge_after_seconds=0.0),
        )
        try:
            for query_index, query in enumerate(workload.queries):
                result = pool.discover(query, k=CONFIG.k)
                assert topk_tuples(result) == reference[query_index]
                assert "hedged_requests" in result.counters.extra
            assert pool.metrics.hedges_sent >= 1
        finally:
            pool.close()


class TestLifecycle:
    def make_pool(self, corpus, **kwargs):
        return ProcessShardPool(
            corpus,
            config=MateConfig(expected_unique_values=100_000, k=3),
            hash_function_name="xash",
            serve_config=ServeConfig(num_shards=1, **kwargs),
        )

    def test_spawn_context_worker(self, tiny_query_corpus):
        query, corpus = tiny_query_corpus
        engine = make_mate(
            corpus, config=MateConfig(expected_unique_values=100_000, k=3)
        )
        expected = engine.discover(query, k=3)
        with self.make_pool(corpus, mp_context="spawn") as pool:
            actual = pool.discover(query, k=3)
            assert topk_tuples(actual) == topk_tuples(expected)

    def test_close_is_idempotent_and_final(self, tiny_query_corpus):
        query, corpus = tiny_query_corpus
        pool = self.make_pool(corpus)
        pool.discover(query, k=3)
        pool.close()
        pool.close()
        with pytest.raises(DiscoveryError):
            pool.discover(query, k=3)

    def test_worker_crash_surfaces_as_discovery_error(self, tiny_query_corpus):
        query, corpus = tiny_query_corpus
        pool = self.make_pool(corpus)
        try:
            worker = pool._primaries[0]
            worker.process.kill()
            worker.process.join(timeout=5)
            with pytest.raises(DiscoveryError):
                pool.discover(query, k=3)
        finally:
            pool.close()
