"""Tests for experiment-result export (repro.experiments.reporting)."""

from __future__ import annotations

import csv
import io
import json

import pytest

from repro.cli import main
from repro.experiments import (
    ExperimentResult,
    result_to_csv,
    result_to_json,
    save_result,
)


@pytest.fixture()
def result():
    return ExperimentResult(
        name="Demo table",
        headers=["system", "runtime (s)", "precision"],
        rows=[["mate", 0.1234, 0.95], ["scr", 1.5, 0.5]],
        notes=["shape: mate wins"],
    )


class TestCsvExport:
    def test_round_trips_through_csv_reader(self, result):
        parsed = list(csv.reader(io.StringIO(result_to_csv(result))))
        assert parsed[0] == result.headers
        assert parsed[1][0] == "mate"
        assert float(parsed[1][1]) == pytest.approx(0.123, abs=1e-3)
        assert len(parsed) == 3

    def test_empty_rows(self):
        empty = ExperimentResult(name="empty", headers=["a"], rows=[])
        parsed = list(csv.reader(io.StringIO(result_to_csv(empty))))
        assert parsed == [["a"]]


class TestJsonExport:
    def test_document_structure(self, result):
        payload = json.loads(result_to_json(result))
        assert payload["name"] == "Demo table"
        assert payload["headers"] == result.headers
        assert payload["rows"][0]["system"] == "mate"
        assert payload["notes"] == ["shape: mate wins"]

    def test_non_serialisable_cells_are_stringified(self):
        weird = ExperimentResult(
            name="weird", headers=["value"], rows=[[{1, 2}]]
        )
        payload = json.loads(result_to_json(weird))
        assert isinstance(payload["rows"][0]["value"], str)


class TestSaveResult:
    def test_format_from_suffix(self, result, tmp_path):
        text_path = save_result(result, tmp_path / "out.txt")
        csv_path = save_result(result, tmp_path / "out.csv")
        json_path = save_result(result, tmp_path / "out.json")
        assert "Demo table" in text_path.read_text(encoding="utf-8")
        assert csv_path.read_text(encoding="utf-8").startswith("system,")
        assert json.loads(json_path.read_text(encoding="utf-8"))["name"] == "Demo table"

    def test_explicit_format_overrides_suffix(self, result, tmp_path):
        path = save_result(result, tmp_path / "out.data", format="json")
        assert json.loads(path.read_text(encoding="utf-8"))["headers"] == result.headers

    def test_creates_parent_directories(self, result, tmp_path):
        path = save_result(result, tmp_path / "nested" / "deep" / "out.csv")
        assert path.exists()


class TestCliOut:
    def test_experiment_command_saves_result(self, tmp_path, capsys):
        out = tmp_path / "init_column.json"
        exit_code = main([
            "experiment", "init_column", "--queries", "1", "--scale", "0.05",
            "--out", str(out),
        ])
        assert exit_code == 0
        payload = json.loads(out.read_text(encoding="utf-8"))
        assert any("cardinality" in str(row.values()) for row in payload["rows"])
        assert "saved to" in capsys.readouterr().out
