"""Tests for the service layer: sharded index, posting-list cache, batching."""

from __future__ import annotations

import pytest

from repro import (
    ConfigurationError,
    MateConfig,
    MateDiscovery,
    ServiceConfig,
    build_index,
    build_sharded_index,
)
from repro.index import ShardedInvertedIndex, shard_of_value
from repro.metrics import CacheCounters
from repro.service import CachingIndex, DiscoveryService, PostingListCache
from repro.storage import (
    InMemoryBackend,
    SQLiteBackend,
    list_sharded_indexes,
    load_sharded_index,
    save_sharded_index,
)
from repro.exceptions import StorageError


@pytest.fixture(scope="module")
def service_config() -> MateConfig:
    return MateConfig(hash_size=128, k=5, expected_unique_values=100_000)


@pytest.fixture(scope="module")
def workload():
    from repro.datagen import build_workload

    return build_workload("WT_10", seed=23, num_queries=3, corpus_scale=0.15)


@pytest.fixture(scope="module")
def monolithic_index(workload, service_config):
    return build_index(workload.corpus, config=service_config)


class TestShardRouting:
    def test_shard_of_value_is_stable_and_in_range(self):
        for value in ("muhammad", "lee", "germany", "60k", "x"):
            shard = shard_of_value(value, 4)
            assert 0 <= shard < 4
            assert shard == shard_of_value(value, 4)

    def test_single_shard_short_circuits(self):
        assert shard_of_value("anything", 1) == 0

    @pytest.mark.parametrize("num_shards", [1, 2, 4, 7])
    def test_sharded_fetch_equals_monolithic_fetch(
        self, workload, service_config, monolithic_index, num_shards
    ):
        sharded = build_sharded_index(
            workload.corpus, num_shards=num_shards, config=service_config
        )
        values = sorted(monolithic_index.values())[:200] + ["missing-from-index"]
        assert sharded.fetch(values) == monolithic_index.fetch(values)
        assert sharded.fetch_grouped_by_table(values) == (
            monolithic_index.fetch_grouped_by_table(values)
        )
        assert sharded.posting_count_for_values(values) == (
            monolithic_index.posting_count_for_values(values)
        )

    def test_parallel_fetch_equals_serial_fetch(
        self, workload, service_config, monolithic_index
    ):
        sharded = build_sharded_index(
            workload.corpus, num_shards=4, config=service_config, max_workers=4
        )
        values = sorted(monolithic_index.values())[:200]
        assert sharded.fetch(values) == monolithic_index.fetch(values)

    def test_shards_partition_the_values(self, workload, service_config):
        sharded = build_sharded_index(
            workload.corpus, num_shards=4, config=service_config
        )
        for shard_index in range(sharded.num_shards):
            for value in sharded.shard(shard_index).values():
                assert sharded.shard_of(value) == shard_index
        assert sum(sharded.shard_sizes()) == sharded.num_posting_items()

    def test_introspection_matches_monolith(
        self, workload, service_config, monolithic_index
    ):
        sharded = build_sharded_index(
            workload.corpus, num_shards=3, config=service_config
        )
        assert len(sharded) == len(monolithic_index)
        assert sharded.num_posting_items() == monolithic_index.num_posting_items()
        assert sharded.num_rows() == monolithic_index.num_rows()
        assert sharded.indexed_tables() == monolithic_index.indexed_tables()
        assert sorted(sharded.values()) == sorted(monolithic_index.values())
        assert sorted(sharded.iter_super_keys()) == sorted(
            monolithic_index.iter_super_keys()
        )

    def test_from_index_partition(self, service_config, monolithic_index):
        sharded = ShardedInvertedIndex.from_index(monolithic_index, num_shards=4)
        values = sorted(monolithic_index.values())[:100]
        assert sharded.fetch(values) == monolithic_index.fetch(values)

    def test_discovery_engine_runs_unchanged_on_sharded_index(
        self, workload, service_config, monolithic_index
    ):
        sharded = build_sharded_index(
            workload.corpus, num_shards=4, config=service_config
        )
        for query in workload.queries:
            mono = MateDiscovery(
                workload.corpus, monolithic_index, config=service_config
            ).discover(query)
            over_shards = MateDiscovery(
                workload.corpus, sharded, config=service_config
            ).discover(query)
            assert over_shards.result_tuples() == mono.result_tuples()

    def test_removal_operations_match_monolith(
        self, running_example_corpus, service_config
    ):
        _, corpus = running_example_corpus
        sharded = build_sharded_index(corpus, num_shards=3, config=service_config)
        reference = build_index(corpus, config=service_config)
        assert sharded.remove_column(1, 3) == reference.remove_column(1, 3)
        assert sharded.remove_row(1, 0) == reference.remove_row(1, 0)
        assert sharded.remove_table(2) == reference.remove_table(2)
        assert sorted(sharded.values()) == sorted(reference.values())
        assert sorted(sharded.iter_super_keys()) == sorted(
            reference.iter_super_keys()
        )
        assert sharded.indexed_tables() == reference.indexed_tables()


class TestPostingListCache:
    def test_hit_miss_and_eviction_accounting(self, monolithic_index):
        cache = PostingListCache(capacity=2)
        values = sorted(monolithic_index.values())[:3]
        assert cache.get(values[0]) is None  # miss
        cache.put(values[0], monolithic_index.fetch([values[0]]))
        assert cache.get(values[0]) is not None  # hit
        cache.put(values[1], ())
        cache.put(values[2], ())  # evicts values[0] (LRU)
        assert values[0] not in cache
        counters = cache.counters
        assert counters.hits == 1
        assert counters.misses == 1
        assert counters.evictions == 1
        assert counters.hit_rate == 0.5

    def test_rejects_non_positive_capacity(self):
        with pytest.raises(ConfigurationError):
            PostingListCache(capacity=0)

    def test_caching_index_is_transparent(self, monolithic_index):
        caching = CachingIndex(monolithic_index, capacity=64)
        values = sorted(monolithic_index.values())[:40]
        cold = caching.fetch(values)
        warm = caching.fetch(values)
        assert cold == monolithic_index.fetch(values)
        assert warm == cold
        assert caching.counters.misses == 40
        assert caching.counters.hits == 40
        # Delegated surface.
        assert len(caching) == len(monolithic_index)
        assert caching.hash_function_name == monolithic_index.hash_function_name
        assert caching.posting_list(values[0]) == (
            monolithic_index.posting_list(values[0])
        )

    def test_negative_results_are_cached(self, monolithic_index):
        caching = CachingIndex(monolithic_index, capacity=8)
        assert caching.fetch(["definitely-not-indexed"]) == []
        assert caching.fetch(["definitely-not-indexed"]) == []
        assert caching.counters.hits == 1

    def test_mutation_invalidates(self, service_config):
        from repro.datamodel import Table, TableCorpus

        corpus = TableCorpus(name="tiny")
        corpus.add_table(
            Table(table_id=0, name="t", columns=["a"], rows=[["x"], ["y"]])
        )
        caching = CachingIndex(build_index(corpus, config=service_config))
        before = caching.fetch(["x"])
        caching.add_posting("x", 0, 0, 1)
        after = caching.fetch(["x"])
        assert len(after) == len(before) + 1
        # Super-key updates clear the whole cache (items embed super keys).
        caching.set_super_key(0, 0, 12345)
        refreshed = caching.fetch(["x"])
        assert any(item.super_key == 12345 for item in refreshed)

    def test_counter_snapshots_and_merge(self):
        counters = CacheCounters(hits=3, misses=1, evictions=2)
        snap = counters.snapshot()
        counters.hits += 2
        delta = counters.delta_since(snap)
        assert (delta.hits, delta.misses, delta.evictions) == (2, 0, 0)
        merged = CacheCounters()
        merged.merge(counters)
        assert merged.as_dict()["cache_hits"] == 5
        assert merged.lookups == 6


class TestDiscoveryService:
    @pytest.mark.parametrize("num_shards,max_workers", [(1, 1), (4, 1), (4, 3)])
    def test_batch_matches_sequential_discovery(
        self, workload, service_config, monolithic_index, num_shards, max_workers
    ):
        sequential = [
            MateDiscovery(
                workload.corpus, monolithic_index, config=service_config
            ).discover(query)
            for query in workload.queries
        ]
        index = build_sharded_index(
            workload.corpus, num_shards=num_shards, config=service_config
        )
        service = DiscoveryService(
            workload.corpus,
            index,
            config=service_config,
            service_config=ServiceConfig(
                cache_capacity=512, max_workers=max_workers
            ),
        )
        batch = service.discover_batch(list(workload.queries))
        assert len(batch) == len(workload.queries)
        for cold, served in zip(sequential, batch):
            assert served.result_tuples() == cold.result_tuples()

    def test_batch_stats_and_cache_accounting(
        self, workload, service_config, monolithic_index
    ):
        service = DiscoveryService(
            workload.corpus,
            monolithic_index,
            config=service_config,
            service_config=ServiceConfig(cache_capacity=512),
        )
        queries = list(workload.queries)
        first = service.discover_batch(queries)
        stats = first.stats
        assert stats.num_queries == len(queries)
        assert stats.batch_seconds > 0
        assert stats.queries_per_second > 0
        assert stats.distinct_probe_values > 0
        # Warm-up fetches each distinct value once (all misses); the engine
        # run then hits the cache for every one of them.
        assert stats.cache.misses == stats.distinct_probe_values
        assert stats.cache.hits >= stats.distinct_probe_values
        # A second identical batch is served entirely from the cache.
        second = service.discover_batch(queries)
        assert second.stats.cache.misses == 0
        assert second.stats.cache.hit_rate == 1.0
        for a, b in zip(first, second):
            assert a.result_tuples() == b.result_tuples()

    def test_cache_disabled(self, workload, service_config, monolithic_index):
        service = DiscoveryService(
            workload.corpus,
            monolithic_index,
            config=service_config,
            service_config=ServiceConfig(cache_capacity=0),
        )
        batch = service.discover_batch(list(workload.queries))
        assert batch.stats.cache.lookups == 0
        cold = MateDiscovery(
            workload.corpus, monolithic_index, config=service_config
        ).discover(workload.queries[0])
        assert batch[0].result_tuples() == cold.result_tuples()

    def test_single_query_serving(self, workload, service_config, monolithic_index):
        service = DiscoveryService(
            workload.corpus, monolithic_index, config=service_config
        )
        result = service.discover(workload.queries[0])
        cold = MateDiscovery(
            workload.corpus, monolithic_index, config=service_config
        ).discover(workload.queries[0])
        assert result.result_tuples() == cold.result_tuples()

    def test_service_shards_a_monolithic_index_per_config(
        self, workload, service_config, monolithic_index
    ):
        from repro.service.cache import CachingIndex as _CachingIndex

        service = DiscoveryService(
            workload.corpus,
            monolithic_index,
            config=service_config,
            service_config=ServiceConfig(num_shards=4, fetch_workers=3),
        )
        assert isinstance(service.index, _CachingIndex)
        assert isinstance(service.index.wrapped, ShardedInvertedIndex)
        assert service.index.wrapped.num_shards == 4
        assert service.index.wrapped.max_workers == 3
        batch = service.discover_batch(list(workload.queries))
        cold = MateDiscovery(
            workload.corpus, monolithic_index, config=service_config
        ).discover(workload.queries[0])
        assert batch[0].result_tuples() == cold.result_tuples()

    def test_probe_values_match_engine_initialization(
        self, workload, service_config, monolithic_index
    ):
        engine = MateDiscovery(
            workload.corpus, monolithic_index, config=service_config
        )
        for query in workload.queries:
            values = engine.probe_values(query)
            assert values  # every generated query has complete key tuples
            initial = engine.column_selector(query, monolithic_index)
            key_map = engine._build_key_super_key_map(query, initial)
            assert set(values) == set(key_map)

    def test_service_config_validation(self):
        with pytest.raises(ConfigurationError):
            ServiceConfig(num_shards=0)
        with pytest.raises(ConfigurationError):
            ServiceConfig(cache_capacity=-1)
        with pytest.raises(ConfigurationError):
            ServiceConfig(max_workers=0)
        with pytest.raises(ConfigurationError):
            ServiceConfig(fetch_workers=0)


class TestShardedPersistence:
    @pytest.mark.parametrize("backend_factory", [InMemoryBackend, SQLiteBackend])
    def test_round_trip(
        self, workload, service_config, monolithic_index, backend_factory, tmp_path
    ):
        sharded = build_sharded_index(
            workload.corpus, num_shards=3, config=service_config
        )
        if backend_factory is SQLiteBackend:
            backend = backend_factory(tmp_path / "service.db")
        else:
            backend = backend_factory()
        with backend:
            save_sharded_index(backend, "main", sharded)
            assert list_sharded_indexes(backend) == {"main": 3}
            loaded = load_sharded_index(backend, "main")
        assert loaded.num_shards == 3
        assert loaded.hash_function_name == sharded.hash_function_name
        assert loaded.hash_size == sharded.hash_size
        values = sorted(monolithic_index.values())[:150]
        assert loaded.fetch(values) == monolithic_index.fetch(values)
        assert sorted(loaded.iter_super_keys()) == sorted(
            sharded.iter_super_keys()
        )
        assert loaded.shard_sizes() == sharded.shard_sizes()

    def test_sqlite_round_trip_preserves_discovery(
        self, workload, service_config, tmp_path
    ):
        sharded = build_sharded_index(
            workload.corpus, num_shards=4, config=service_config
        )
        with SQLiteBackend(tmp_path / "svc.db") as backend:
            save_sharded_index(backend, "main", sharded)
        with SQLiteBackend(tmp_path / "svc.db") as backend:
            loaded = load_sharded_index(backend, "main")
        query = workload.queries[0]
        original = MateDiscovery(
            workload.corpus, sharded, config=service_config
        ).discover(query)
        restored = MateDiscovery(
            workload.corpus, loaded, config=service_config
        ).discover(query)
        assert restored.result_tuples() == original.result_tuples()

    def test_resave_with_different_shard_count_replaces_old_layout(
        self, workload, service_config
    ):
        four = build_sharded_index(
            workload.corpus, num_shards=4, config=service_config
        )
        two = build_sharded_index(
            workload.corpus, num_shards=2, config=service_config
        )
        with InMemoryBackend() as backend:
            save_sharded_index(backend, "main", four)
            save_sharded_index(backend, "main", two)
            assert list_sharded_indexes(backend) == {"main": 2}
            # No shard records of the old 4-way layout are left behind.
            assert all("of4" not in name for name in backend.list_indexes())
            loaded = load_sharded_index(backend, "main")
        assert loaded.num_shards == 2
        assert loaded.num_posting_items() == two.num_posting_items()

    def test_incomplete_layouts_are_not_listed(self, workload, service_config):
        sharded = build_sharded_index(
            workload.corpus, num_shards=3, config=service_config
        )
        with InMemoryBackend() as backend:
            save_sharded_index(backend, "main", sharded)
            backend.delete_index("main.shard2of3")
            assert list_sharded_indexes(backend) == {}
            with pytest.raises(StorageError):
                load_sharded_index(backend, "main")

    def test_missing_sharded_index_raises(self):
        with InMemoryBackend() as backend:
            with pytest.raises(StorageError):
                load_sharded_index(backend, "nope")

    def test_list_indexes_on_both_backends(self, monolithic_index, tmp_path):
        with InMemoryBackend() as backend:
            backend.save_index("solo", monolithic_index)
            assert backend.list_indexes() == ["solo"]
        with SQLiteBackend(tmp_path / "list.db") as backend:
            backend.save_index("solo", monolithic_index)
            assert backend.list_indexes() == ["solo"]


class TestServiceSessionRouting:
    """The deprecated shim routes everything through a supplied session."""

    def test_supplied_session_is_used_as_is(
        self, workload, service_config, monolithic_index
    ):
        from repro.api import DiscoverySession

        session = DiscoverySession(
            workload.corpus,
            monolithic_index,
            config=service_config,
            service_config=ServiceConfig(cache_capacity=256),
        )
        with pytest.warns(DeprecationWarning):
            service = DiscoveryService(session=session)
        # Same session, same index object, same cache — nothing duplicated.
        assert service.session is session
        assert service.index is session.index
        assert service.corpus is session.corpus
        assert service.cache_counters is session.cache_counters
        result = service.discover(workload.queries[0])
        direct = MateDiscovery(
            workload.corpus, monolithic_index, config=service_config
        ).discover(workload.queries[0])
        assert result.result_tuples() == direct.result_tuples()
        # Cache traffic from the shim landed in the session's cache.
        assert session.cache_counters.lookups > 0
        # Closing the shim leaves the borrowed session open for its owner.
        service.close()
        assert session.discover_batch([]).stats.num_queries == 0
        session.close()

    def test_conflicting_corpus_or_index_is_refused(
        self, workload, service_config, monolithic_index
    ):
        from repro.api import DiscoverySession
        from repro.datamodel import TableCorpus

        session = DiscoverySession(
            workload.corpus, monolithic_index, config=service_config
        )
        with pytest.warns(DeprecationWarning):
            with pytest.raises(ConfigurationError):
                DiscoveryService(TableCorpus(name="other"), session=session)
        other_index = build_index(workload.corpus, config=service_config)
        with pytest.warns(DeprecationWarning):
            with pytest.raises(ConfigurationError):
                DiscoveryService(index=other_index, session=session)

    def test_corpus_is_required_without_a_session(self):
        with pytest.warns(DeprecationWarning):
            with pytest.raises(ConfigurationError):
                DiscoveryService()

    def test_precached_index_is_not_double_wrapped(
        self, workload, service_config, monolithic_index
    ):
        from repro.api import DiscoverySession

        cached = CachingIndex(monolithic_index, capacity=128)
        session = DiscoverySession(
            workload.corpus,
            cached,
            config=service_config,
            service_config=ServiceConfig(cache_capacity=4096),
        )
        # The session adopts the existing cache instead of stacking another.
        assert session.index is cached
        assert session.base_index is monolithic_index
        result = session.discover_batch([])  # touches the cache plumbing
        assert result.stats.num_queries == 0
