"""Tests for the XASH ablation variants (Figure 5)."""


from repro.hashing import FIGURE5_VARIANTS, create_hash_function, popcount
from repro.hashing.ablation import (
    CharacterLengthLocationXash,
    CharacterLocationXash,
    LengthOnlyXash,
    RareCharactersXash,
)


class TestLengthOnly:
    def test_exactly_one_bit(self, config):
        variant = LengthOnlyXash(config)
        for value in ("muhammad", "us", "photographer"):
            assert popcount(variant.hash_value(value)) == 1

    def test_bit_lives_in_length_segment(self, config):
        variant = LengthOnlyXash(config)
        hashed = variant.hash_value("dresden")
        assert variant.character_region(hashed) == 0
        assert variant.length_segment(hashed) != 0

    def test_same_length_values_collide(self, config):
        variant = LengthOnlyXash(config)
        assert variant.hash_value("boxer") == variant.hash_value("racer")

    def test_empty_value(self, config):
        assert LengthOnlyXash(config).hash_value("") == 0


class TestRareCharacters:
    def test_no_length_bit(self, config):
        variant = RareCharactersXash(config)
        hashed = variant.hash_value("muhammad")
        assert variant.length_segment(hashed) == 0
        assert variant.character_region(hashed) != 0

    def test_location_not_encoded(self, config):
        variant = RareCharactersXash(config)
        # Same character multiset, different order -> same hash without the
        # location feature.
        assert variant.hash_value("abcdef") == variant.hash_value("fedcba")


class TestCharacterLocation:
    def test_location_encoded(self, config):
        variant = CharacterLocationXash(config)
        assert variant.hash_value("abcdef") != variant.hash_value("fedcba")

    def test_no_length_bit(self, config):
        variant = CharacterLocationXash(config)
        assert variant.length_segment(variant.hash_value("germany")) == 0


class TestCharacterLengthLocation:
    def test_differs_from_full_xash_by_rotation_only(self, config):
        no_rotation = CharacterLengthLocationXash(config)
        full = create_hash_function("xash", config)
        value = "photographer"
        assert no_rotation.config.rotation is False
        assert full.config.rotation is True
        assert popcount(no_rotation.hash_value(value)) == popcount(full.hash_value(value))

    def test_has_length_bit(self, config):
        variant = CharacterLengthLocationXash(config)
        assert variant.length_segment(variant.hash_value("germany")) != 0


class TestVariantOrdering:
    """Feature-richer variants should be at least as discriminative."""

    def test_distinct_hash_count_increases_with_features(self, config):
        values = [
            "muhammad", "gretchen", "helmut", "ansel", "adams", "newton",
            "boxer", "birder", "dancer", "artist", "actor", "photographer",
            "berlin", "dresden", "hamburg", "hannover", "munich", "cologne",
        ]
        distinct_counts = []
        for name in FIGURE5_VARIANTS:
            variant = create_hash_function(name, config)
            distinct_counts.append(len({variant.hash_value(v) for v in values}))
        # The list is ordered length-only -> ... -> full XASH; distinctness
        # should not decrease along the way.
        assert distinct_counts == sorted(distinct_counts)

    def test_all_variants_registered(self, config):
        for name in FIGURE5_VARIANTS:
            assert create_hash_function(name, config) is not None
