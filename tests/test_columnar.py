"""Tests for the columnar posting-list engine and its packed persistence."""

from __future__ import annotations

import pytest

from repro import MateConfig, MateDiscovery, build_index, build_sharded_index
from repro.datagen import build_workload
from repro.exceptions import ConfigurationError, IndexError_, StorageError
from repro.index import (
    ColumnarPostingList,
    DictSuperKeys,
    FetchBlock,
    InvertedIndex,
    PackedSuperKeys,
    compute_table_runs,
    fetch_table_blocks,
    group_into_table_blocks,
)
from repro.service import CachingIndex, DiscoveryService
from repro.storage import (
    InMemoryBackend,
    PagedPostingStore,
    SQLiteBackend,
    index_from_payload,
    index_to_payload,
    load_index_json,
    load_sharded_index,
    save_index_json,
    save_sharded_index,
)


@pytest.fixture(scope="module")
def config() -> MateConfig:
    return MateConfig(hash_size=128, k=5, expected_unique_values=100_000)


@pytest.fixture(scope="module")
def workload():
    return build_workload("WT_10", seed=31, num_queries=3, corpus_scale=0.15)


@pytest.fixture(scope="module")
def legacy_index(workload, config):
    return build_index(workload.corpus, config=config, layout="legacy")


@pytest.fixture(scope="module")
def columnar_index(workload, config):
    return build_index(workload.corpus, config=config, layout="columnar")


class TestPackedSuperKeys:
    def test_set_get_roundtrip(self):
        store = PackedSuperKeys(128)
        store.set((1, 2), 0xDEADBEEF)
        store.set((1, 3), (1 << 127) | 5)
        assert store.get((1, 2)) == 0xDEADBEEF
        assert store.get((1, 3)) == (1 << 127) | 5
        assert store.get((9, 9)) == 0
        assert store.get((9, 9), None) is None
        assert (1, 2) in store and (9, 9) not in store
        assert len(store) == 2

    def test_oversized_keys_spill(self):
        store = PackedSuperKeys(64)
        wide = 1 << 80  # wider than the configured 64 bits
        store.set((0, 0), wide)
        assert store.get((0, 0)) == wide
        # Replacing a spilled key with a fitting one moves it back to a slot.
        store.set((0, 0), 7)
        assert store.get((0, 0)) == 7
        assert len(store) == 1

    def test_or_into_and_pop(self):
        store = PackedSuperKeys(128)
        assert store.or_into((0, 0), 0b0101) == 0b0101
        assert store.or_into((0, 0), 0b1010) == 0b1111
        store.pop((0, 0))
        assert (0, 0) not in store
        store.pop((0, 0))  # no-op

    def test_slot_recycling(self):
        store = PackedSuperKeys(128)
        for row in range(4):
            store.set((0, row), row + 1)
        buffer_size = len(store._buffer)
        store.pop((0, 1))
        store.set((0, 9), 42)  # reuses the freed slot
        assert len(store._buffer) == buffer_size
        assert store.get((0, 9)) == 42

    def test_epoch_bumps_on_mutation(self):
        store = PackedSuperKeys(128)
        before = store.epoch
        store.set((0, 0), 1)
        store.or_into((0, 0), 2)
        store.pop((0, 0))
        assert store.epoch == before + 3

    @pytest.mark.parametrize("factory", [lambda: PackedSuperKeys(128), DictSuperKeys])
    def test_get_many_and_items_parity(self, factory):
        store = factory()
        expected = {}
        for table_id in range(3):
            for row in range(5):
                value = (table_id * 31 + row) << (row * 7)
                store.set((table_id, row), value)
                expected[(table_id, row)] = value
        assert dict(store.items()) == expected
        keys = sorted(expected)
        column = store.get_many(
            [k[0] for k in keys], [k[1] for k in keys]
        )
        assert column == [expected[k] for k in keys]
        assert store.get_many([99], [99]) == [0]


class TestColumnarPostingList:
    def test_runs_and_items(self):
        columns = ColumnarPostingList()
        for table_id, column_index, row_index in [
            (1, 0, 0), (1, 1, 0), (2, 0, 3), (2, 0, 4), (1, 0, 9),
        ]:
            columns.append(table_id, column_index, row_index)
        assert len(columns) == 5
        assert columns.runs() == [(1, 0, 2), (2, 2, 4), (1, 4, 5)]
        assert [item.table_id for item in columns.items()] == [1, 1, 2, 2, 1]
        assert columns.item(2).row_index == 3

    def test_runs_memoised_until_append(self):
        columns = ColumnarPostingList()
        columns.append(1, 0, 0)
        first = columns.runs()
        assert columns.runs() is first
        columns.append(2, 0, 0)
        assert columns.runs() == [(1, 0, 1), (2, 1, 2)]

    def test_super_key_column_memoised_per_store_epoch(self):
        columns = ColumnarPostingList()
        columns.append(0, 0, 0)
        columns.append(0, 0, 1)
        store = PackedSuperKeys(128)
        store.set((0, 0), 11)
        store.set((0, 1), 22)
        first = columns.super_key_column(store)
        assert first == [11, 22]
        assert columns.super_key_column(store) is first  # memoised
        store.set((0, 1), 33)  # epoch bump invalidates
        assert columns.super_key_column(store) == [11, 33]
        other = DictSuperKeys()
        other.set((0, 0), 1)
        assert columns.super_key_column(other) == [1, 0]  # different store

    def test_filtered_keeps_object_when_nothing_removed(self):
        columns = ColumnarPostingList()
        columns.append(1, 0, 0)
        kept, removed = columns.filtered(lambda t, c, r: True)
        assert kept is columns and removed == 0
        kept, removed = columns.filtered(lambda t, c, r: t != 1)
        assert removed == 1 and len(kept) == 0

    def test_from_columns_validates_lengths(self):
        with pytest.raises(ValueError):
            ColumnarPostingList.from_columns([1, 2], [0], [0, 1])

    def test_compute_table_runs_empty(self):
        assert compute_table_runs([]) == []


class TestLayoutParity:
    """Columnar and legacy layouts are observably identical."""

    def test_fetch_results_identical(self, legacy_index, columnar_index):
        values = sorted(legacy_index.values())[:300] + ["missing", ""]
        assert columnar_index.fetch(values) == legacy_index.fetch(values)
        assert columnar_index.fetch_grouped_by_table(values) == (
            legacy_index.fetch_grouped_by_table(values)
        )

    def test_fetch_batch_flattens_to_fetch(self, columnar_index):
        values = sorted(columnar_index.values())[:200]
        flattened = [
            item
            for block in columnar_index.fetch_batch(values)
            for item in block
        ]
        assert flattened == columnar_index.fetch(values)

    def test_fetch_batch_parity_across_layouts(self, legacy_index, columnar_index):
        values = sorted(legacy_index.values())[:200]
        assert columnar_index.fetch_batch(values) == legacy_index.fetch_batch(
            values
        )

    def test_posting_accessors_identical(self, legacy_index, columnar_index):
        assert len(columnar_index) == len(legacy_index)
        assert columnar_index.num_posting_items() == legacy_index.num_posting_items()
        assert sorted(columnar_index.iter_super_keys()) == sorted(
            legacy_index.iter_super_keys()
        )
        for value in sorted(legacy_index.values())[:50]:
            assert columnar_index.posting_list(value) == (
                legacy_index.posting_list(value)
            )
            assert columnar_index.posting_list_length(value) == (
                legacy_index.posting_list_length(value)
            )

    def test_table_blocks_match_grouped_fetch(self, legacy_index, columnar_index):
        values = sorted(legacy_index.values())[:200]
        grouped = legacy_index.fetch_grouped_by_table(values)
        blocks = group_into_table_blocks(columnar_index.fetch_batch(values))
        assert set(blocks) == set(grouped)
        for table_id, block in blocks.items():
            assert block.items() == grouped[table_id]
        # The helper used by the engine produces the same grouping for both.
        legacy_blocks = fetch_table_blocks(legacy_index, values)
        for table_id, block in fetch_table_blocks(columnar_index, values).items():
            assert block.items() == legacy_blocks[table_id].items()

    def test_discovery_topk_identical_on_planted_workload(
        self, workload, config, legacy_index, columnar_index
    ):
        for query in workload.queries:
            legacy = MateDiscovery(
                workload.corpus, legacy_index, config=config
            ).discover(query)
            columnar = MateDiscovery(
                workload.corpus, columnar_index, config=config
            ).discover(query)
            assert columnar.result_tuples() == legacy.result_tuples()
            assert (
                columnar.counters.pl_items_fetched
                == legacy.counters.pl_items_fetched
            )
            assert columnar.counters.rows_checked == legacy.counters.rows_checked

    def test_sharded_columnar_discovery_matches(self, workload, config, legacy_index):
        sharded = build_sharded_index(
            workload.corpus, num_shards=3, config=config, layout="columnar"
        )
        assert sharded.layout == "columnar"
        values = sorted(legacy_index.values())[:200]
        assert sharded.fetch(values) == legacy_index.fetch(values)
        for query in workload.queries[:1]:
            legacy = MateDiscovery(
                workload.corpus, legacy_index, config=config
            ).discover(query)
            over_shards = MateDiscovery(
                workload.corpus, sharded, config=config
            ).discover(query)
            assert over_shards.result_tuples() == legacy.result_tuples()

    def test_maintenance_removals_identical(self, workload, config):
        legacy = build_index(workload.corpus, config=config, layout="legacy")
        columnar = build_index(workload.corpus, config=config, layout="columnar")
        table_id = sorted(legacy.indexed_tables())[0]
        assert columnar.remove_column(table_id, 0) == legacy.remove_column(
            table_id, 0
        )
        assert columnar.remove_row(table_id, 0) == legacy.remove_row(table_id, 0)
        assert columnar.remove_table(table_id) == legacy.remove_table(table_id)
        assert sorted(columnar.values()) == sorted(legacy.values())
        assert sorted(columnar.iter_super_keys()) == sorted(
            legacy.iter_super_keys()
        )

    def test_mutations_invalidate_memoised_columns(self, config):
        from repro.datamodel import Table, TableCorpus

        corpus = TableCorpus(name="tiny")
        corpus.add_table(
            Table(table_id=0, name="t", columns=["a"], rows=[["x"], ["x"]])
        )
        index = build_index(corpus, config=config, layout="columnar")
        before = index.fetch(["x"])
        index.set_super_key(0, 1, 12345)
        after = index.fetch(["x"])
        assert before != after
        assert after[1].super_key == 12345
        index.add_posting("x", 0, 0, 1)
        assert len(index.fetch(["x"])) == len(after) + 1

    def test_invalid_layout_rejected(self):
        with pytest.raises(IndexError_):
            InvertedIndex(layout="rowwise")
        with pytest.raises(ConfigurationError):
            MateConfig(index_layout="rowwise")

    def test_legacy_index_has_no_posting_columns(self, legacy_index):
        with pytest.raises(IndexError_):
            legacy_index.posting_columns("anything")


class TestPackedPersistence:
    """The packed layout round-trips through every storage backend."""

    def test_payload_version_2_roundtrip(self, columnar_index):
        payload = index_to_payload(columnar_index)
        assert payload["format_version"] == 2
        assert payload["layout"] == "columnar"
        restored = index_from_payload(payload)
        assert restored.layout == "columnar"
        values = sorted(columnar_index.values())[:150]
        assert restored.fetch(values) == columnar_index.fetch(values)
        assert sorted(restored.iter_super_keys()) == sorted(
            columnar_index.iter_super_keys()
        )

    def test_payload_version_1_roundtrip(self, legacy_index):
        payload = index_to_payload(legacy_index)
        assert payload["format_version"] == 1
        restored = index_from_payload(payload)
        assert restored.layout == "legacy"
        values = sorted(legacy_index.values())[:150]
        assert restored.fetch(values) == legacy_index.fetch(values)

    def test_version_1_payload_loads_without_version_key(self, legacy_index):
        payload = index_to_payload(legacy_index)
        del payload["format_version"]
        del payload["layout"]
        restored = index_from_payload(payload)
        assert restored.layout == "legacy"
        values = sorted(legacy_index.values())[:50]
        assert restored.fetch(values) == legacy_index.fetch(values)

    def test_unsupported_version_rejected(self, columnar_index):
        payload = index_to_payload(columnar_index)
        payload["format_version"] = 99
        with pytest.raises(StorageError):
            index_from_payload(payload)

    def test_unknown_layout_rejected_as_storage_error(self, columnar_index):
        payload = index_to_payload(columnar_index)
        payload["layout"] = "fancy"
        with pytest.raises(StorageError):
            index_from_payload(payload)

    def test_json_file_roundtrip(self, columnar_index, tmp_path):
        path = save_index_json(columnar_index, tmp_path / "index.json")
        restored = load_index_json(path)
        values = sorted(columnar_index.values())[:100]
        assert restored.fetch(values) == columnar_index.fetch(values)
        with pytest.raises(StorageError):
            load_index_json(tmp_path / "missing.json")

    @pytest.mark.parametrize("layout", ["columnar", "legacy"])
    def test_memory_backend_roundtrip(self, workload, config, layout):
        index = build_index(workload.corpus, config=config, layout=layout)
        with InMemoryBackend() as backend:
            backend.save_index("main", index)
            restored = backend.load_index("main")
        assert restored.layout == layout
        values = sorted(index.values())[:100]
        assert restored.fetch(values) == index.fetch(values)

    @pytest.mark.parametrize("layout", ["columnar", "legacy"])
    def test_sqlite_backend_roundtrip(self, workload, config, layout, tmp_path):
        index = build_index(workload.corpus, config=config, layout=layout)
        db = tmp_path / f"{layout}.db"
        with SQLiteBackend(db) as backend:
            backend.save_index("main", index)
        with SQLiteBackend(db) as backend:
            assert backend.list_indexes() == ["main"]
            restored = backend.load_index("main")
        assert restored.layout == layout
        values = sorted(index.values())[:150]
        assert restored.fetch(values) == index.fetch(values)
        assert sorted(restored.iter_super_keys()) == sorted(
            index.iter_super_keys()
        )

    def test_sqlite_migrates_pre_columnar_databases(self, tmp_path):
        import sqlite3

        db = tmp_path / "old.db"
        connection = sqlite3.connect(db)
        # The pre-columnar schema: no layout / format_version columns.
        connection.executescript(
            """
            CREATE TABLE indexes (
                name TEXT PRIMARY KEY,
                hash_function TEXT NOT NULL,
                hash_size INTEGER NOT NULL
            );
            CREATE TABLE postings (
                index_name TEXT NOT NULL, value TEXT NOT NULL,
                table_id INTEGER NOT NULL, column_index INTEGER NOT NULL,
                row_index INTEGER NOT NULL
            );
            CREATE TABLE super_keys (
                index_name TEXT NOT NULL, table_id INTEGER NOT NULL,
                row_index INTEGER NOT NULL, super_key TEXT NOT NULL,
                PRIMARY KEY (index_name, table_id, row_index)
            );
            INSERT INTO indexes VALUES ('old', 'xash', 128);
            INSERT INTO postings VALUES ('old', 'ada', 0, 0, 0);
            INSERT INTO super_keys VALUES ('old', 0, 0, 'ff');
            """
        )
        connection.commit()
        connection.close()
        with SQLiteBackend(db) as backend:
            restored = backend.load_index("old")
            assert restored.layout == "legacy"
            assert restored.posting_list("ada")[0].table_id == 0
            assert restored.super_key(0, 0) == 0xFF
            # New columnar indexes coexist with the migrated metadata.
            fresh = InvertedIndex(layout="columnar")
            fresh.add_posting("lovelace", 1, 0, 0)
            fresh.set_super_key(1, 0, 0xAB)
            backend.save_index("new", fresh)
            reloaded = backend.load_index("new")
            assert reloaded.layout == "columnar"
            assert reloaded.fetch(["lovelace"]) == fresh.fetch(["lovelace"])

    @pytest.mark.parametrize("backend_factory", [InMemoryBackend, SQLiteBackend])
    def test_sharded_columnar_roundtrip(
        self, workload, config, backend_factory, tmp_path
    ):
        sharded = build_sharded_index(
            workload.corpus, num_shards=3, config=config, layout="columnar"
        )
        if backend_factory is SQLiteBackend:
            backend = backend_factory(tmp_path / "sharded.db")
        else:
            backend = backend_factory()
        with backend:
            save_sharded_index(backend, "main", sharded)
            loaded = load_sharded_index(backend, "main")
        assert loaded.layout == "columnar"
        assert loaded.shard_sizes() == sharded.shard_sizes()
        values = sorted(sharded.values())[:150]
        assert loaded.fetch(values) == sharded.fetch(values)

    def test_paged_store_fetch_batch_accounts_pages(self, columnar_index):
        store = PagedPostingStore(columnar_index, buffer_pool_pages=16)
        values = sorted(columnar_index.values())[:40]
        blocks = store.fetch_batch(values)
        assert [item for block in blocks for item in block] == (
            columnar_index.fetch(values)
        )
        assert store.accounting.fetches == 1
        assert store.accounting.items_returned == sum(
            len(block) for block in blocks
        )
        assert store.accounting.pages_read > 0


class TestCachingBlocks:
    def test_caching_index_serves_blocks(self, columnar_index):
        caching = CachingIndex(columnar_index, capacity=128)
        values = sorted(columnar_index.values())[:30]
        cold = caching.fetch_batch(values)
        warm = caching.fetch_batch(values)
        assert cold == columnar_index.fetch_batch(values)
        assert warm == cold
        assert all(isinstance(block, FetchBlock) for block in warm)
        assert caching.counters.misses == 30
        assert caching.counters.hits == 30

    def test_negative_blocks_cached(self, columnar_index):
        caching = CachingIndex(columnar_index, capacity=8)
        assert caching.fetch_batch(["not-in-the-index"]) == []
        assert caching.fetch_batch(["not-in-the-index"]) == []
        assert caching.counters.hits == 1

    def test_service_on_columnar_sharded_index(self, workload, config):
        index = build_sharded_index(
            workload.corpus, num_shards=2, config=config, layout="columnar"
        )
        service = DiscoveryService(workload.corpus, index, config=config)
        batch = service.discover_batch(list(workload.queries))
        for query, served in zip(workload.queries, batch):
            cold = MateDiscovery(
                workload.corpus,
                build_index(workload.corpus, config=config, layout="legacy"),
                config=config,
            ).discover(query)
            assert served.result_tuples() == cold.result_tuples()
