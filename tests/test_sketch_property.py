"""Property-based sketch-tier equivalence (the plan-equivalence CI job).

Three properties over arbitrary corpora and queries, on both index layouts
and under every exercisable sketch kernel (``MATE_SKETCH``):

* planner mode ``"sketch"`` with the exhaustive defaults (``threshold=0``,
  no candidate cap) is *byte-identical* to the exact engine — tables,
  mappings, names, completeness, and every counter except the per-stage
  breakdown (the sketch pipeline adds its ``sketch_prune`` stage);
* the numpy and fallback signature kernels are bit-identical on arbitrary
  value sets (the persisted sketch files depend on it);
* with a real threshold the prune never *invents* results: every reported
  table carries its exact joinability score (the sketch tier only shrinks
  the candidate universe; verification stays exact).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro import MateConfig, MateDiscovery, build_index
from repro.api import PlannerOptions
from repro.core import top_k_by_exact_joinability
from repro.datamodel import QueryTable, Table, TableCorpus
from repro.sketch import (
    SketchOptions,
    minhash_signature,
    permutation_params,
    use_sketch_kernel,
)

from tests.helpers import available_sketch_kernel_modes

#: Small vocabulary so that overlaps actually happen.
VOCABULARY = ["ada", "alan", "grace", "berlin", "paris", "rome", "us", "uk", "de"]

values = st.sampled_from(VOCABULARY)

#: Planner mode "sketch" with the exhaustive defaults: the prune stage runs
#: but passes every table through.
EXHAUSTIVE_SKETCH = PlannerOptions(mode="sketch")


def corpus_and_query(draw) -> tuple[TableCorpus, QueryTable]:
    corpus = TableCorpus(name="prop")
    num_tables = draw(st.integers(min_value=1, max_value=5))
    for table_id in range(num_tables):
        rows = draw(
            st.lists(
                st.lists(values, min_size=3, max_size=3),
                min_size=1,
                max_size=6,
            )
        )
        corpus.add_table(
            Table(table_id=table_id, name=f"t{table_id}", columns=["a", "b", "c"],
                  rows=rows)
        )
    query_rows = draw(
        st.lists(
            st.lists(values, min_size=2, max_size=2), min_size=1, max_size=6
        )
    )
    query = QueryTable(
        table=Table(table_id=900, name="q", columns=["x", "y"], rows=query_rows),
        key_columns=["x", "y"],
    )
    return corpus, query


def build_engine(corpus: TableCorpus, layout: str) -> MateDiscovery:
    config = MateConfig(
        hash_size=128, k=3, expected_unique_values=1000, index_layout=layout
    )
    return MateDiscovery(corpus, build_index(corpus, config=config), config=config)


def assert_identical_modulo_stages(result, oracle) -> None:
    """Byte-identity except wall clock and the per-stage breakdown."""
    assert result.complete == oracle.complete
    assert [
        (t.table_id, t.joinability, t.column_mapping, t.table_name)
        for t in result.tables
    ] == [
        (t.table_id, t.joinability, t.column_mapping, t.table_name)
        for t in oracle.tables
    ]
    mine = result.counters.as_dict()
    theirs = oracle.counters.as_dict()
    for volatile in ("runtime_seconds", "stages"):
        mine.pop(volatile, None)
        theirs.pop(volatile, None)
    assert mine == theirs


@pytest.mark.parametrize("layout", ["columnar", "legacy"])
class TestSketchEquivalenceProperties:
    @given(data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_exhaustive_sketch_is_byte_identical_to_exact(self, layout, data):
        corpus, query = corpus_and_query(data.draw)
        engine = build_engine(corpus, layout)
        exact = engine.discover(query)
        exhaustive = engine.discover(
            query, planner=EXHAUSTIVE_SKETCH, sketch=SketchOptions()
        )
        assert_identical_modulo_stages(exhaustive, exact)

    @given(data=st.data())
    @settings(max_examples=25, deadline=None)
    def test_pruned_sketch_never_invents_results(self, layout, data):
        corpus, query = corpus_and_query(data.draw)
        engine = build_engine(corpus, layout)
        threshold = data.draw(
            st.sampled_from([0.1, 0.3, 0.5, 0.8])
        )
        result = engine.discover(
            query,
            planner=EXHAUSTIVE_SKETCH,
            sketch=SketchOptions(threshold=threshold),
        )
        truth = dict(
            top_k_by_exact_joinability(query, corpus, k=len(corpus))
        )
        for table_id, joinability in result.result_tuples():
            assert truth.get(table_id, 0) == joinability


@pytest.mark.parametrize("kernel", available_sketch_kernel_modes())
class TestSketchKernelProperties:
    @given(
        value_set=st.sets(
            st.text(min_size=0, max_size=12), min_size=0, max_size=40
        ),
        num_perm=st.sampled_from([16, 64, 128]),
        seed=st.integers(min_value=1, max_value=2**31),
    )
    @settings(max_examples=40, deadline=None)
    def test_kernel_signatures_are_bit_identical(
        self, kernel, value_set, num_perm, seed
    ):
        params = permutation_params(num_perm, seed)
        with use_sketch_kernel("fallback"):
            reference = minhash_signature(value_set, *params)
        with use_sketch_kernel(kernel):
            assert minhash_signature(value_set, *params) == reference

    @given(data=st.data())
    @settings(max_examples=20, deadline=None)
    def test_exhaustive_sketch_is_kernel_independent(self, kernel, data):
        corpus, query = corpus_and_query(data.draw)
        engine = build_engine(corpus, "columnar")
        exact = engine.discover(query)
        with use_sketch_kernel(kernel):
            exhaustive = engine.discover(
                query, planner=EXHAUSTIVE_SKETCH, sketch=SketchOptions()
            )
        assert_identical_modulo_stages(exhaustive, exact)
