"""Tests for the Table 1 workload builder."""

import pytest

from repro.core import exact_joinability_score
from repro.datagen import (
    FIGURE4_WORKLOADS,
    TABLE1_SPECS,
    TABLE2_WORKLOADS,
    build_all_table1_workloads,
    build_workload,
)


class TestSpecs:
    def test_all_eight_query_sets_defined(self):
        assert set(TABLE1_SPECS) == {
            "WT_10", "WT_100", "WT_1000", "OD_100", "OD_1000", "OD_10000",
            "Kaggle", "School",
        }

    def test_figure4_subset(self):
        assert set(FIGURE4_WORKLOADS) <= set(TABLE1_SPECS)
        assert len(FIGURE4_WORKLOADS) == 6

    def test_table2_covers_all(self):
        assert set(TABLE2_WORKLOADS) == set(TABLE1_SPECS)

    def test_spec_scaling(self):
        spec = TABLE1_SPECS["WT_100"].scaled(0.5)
        assert spec.num_queries == max(1, TABLE1_SPECS["WT_100"].num_queries // 2)

    def test_paper_numbers_recorded(self):
        for spec in TABLE1_SPECS.values():
            assert spec.paper_cardinality > 0
            assert spec.paper_joinability > 0


class TestBuildWorkload:
    @pytest.fixture(scope="class")
    def workload(self):
        return build_workload("WT_100", seed=5, num_queries=2, corpus_scale=0.15)

    def test_number_of_queries(self, workload):
        assert len(workload.queries) == 2

    def test_cardinality_close_to_spec(self, workload):
        spec = TABLE1_SPECS["WT_100"]
        for query in workload.queries:
            assert len(query.key_tuples()) == spec.cardinality

    def test_key_size_matches_spec(self, workload):
        spec = TABLE1_SPECS["WT_100"]
        for query in workload.queries:
            assert query.key_size == spec.key_size

    def test_planted_tables_exist_in_corpus(self, workload):
        for index in range(len(workload.queries)):
            records = workload.planted_for(index)
            assert records
            for record in records:
                assert record.table_id in workload.corpus

    def test_planted_joinability_matches_ground_truth(self, workload):
        for index, query in enumerate(workload.queries):
            for record in workload.planted_for(index):
                if record.is_distractor:
                    continue
                table = workload.corpus.get_table(record.table_id)
                actual = exact_joinability_score(query, table)
                # The planted count is a guaranteed lower bound; wide planted
                # tables can pick up a couple of extra accidental matches
                # through their unrelated extra columns.
                assert record.planted_joinability <= actual
                assert actual <= record.planted_joinability + 2

    def test_summary_statistics(self, workload):
        assert workload.average_cardinality() > 0
        assert workload.average_planted_joinability() > 0
        assert workload.planted_for(99) == []

    def test_deterministic_given_seed(self):
        first = build_workload("WT_10", seed=3, num_queries=1, corpus_scale=0.1)
        second = build_workload("WT_10", seed=3, num_queries=1, corpus_scale=0.1)
        assert first.queries[0].table.rows == second.queries[0].table.rows
        assert [t.rows for t in first.corpus] == [t.rows for t in second.corpus]

    def test_kaggle_and_school_kinds(self):
        kaggle = build_workload("Kaggle", seed=1, num_queries=2, corpus_scale=0.05)
        assert kaggle.queries[0].key_columns == ["director name", "movie title"]
        assert kaggle.queries[1].key_columns == ["airline name", "country"]
        school = build_workload("School", seed=1, num_queries=1, corpus_scale=0.05)
        assert school.queries[0].key_columns == ["program type", "school name"]

    def test_build_by_spec_object(self):
        workload = build_workload(
            TABLE1_SPECS["OD_100"], seed=2, num_queries=1, corpus_scale=0.1
        )
        assert workload.name == "OD_100"


class TestBuildAll:
    def test_selected_subset(self):
        workloads = build_all_table1_workloads(
            seed=1, num_queries=1, corpus_scale=0.05, names=("WT_10", "OD_100")
        )
        assert set(workloads) == {"WT_10", "OD_100"}
        assert all(len(w.queries) == 1 for w in workloads.values())
