"""Tests for column type inference (repro.lake.type_inference)."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.datamodel import Table
from repro.lake import (
    ColumnType,
    classify_value,
    infer_column_type,
    infer_table_types,
    keyable_columns,
)


class TestClassifyValue:
    def test_integer(self):
        assert classify_value("42") is ColumnType.INTEGER
        assert classify_value("-7") is ColumnType.INTEGER
        assert classify_value("+13") is ColumnType.INTEGER

    def test_float(self):
        assert classify_value("3.14") is ColumnType.FLOAT
        assert classify_value("-0.5") is ColumnType.FLOAT
        assert classify_value("1e9") is ColumnType.FLOAT
        assert classify_value(".25") is ColumnType.FLOAT

    def test_boolean(self):
        assert classify_value("true") is ColumnType.BOOLEAN
        assert classify_value("no") is ColumnType.BOOLEAN

    def test_numeric_zero_one_are_integers_not_booleans(self):
        assert classify_value("0") is ColumnType.INTEGER
        assert classify_value("1") is ColumnType.INTEGER

    def test_date(self):
        assert classify_value("2021-04-25") is ColumnType.DATE
        assert classify_value("25.04.2021") is ColumnType.DATE
        assert classify_value("4/25/21") is ColumnType.DATE

    def test_timestamp(self):
        assert classify_value("2021-04-25 13:45") is ColumnType.TIMESTAMP
        assert classify_value("13:45:10") is ColumnType.TIMESTAMP

    def test_code(self):
        assert classify_value("de-ni-h1") is ColumnType.CODE
        assert classify_value("ab1234") is ColumnType.CODE

    def test_text(self):
        assert classify_value("muhammad") is ColumnType.TEXT
        assert classify_value("bay ridge") is ColumnType.TEXT

    def test_empty(self):
        assert classify_value("") is ColumnType.EMPTY


class TestInferColumnType:
    def test_empty_column(self):
        assert infer_column_type([]) is ColumnType.EMPTY
        assert infer_column_type(["", "", ""]) is ColumnType.EMPTY

    def test_homogeneous_columns(self):
        assert infer_column_type(["1", "2", "3"]) is ColumnType.INTEGER
        assert infer_column_type(["a", "b", "c"]) is ColumnType.TEXT

    def test_dominant_type_wins_at_threshold(self):
        values = ["1"] * 9 + ["x"]
        assert infer_column_type(values) is ColumnType.INTEGER

    def test_integer_float_mix_widens_to_float(self):
        values = ["1", "2.5", "3", "4.5"]
        assert infer_column_type(values) is ColumnType.FLOAT

    def test_date_timestamp_mix_widens_to_timestamp(self):
        values = ["2021-04-25", "2021-04-25 13:45"] * 2
        assert infer_column_type(values) is ColumnType.TIMESTAMP

    def test_text_heavy_mix_is_text(self):
        values = ["alpha", "beta", "42", "delta", "3.5", "epsilon"]
        assert infer_column_type(values) is ColumnType.TEXT

    def test_incompatible_mix_is_mixed(self):
        values = ["2021-04-25", "true", "bay ridge", "2021-04-26", "false",
                  "cambridge"]
        assert infer_column_type(values) is ColumnType.MIXED

    def test_missing_values_are_ignored(self):
        assert infer_column_type(["", "7", "", "9"]) is ColumnType.INTEGER

    @given(st.lists(st.integers(min_value=-10**9, max_value=10**9), min_size=1))
    def test_property_integer_lists_always_integer(self, numbers):
        values = [str(n) for n in numbers]
        assert infer_column_type(values) is ColumnType.INTEGER


class TestTableLevelInference:
    @pytest.fixture()
    def table(self):
        return Table(
            table_id=1,
            name="people",
            columns=["name", "age", "salary", "joined", "active", "constant"],
            rows=[
                ["Muhammad", "34", "60000.5", "2020-01-02", "true", "x"],
                ["Ansel", "41", "50000.0", "2019-06-30", "false", "x"],
                ["Helmut", "58", "300000.25", "2018-11-11", "true", "x"],
            ],
        )

    def test_infer_table_types(self, table):
        reports = {r.column: r for r in infer_table_types(table)}
        assert reports["name"].column_type is ColumnType.TEXT
        assert reports["age"].column_type is ColumnType.INTEGER
        assert reports["salary"].column_type is ColumnType.FLOAT
        assert reports["joined"].column_type is ColumnType.DATE
        assert reports["active"].column_type is ColumnType.BOOLEAN
        assert reports["name"].distinct_values == 3
        assert 0.0 <= reports["name"].type_support <= 1.0

    def test_report_as_dict_round_trip(self, table):
        report = infer_table_types(table)[0]
        payload = report.as_dict()
        assert payload["column"] == "name"
        assert payload["type"] == "text"

    def test_keyable_columns_exclude_floats_and_constants(self, table):
        keyable = keyable_columns(table)
        assert "salary" not in keyable          # float measure column
        assert "constant" not in keyable        # single distinct value
        assert "name" in keyable
        assert "joined" in keyable

    def test_keyable_columns_custom_exclusions(self, table):
        keyable = keyable_columns(table, exclude_types=(ColumnType.TEXT,))
        assert "name" not in keyable
        assert "salary" in keyable
