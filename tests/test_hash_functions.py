"""Tests for the baseline hash functions: Murmur3, MD5, CityHash, SimHash,
bloom filters, LHBF and the single-hash hash table."""

import pytest

from repro.config import MateConfig
from repro.hashing import (
    BloomFilterHashFunction,
    CityHashFunction,
    HashTableHashFunction,
    LessHashingBloomFilter,
    Md5HashFunction,
    MurmurHashFunction,
    SimHashFunction,
    available_hash_functions,
    create_hash_function,
    false_positive_probability,
    murmur3_32,
    murmur3_string,
    murmur3_x64_128,
    optimal_number_of_hashes,
    popcount,
)
from repro.exceptions import HashingError


class TestMurmur3ReferenceVectors:
    """Published MurmurHash3 test vectors."""

    def test_x86_32_vectors(self):
        assert murmur3_32(b"") == 0
        assert murmur3_32(b"", seed=1) == 0x514E28B7
        assert murmur3_32(b"", seed=0xFFFFFFFF) == 0x81F16F39
        assert murmur3_32(b"hello") == 0x248BFA47
        assert murmur3_32(b"hello, world") == 0x149BBB7F
        assert murmur3_32(b"The quick brown fox jumps over the lazy dog", seed=0x9747B28C) == 0x2FA826CD

    def test_x64_128_known_values(self):
        # The two 64-bit halves match the canonical C++ implementation
        # (h1 = 0xcbd8a7b341bd9b02, h2 = 0x5b1e906a48ae1d19 for "hello");
        # this function composes the digest as (h2 << 64) | h1.
        digest = murmur3_x64_128(b"hello", 0)
        assert digest & 0xFFFFFFFFFFFFFFFF == 0xCBD8A7B341BD9B02
        assert digest >> 64 == 0x5B1E906A48AE1D19
        assert murmur3_x64_128(b"", 0) == 0

    def test_string_helper_respects_bits(self):
        for bits in (32, 64, 128, 256, 512):
            assert murmur3_string("dresden", bits=bits) < (1 << bits)

    def test_string_helper_deterministic(self):
        assert murmur3_string("x", seed=3) == murmur3_string("x", seed=3)
        assert murmur3_string("x", seed=3) != murmur3_string("x", seed=4)


class TestBloomHelpers:
    def test_optimal_number_of_hashes_paper_settings(self):
        # V=5 (webtables) at 128 bits -> ~18 hash functions; V=26 (OD) -> ~3.
        assert optimal_number_of_hashes(128, 5) == 18
        assert optimal_number_of_hashes(128, 26) == 3

    def test_optimal_number_of_hashes_is_at_least_one(self):
        assert optimal_number_of_hashes(128, 1_000_000) == 1
        assert optimal_number_of_hashes(128, 0) == 1

    def test_optimal_number_of_hashes_validates(self):
        with pytest.raises(HashingError):
            optimal_number_of_hashes(0, 5)

    def test_false_positive_probability_monotone_in_inserted(self):
        low = false_positive_probability(128, 2, 8)
        high = false_positive_probability(128, 30, 8)
        assert 0.0 <= low < high <= 1.0

    def test_false_positive_probability_edge_cases(self):
        assert false_positive_probability(128, 0, 8) == 0.0
        with pytest.raises(HashingError):
            false_positive_probability(128, 5, 0)


@pytest.fixture(params=["md5", "murmur", "cityhash", "simhash", "hashtable", "bloom", "lhbf"])
def any_hash(request, config):
    return create_hash_function(request.param, config)


class TestCommonHashBehaviour:
    def test_empty_value_is_zero(self, any_hash):
        assert any_hash.hash_value("") == 0

    def test_fits_hash_size(self, any_hash):
        for value in ("muhammad", "us", "2020-01-01", "a" * 50):
            assert 0 <= any_hash.hash_value(value) < (1 << any_hash.hash_size)

    def test_deterministic(self, any_hash):
        assert any_hash.hash_value("hannover") == any_hash.hash_value("hannover")

    def test_different_values_usually_differ(self, any_hash):
        values = ["alpha", "beta", "gamma", "delta", "epsilon"]
        hashes = {any_hash.hash_value(v) for v in values}
        assert len(hashes) >= 4

    def test_hash_values_aggregation(self, any_hash):
        aggregated = any_hash.hash_values(["a", "b", "c"])
        assert aggregated == (
            any_hash.hash_value("a") | any_hash.hash_value("b") | any_hash.hash_value("c")
        )


class TestUniformHashesAreDense:
    """MD5 / Murmur / CityHash / SimHash set ~50% of the bits (Section 7.3)."""

    @pytest.mark.parametrize("name", ["md5", "murmur", "cityhash", "simhash"])
    def test_roughly_half_the_bits_set(self, name, config):
        hash_function = create_hash_function(name, config)
        values = [f"value_{i}" for i in range(50)]
        average_ones = sum(popcount(hash_function.hash_value(v)) for v in values) / len(values)
        assert 0.30 * config.hash_size < average_ones < 0.70 * config.hash_size


class TestSparseHashesAreSparse:
    def test_hashtable_sets_exactly_one_bit(self, config):
        hash_table = HashTableHashFunction(config)
        for value in ("a", "muhammad", "dresden", "2021-05-06"):
            assert popcount(hash_table.hash_value(value)) == 1

    def test_bloom_sets_at_most_h_bits(self, config):
        bloom = BloomFilterHashFunction(config)
        for value in ("a", "muhammad", "dresden"):
            assert 1 <= popcount(bloom.hash_value(value)) <= bloom.num_hashes

    def test_lhbf_uses_two_base_hashes(self, config):
        lhbf = LessHashingBloomFilter(config)
        assert popcount(lhbf.hash_value("photographer")) <= lhbf.num_hashes

    def test_bloom_values_per_row_from_config(self):
        config = MateConfig(bloom_values_per_row=26.0)
        bloom = BloomFilterHashFunction(config)
        assert bloom.values_per_row == 26.0
        assert bloom.num_hashes == optimal_number_of_hashes(128, 26.0)

    def test_bloom_explicit_values_per_row_overrides_config(self):
        config = MateConfig(bloom_values_per_row=26.0)
        bloom = BloomFilterHashFunction(config, values_per_row=5.0)
        assert bloom.num_hashes == optimal_number_of_hashes(128, 5.0)


class TestRegistry:
    def test_all_expected_functions_registered(self):
        names = available_hash_functions()
        for expected in (
            "xash", "bloom", "lhbf", "hashtable", "md5", "murmur", "cityhash",
            "simhash", "xash_length", "xash_rare", "xash_char_loc", "xash_char_len_loc",
        ):
            assert expected in names

    def test_unknown_name_raises(self, config):
        with pytest.raises(HashingError):
            create_hash_function("sha1", config)

    def test_classes_report_names(self, config):
        assert Md5HashFunction(config).name == "md5"
        assert MurmurHashFunction(config).name == "murmur"
        assert CityHashFunction(config).name == "cityhash"
        assert SimHashFunction(config).name == "simhash"
