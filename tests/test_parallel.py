"""Tests for sharded discovery (repro.core.parallel)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import MateConfig
from repro.core import (
    DiscoveryResult,
    MateDiscovery,
    ShardedMateDiscovery,
    merge_discovery_results,
    shard_corpus,
)
from repro.core.results import TableResult
from repro.datagen import build_workload
from repro.datamodel import TableCorpus
from repro.exceptions import DiscoveryError
from repro.index import build_index
from repro.metrics import DiscoveryCounters

CONFIG = MateConfig(expected_unique_values=100_000, k=5)


@pytest.fixture(scope="module")
def workload():
    return build_workload("WT_100", seed=17, num_queries=2, corpus_scale=0.3)


class TestShardCorpus:
    def test_shards_are_disjoint_and_complete(self, workload):
        shards = shard_corpus(workload.corpus, 4)
        all_ids = [tid for shard in shards for tid in shard.table_ids()]
        assert sorted(all_ids) == sorted(workload.corpus.table_ids())
        assert len(set(all_ids)) == len(all_ids)

    def test_shards_are_balanced(self, workload):
        shards = shard_corpus(workload.corpus, 5)
        sizes = [len(shard) for shard in shards]
        assert max(sizes) - min(sizes) <= 1

    def test_more_shards_than_tables(self):
        corpus = TableCorpus(name="tiny")
        corpus.create_table(name="only", columns=["a"], rows=[["x"]])
        shards = shard_corpus(corpus, 3)
        assert [len(s) for s in shards] == [1, 0, 0]

    def test_invalid_shard_count(self, workload):
        with pytest.raises(DiscoveryError):
            shard_corpus(workload.corpus, 0)


class TestMergeDiscoveryResults:
    def make_result(self, entries, system="mate"):
        counters = DiscoveryCounters()
        counters.rows_checked = 10
        counters.runtime_seconds = entries[0][1] / 100 if entries else 0.0
        return DiscoveryResult(
            system=system,
            k=5,
            tables=[
                TableResult(table_id=tid, joinability=j) for tid, j in entries
            ],
            counters=counters,
        )

    def test_merge_takes_global_top_k(self):
        first = self.make_result([(1, 10), (2, 8)])
        second = self.make_result([(3, 9), (4, 1)])
        merged = merge_discovery_results([first, second], k=3)
        assert merged.result_tuples() == [(1, 10), (3, 9), (2, 8)]

    def test_merge_counters_sum_and_runtime_is_max(self):
        first = self.make_result([(1, 10)])
        second = self.make_result([(2, 20)])
        merged = merge_discovery_results([first, second], k=2)
        assert merged.counters.rows_checked == 20
        assert merged.counters.runtime_seconds == pytest.approx(0.2)
        assert merged.counters.extra["total_shard_seconds"] == pytest.approx(0.3)

    def test_merge_requires_positive_k(self):
        with pytest.raises(DiscoveryError):
            merge_discovery_results([], k=0)

    def test_merge_empty_inputs(self):
        merged = merge_discovery_results([], k=3)
        assert merged.tables == []

    @given(
        st.lists(
            st.lists(
                st.tuples(
                    st.integers(min_value=0, max_value=50),
                    st.integers(min_value=1, max_value=100),
                ),
                max_size=5,
            ),
            min_size=1,
            max_size=4,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_property_merged_scores_are_the_best_available(self, shards):
        # Deduplicate table ids within each shard (a shard reports a table once).
        cleaned = []
        for shard in shards:
            seen = {}
            for tid, joinability in shard:
                seen[tid] = max(seen.get(tid, 0), joinability)
            cleaned.append(sorted(seen.items()))
        results = [self.make_result(entries) for entries in cleaned if entries]
        if not results:
            return
        merged = merge_discovery_results(results, k=3)
        best_scores = {}
        for entries in cleaned:
            for tid, joinability in entries:
                best_scores[tid] = max(best_scores.get(tid, 0), joinability)
        expected_top = sorted(best_scores.values(), reverse=True)[:3]
        assert [j for _, j in merged.result_tuples()] == expected_top[: len(merged.tables)]


class TestShardedMateDiscovery:
    def test_sharded_results_match_single_engine(self, workload):
        index = build_index(workload.corpus, config=CONFIG)
        single = MateDiscovery(workload.corpus, index, config=CONFIG)
        sharded = ShardedMateDiscovery(workload.corpus, num_shards=4, config=CONFIG)
        for query in workload.queries:
            expected = single.discover(query, k=5)
            actual = sharded.discover(query, k=5)
            # The top-k joinability scores are guaranteed identical; table
            # identities may only differ among tables tied at the k-th score.
            expected_scores = [j for _, j in expected.result_tuples()]
            actual_scores = [j for _, j in actual.result_tuples()]
            assert actual_scores == expected_scores
            boundary = expected_scores[-1] if expected_scores else 0
            expected_above = {
                tid for tid, j in expected.result_tuples() if j > boundary
            }
            actual_above = {
                tid for tid, j in actual.result_tuples() if j > boundary
            }
            assert actual_above == expected_above

    def test_thread_pool_gives_same_results(self, workload):
        # Same sharding, same shard engines — only the executor differs, so
        # the merged results must be bit-identical.
        serial = ShardedMateDiscovery(workload.corpus, num_shards=3, config=CONFIG)
        threaded = ShardedMateDiscovery(
            workload.corpus, num_shards=3, config=CONFIG, max_workers=3
        )
        query = workload.queries[0]
        assert (
            serial.discover(query, k=5).result_tuples()
            == threaded.discover(query, k=5).result_tuples()
        )

    def test_shard_statistics_and_imbalance(self, workload):
        sharded = ShardedMateDiscovery(workload.corpus, num_shards=4, config=CONFIG)
        assert sharded.work_imbalance() == 0.0
        sharded.discover(workload.queries[0], k=5)
        stats = sharded.last_shard_statistics
        assert len(stats) == 4
        assert all(s.runtime_seconds >= 0 for s in stats)
        assert sharded.work_imbalance() >= 1.0 or sharded.work_imbalance() == 1.0

    def test_single_shard_equals_plain_mate(self, workload):
        # One shard over the whole corpus is literally the single engine, so
        # the full result (including table identities) must match.
        index = build_index(workload.corpus, config=CONFIG)
        single = MateDiscovery(workload.corpus, index, config=CONFIG)
        sharded = ShardedMateDiscovery(workload.corpus, num_shards=1, config=CONFIG)
        query = workload.queries[0]
        assert (
            sharded.discover(query, k=3).result_tuples()
            == single.discover(query, k=3).result_tuples()
        )

    def test_invalid_parameters(self, workload):
        with pytest.raises(DiscoveryError):
            ShardedMateDiscovery(workload.corpus, num_shards=0, config=CONFIG)
        sharded = ShardedMateDiscovery(workload.corpus, num_shards=2, config=CONFIG)
        with pytest.raises(DiscoveryError):
            sharded.discover(workload.queries[0], k=0)

    def test_default_k_comes_from_config(self, workload):
        sharded = ShardedMateDiscovery(workload.corpus, num_shards=2, config=CONFIG)
        result = sharded.discover(workload.queries[0])
        assert result.k == CONFIG.k
