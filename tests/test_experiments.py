"""Tests for the experiment harness (runner + every table/figure module).

These run the real experiment code at deliberately tiny scale; they check the
*plumbing* (row shapes, headers, determinism of workloads, notes) and a few
robust shape properties, not the paper's absolute numbers — the benchmarks in
``benchmarks/`` are the place where the full-shape runs happen.
"""

import pytest

from repro.experiments import (
    DEFAULT_TABLE2_WORKLOADS,
    ExperimentResult,
    ExperimentSettings,
    FIGURE5_BARS,
    HEURISTIC_ORDER,
    WorkloadContext,
    aggregate_results,
    build_context,
    format_ratio,
    format_table,
    run_figure4,
    run_figure5,
    run_figure6,
    run_index_generation,
    run_init_column,
    run_mate,
    run_system,
    run_table1,
    run_table2,
    run_table3,
    run_topk,
)

#: One tiny settings object shared by every experiment test.
SETTINGS = ExperimentSettings(seed=5, num_queries=1, corpus_scale=0.1, k=3)


@pytest.fixture(scope="module")
def wt_context() -> WorkloadContext:
    return build_context("WT_100", SETTINGS)


class TestRunnerPlumbing:
    def test_settings_config(self):
        config = SETTINGS.config(256)
        assert config.hash_size == 256
        assert config.k == 3

    def test_context_caches_indexes(self, wt_context):
        first = wt_context.index("xash", 128)
        second = wt_context.index("xash", 128)
        assert first is second
        assert wt_context.index("bloom", 128) is not first

    def test_context_config_sets_bloom_v(self, wt_context):
        config = wt_context.config(128)
        assert config.bloom_values_per_row == pytest.approx(
            wt_context.average_columns()
        )

    def test_context_josie_index_cached(self, wt_context):
        assert wt_context.josie_index() is wt_context.josie_index()

    def test_run_mate_aggregates(self, wt_context):
        run = run_mate(wt_context, "xash", 128)
        assert run.workload == "WT_100"
        assert run.system == "mate[xash/128]"
        assert len(run.results) == len(wt_context.queries)
        assert run.total_runtime >= run.mean_runtime
        assert 0.0 <= run.precision_mean <= 1.0
        assert run.false_positive_rows == run.counters.false_positive_rows

    def test_run_system_with_factory(self, wt_context):
        from repro.baselines import ScrDiscovery

        def factory(ctx, size):
            return ScrDiscovery(ctx.workload.corpus, ctx.index("xash", size),
                                config=ctx.config(size))

        run = run_system(wt_context, factory, "scr", 128)
        assert run.system == "scr"

    def test_aggregate_results_empty(self):
        run = aggregate_results("x", "w", [])
        assert run.mean_runtime == 0.0
        assert run.precision_mean == 0.0

    def test_experiment_result_rendering(self):
        result = ExperimentResult(
            name="demo", headers=["a", "b"], rows=[[1, 2.5]], notes=["hello"]
        )
        text = result.to_text()
        assert "demo" in text and "hello" in text
        assert result.row_dicts() == [{"a": 1, "b": 2.5}]

    def test_formatting_helpers(self):
        table = format_table(["x"], [[1]], title="t")
        assert "t" in table
        assert format_ratio(10, 2) == "5.0x"
        assert format_ratio(10, 0) == "n/a"


class TestTable1:
    def test_rows_cover_requested_workloads(self):
        result = run_table1(SETTINGS, workload_names=("WT_10", "OD_100"))
        assert len(result.rows) == 2
        names = [row[0] for row in result.rows]
        assert names == ["WT_10", "OD_100"]
        assert len(result.headers) == len(result.rows[0])

    def test_built_cardinality_positive(self):
        result = run_table1(SETTINGS, workload_names=("WT_10",))
        row = result.row_dicts()[0]
        assert row["cardinality (built)"] > 0
        assert row["corpus tables"] > 0


class TestIndexGeneration:
    def test_report_shape(self):
        result = run_index_generation(SETTINGS, workload_names=("WT_10",))
        row = result.row_dicts()[0]
        assert row["corpus"] == "WT_10"
        assert row["super keys / row (B)"] <= row["super keys / cell (B)"]
        assert row["mate build (s)"] >= 0


class TestFigure4:
    def test_all_systems_reported(self):
        result = run_figure4(SETTINGS, workload_names=("WT_10",))
        row = result.row_dicts()[0]
        for system in ("mate", "scr", "mcr", "scr_josie", "mcr_josie"):
            assert f"{system} runtime (s)" in row
            assert row[f"{system} runtime (s)"] >= 0
        assert "speedup vs scr" in row


class TestTable2:
    def test_columns_per_hash_and_size(self):
        result = run_table2(
            SETTINGS,
            workload_names=("WT_10",),
            hash_functions=("bloom", "xash"),
            hash_sizes=(128,),
        )
        assert result.headers == ["query set", "scr (s)", "bloom/128 (s)", "xash/128 (s)"]
        assert len(result.rows) == 1

    def test_default_workloads_constant(self):
        assert len(DEFAULT_TABLE2_WORKLOADS) == 8


class TestTable3:
    def test_average_row_appended(self):
        result = run_table3(
            SETTINGS,
            workload_names=("WT_10",),
            hash_functions=("bloom", "xash"),
            hash_sizes=(128,),
        )
        assert result.rows[-1][0] == "Average"
        assert len(result.rows) == 2
        # precision cells are formatted "mean±std"
        assert "±" in result.rows[0][1]


class TestFigure5:
    def test_all_bars_present(self):
        result = run_figure5(SETTINGS, workload_name="WT_10")
        labels = [row[0] for row in result.rows]
        assert labels == [bar[0] for bar in FIGURE5_BARS]

    def test_ideal_system_has_no_false_positives(self):
        result = run_figure5(SETTINGS, workload_name="WT_10")
        ideal = result.row_dicts()[-1]
        assert ideal["variant"] == "Ideal system"
        assert ideal["FP rows"] == 0
        assert ideal["precision"] == pytest.approx(1.0)

    def test_unfiltered_baseline_not_better_than_full_xash(self):
        result = run_figure5(SETTINGS, workload_name="WT_10")
        rows = {row[0]: row[1] for row in result.rows}
        assert rows["SCR (no filter)"] <= rows["Xash (128 bit)"] + 1e-9


class TestFigure6:
    def test_key_sizes_reported(self):
        result = run_figure6(SETTINGS, key_sizes=(2, 3), systems=("xash", "scr"))
        assert [row[0] for row in result.rows] == [2, 3]
        assert "xash precision" in result.headers
        for row in result.row_dicts():
            assert 0.0 <= row["xash precision"] <= 1.0


class TestTopK:
    def test_rows_per_k(self):
        result = run_topk(
            SETTINGS, workload_name="WT_10", k_values=(2, 4), hash_functions=("xash",)
        )
        assert [row[0] for row in result.rows] == [2, 4]
        assert all(0.0 <= row[1] <= 1.0 for row in result.rows)


class TestInitColumn:
    def test_heuristic_order_and_bounds(self):
        result = run_init_column(SETTINGS, base_cardinality=60)
        values = {row[0]: row[1] for row in result.rows}
        assert set(values) == set(HEURISTIC_ORDER)
        assert values["best_case"] <= values["cardinality"] <= values["worst_case"]
        assert values["cardinality"] <= values["column_order"]
