"""Tests for data-lake ingestion (repro.lake.data_lake, repro.lake.webtable_json)."""

from __future__ import annotations

import json

import pytest

from repro.config import MateConfig
from repro.datamodel import QueryTable, Table, TableCorpus
from repro.exceptions import CorpusError, StorageError
from repro.lake import (
    DataLake,
    load_webtable_corpus,
    parse_webtable_record,
    record_to_table,
    save_webtable_corpus,
    table_to_record,
)
from repro.storage import table_to_csv


# ----------------------------------------------------------------------
# DWTC-style JSON format
# ----------------------------------------------------------------------
class TestWebTableJson:
    def make_payload(self):
        return {
            "relation": [
                ["f. name", "muhammad", "ansel"],
                ["l. name", "lee", "adams"],
                ["country", "us", "uk"],
            ],
            "pageTitle": "People",
            "hasHeader": True,
        }

    def test_parse_record_column_major_to_rows(self):
        record = parse_webtable_record(self.make_payload())
        assert record.columns == ["f. name", "l. name", "country"]
        assert record.rows == [["muhammad", "lee", "us"], ["ansel", "adams", "uk"]]
        assert record.page_title == "People"

    def test_parse_record_without_header(self):
        payload = {"relation": [["a", "b"], ["c", "d"]], "hasHeader": False}
        record = parse_webtable_record(payload)
        assert record.columns == ["col_0", "col_1"]
        assert record.rows == [["a", "c"], ["b", "d"]]

    def test_parse_record_rejects_missing_relation(self):
        with pytest.raises(StorageError):
            parse_webtable_record({"pageTitle": "x"})

    def test_parse_record_rejects_ragged_columns(self):
        with pytest.raises(StorageError):
            parse_webtable_record({"relation": [["a", "b"], ["c"]]})

    def test_record_to_table_disambiguates_duplicate_headers(self):
        payload = {
            "relation": [["name", "x"], ["name", "y"], ["", "z"]],
            "hasHeader": True,
        }
        table = record_to_table(parse_webtable_record(payload), table_id=4)
        assert len(set(table.columns)) == 3
        assert table.columns[0] == "name"
        assert table.columns[1] == "name_2"

    def test_table_record_round_trip(self):
        table = Table(
            table_id=7,
            name="people",
            columns=["first", "last"],
            rows=[["muhammad", "lee"], ["ansel", "adams"]],
        )
        record = parse_webtable_record(table_to_record(table))
        rebuilt = record_to_table(record, table_id=7, name="people")
        assert rebuilt.columns == table.columns
        assert [list(r) for r in rebuilt.rows] == [list(r) for r in table.rows]

    def test_load_and_save_corpus_round_trip(self, tmp_path):
        corpus = TableCorpus(name="lake")
        corpus.create_table(
            name="t0", columns=["a", "b"], rows=[["1", "x"], ["2", "y"]]
        )
        corpus.create_table(name="t1", columns=["c"], rows=[["z"]])
        path = save_webtable_corpus(corpus, tmp_path / "dump.jsonl")
        loaded = load_webtable_corpus(path, name="reloaded")
        assert len(loaded) == 2
        assert loaded.get_table(0).columns == ["a", "b"]

    def test_load_corpus_filters_and_caps(self, tmp_path):
        path = tmp_path / "tables.jsonl"
        lines = [
            json.dumps({"relation": [["only header"]], "hasHeader": True}),
            json.dumps({"relation": [["a", "1"], ["b", "2"]], "hasHeader": True}),
            json.dumps({"relation": [["c", "3"], ["d", "4"]], "hasHeader": True}),
        ]
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        loaded = load_webtable_corpus(path, min_rows=1, max_tables=1)
        assert len(loaded) == 1

    def test_load_corpus_invalid_json_reports_line(self, tmp_path):
        path = tmp_path / "broken.jsonl"
        path.write_text('{"relation": [["a", "1"]]}\nnot json\n', encoding="utf-8")
        with pytest.raises(StorageError, match="broken.jsonl:2"):
            list(load_webtable_corpus(path))

    def test_load_corpus_missing_file(self, tmp_path):
        with pytest.raises(StorageError):
            load_webtable_corpus(tmp_path / "absent.jsonl")


# ----------------------------------------------------------------------
# DataLake facade
# ----------------------------------------------------------------------
@pytest.fixture()
def lake_directory(tmp_path):
    """A directory with two CSV tables and one JSON-lines file (two tables)."""
    people = Table(
        table_id=0,
        name="people",
        columns=["first_name", "last_name", "country", "occupation"],
        rows=[
            ["muhammad", "lee", "us", "dancer"],
            ["ansel", "adams", "uk", "photographer"],
            ["helmut", "newton", "germany", "photographer"],
            ["gretchen", "lee", "germany", "artist"],
        ],
    )
    salaries = Table(
        table_id=1,
        name="salaries",
        columns=["first_name", "last_name", "country", "salary"],
        rows=[
            ["muhammad", "lee", "us", "60000"],
            ["ansel", "adams", "uk", "50000"],
            ["ansel", "adams", "us", "400000"],
        ],
    )
    table_to_csv(people, tmp_path / "people.csv")
    table_to_csv(salaries, tmp_path / "salaries.csv")
    web_tables = TableCorpus(name="web")
    web_tables.create_table(
        name="airports",
        columns=["airline", "country", "airport"],
        rows=[["luftair", "germany", "hannover"], ["skyjet", "us", "boston"]],
    )
    web_tables.create_table(
        name="events",
        columns=["city", "event"],
        rows=[["berlin", "marathon"], ["hannover", "festival"]],
    )
    save_webtable_corpus(web_tables, tmp_path / "webtables.jsonl")
    return tmp_path


class TestDataLake:
    def test_from_directory_ingests_csv_and_json(self, lake_directory):
        lake = DataLake.from_directory(lake_directory)
        assert len(lake) == 4
        assert "people" in lake.sources
        assert "salaries" in lake.sources
        people = lake.table_by_source("people")
        assert people.num_rows == 4

    def test_from_directory_rejects_files(self, tmp_path):
        with pytest.raises(StorageError):
            DataLake.from_directory(tmp_path / "missing")

    def test_max_tables_cap(self, lake_directory):
        lake = DataLake.from_directory(lake_directory, max_tables=2)
        assert len(lake) == 2

    def test_unknown_source_raises(self, lake_directory):
        lake = DataLake.from_directory(lake_directory)
        with pytest.raises(CorpusError):
            lake.table_by_source("nope")

    def test_effective_config_derived_from_profile(self, lake_directory):
        lake = DataLake.from_directory(lake_directory)
        config = lake.effective_config()
        assert config.expected_unique_values == lake.profile().num_unique_values

    def test_explicit_config_is_respected(self, lake_directory):
        config = MateConfig(hash_size=256, expected_unique_values=500)
        lake = DataLake.from_directory(lake_directory, config=config)
        assert lake.effective_config() is config
        assert lake.index().hash_size == 256

    def test_index_is_cached_and_rebuildable(self, lake_directory):
        lake = DataLake.from_directory(lake_directory)
        first = lake.index()
        assert lake.index() is first
        assert lake.index(rebuild=True) is not first

    def test_add_table_invalidates_cache(self, lake_directory):
        lake = DataLake.from_directory(lake_directory)
        index = lake.index()
        lake.add_table(
            Table(table_id=999, name="extra", columns=["a"], rows=[["x"]]),
            source="extra",
        )
        assert lake.table_by_source("extra").name == "extra"
        assert lake.index() is not index

    def test_discover_from_query_table(self, lake_directory):
        lake = DataLake.from_directory(lake_directory)
        query = QueryTable(
            table=lake.table_by_source("people"),
            key_columns=["first_name", "last_name", "country"],
        )
        result = lake.discover(query, k=3)
        salaries_id = lake.sources["salaries"]
        assert result.joinability_of(salaries_id) == 2

    def test_discover_from_csv_path_with_explicit_key(self, lake_directory, tmp_path):
        lake = DataLake.from_directory(lake_directory)
        query_csv = tmp_path / "query.csv"
        query_csv.write_text(
            "first_name,last_name,country\nmuhammad,lee,us\nansel,adams,uk\n",
            encoding="utf-8",
        )
        result = lake.discover(
            query_csv, key=["first_name", "last_name", "country"], k=2
        )
        assert result.tables
        assert result.tables[0].joinability >= 1

    def test_query_from_csv_defaults_to_keyable_columns(self, lake_directory, tmp_path):
        lake = DataLake.from_directory(lake_directory)
        query_csv = tmp_path / "query.csv"
        query_csv.write_text(
            "name,amount\nmuhammad,1.5\nansel,2.5\n", encoding="utf-8"
        )
        query = lake.query_from_csv(query_csv)
        assert query.key_columns == ["name"]  # float column excluded

    def test_from_tables_constructor(self):
        tables = [
            Table(table_id=0, name="a", columns=["x"], rows=[["1"]]),
            Table(table_id=1, name="b", columns=["y"], rows=[["2"]]),
        ]
        lake = DataLake.from_tables(tables, name="inline")
        assert len(lake) == 2
        assert lake.corpus.name == "inline"
