"""Property-based tests for joinability, the top-k heap, and end-to-end
agreement between MATE and the brute-force oracle on random corpora."""

import random

from hypothesis import given, settings, strategies as st

from repro import MateConfig, MateDiscovery, build_index
from repro.core import (
    TopKHeap,
    exact_joinability,
    joinability_from_matches,
    row_contains_key,
    row_mappings,
    top_k_by_exact_joinability,
)
from repro.datamodel import QueryTable, Table, TableCorpus

#: Small vocabulary so that overlaps actually happen.
VOCABULARY = ["ada", "alan", "grace", "berlin", "paris", "rome", "us", "uk", "de"]

values = st.sampled_from(VOCABULARY)


def small_tables(draw, num_tables: int, num_columns: int) -> list[Table]:
    tables = []
    for table_id in range(num_tables):
        rows = draw(
            st.lists(
                st.lists(values, min_size=num_columns, max_size=num_columns),
                min_size=1,
                max_size=6,
            )
        )
        tables.append(
            Table(
                table_id=table_id,
                name=f"t{table_id}",
                columns=[f"c{i}" for i in range(num_columns)],
                rows=rows,
            )
        )
    return tables


class TestJoinabilityProperties:
    @given(
        row=st.lists(values, min_size=1, max_size=5),
        key=st.lists(values, min_size=1, max_size=3),
    )
    @settings(max_examples=200, deadline=None)
    def test_row_mappings_are_valid_assignments(self, row, key):
        for mapping in row_mappings(row, tuple(key)):
            assert len(set(mapping)) == len(mapping)
            for position, column in enumerate(mapping):
                assert row[column] == key[position]

    @given(
        row=st.lists(values, min_size=1, max_size=5),
        key=st.lists(values, min_size=1, max_size=3),
    )
    @settings(max_examples=200, deadline=None)
    def test_contains_iff_mappings_exist(self, row, key):
        assert row_contains_key(row, tuple(key)) == bool(row_mappings(row, tuple(key)))

    @given(data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_exact_joinability_bounds(self, data):
        query_rows = data.draw(
            st.lists(st.lists(values, min_size=2, max_size=2), min_size=1, max_size=6)
        )
        query_table = Table(
            table_id=100, name="q", columns=["a", "b"], rows=query_rows
        )
        query = QueryTable(table=query_table, key_columns=["a", "b"])
        candidate = small_tables(data.draw, 1, 3)[0]
        score, mapping = exact_joinability(query, candidate)
        assert 0 <= score <= len(query.key_tuples())
        if score > 0:
            assert mapping is not None
            projected = {
                tuple(row[c] for c in mapping) for row in candidate.rows
            }
            assert score == len(projected & query.key_tuples())

    @given(data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_matches_based_score_never_exceeds_exact(self, data):
        query_rows = data.draw(
            st.lists(st.lists(values, min_size=2, max_size=2), min_size=1, max_size=5)
        )
        query_table = Table(table_id=100, name="q", columns=["a", "b"], rows=query_rows)
        query = QueryTable(table=query_table, key_columns=["a", "b"])
        candidate = small_tables(data.draw, 1, 3)[0]
        matches = [
            (tuple(row), key)
            for row in candidate.rows
            for key in query.key_tuples()
            if row_contains_key(row, key)
        ]
        matches_score, _ = joinability_from_matches(matches)
        exact_score, _ = exact_joinability(query, candidate)
        assert matches_score == exact_score


class TestTopKProperties:
    @given(
        entries=st.lists(
            st.tuples(st.integers(0, 50), st.integers(0, 30)), max_size=40
        ),
        k=st.integers(1, 8),
    )
    @settings(max_examples=150, deadline=None)
    def test_heap_matches_sorted_reference(self, entries, k):
        heap = TopKHeap(k)
        best_per_table: dict[int, int] = {}
        for table_id, joinability in entries:
            heap.update(table_id, joinability)
            if joinability > 0:
                best_per_table[table_id] = max(
                    best_per_table.get(table_id, 0), joinability
                )
        # Note: the heap treats repeated updates for the same table as
        # independent offers, so compare only the joinability values.
        reference = sorted(
            (j for j in (joinability for _, joinability in entries) if j > 0),
            reverse=True,
        )
        heap_scores = [entry.joinability for entry in heap.results()]
        assert heap_scores == sorted(heap_scores, reverse=True)
        assert len(heap_scores) <= k
        if reference:
            assert heap_scores[0] == reference[0]


class TestDiscoveryAgainstBruteForce:
    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_mate_equals_brute_force_on_random_corpora(self, seed):
        rng = random.Random(seed)
        corpus = TableCorpus(name=f"random-{seed}")
        for table_id in range(6):
            num_columns = rng.randint(2, 4)
            rows = [
                [rng.choice(VOCABULARY) for _ in range(num_columns)]
                for _ in range(rng.randint(1, 8))
            ]
            corpus.add_table(
                Table(
                    table_id=table_id,
                    name=f"t{table_id}",
                    columns=[f"c{i}" for i in range(num_columns)],
                    rows=rows,
                )
            )
        query_rows = [
            [rng.choice(VOCABULARY), rng.choice(VOCABULARY)] for _ in range(4)
        ]
        query = QueryTable(
            table=Table(table_id=99, name="q", columns=["a", "b"], rows=query_rows),
            key_columns=["a", "b"],
        )
        config = MateConfig(hash_size=128, k=3, expected_unique_values=700_000_000)
        index = build_index(corpus, config=config)
        result = MateDiscovery(corpus, index, config=config).discover(query, k=3)
        truth = top_k_by_exact_joinability(query, corpus, k=3)
        assert [j for _, j in result.result_tuples()] == [j for _, j in truth]
