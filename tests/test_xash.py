"""Tests for repro.hashing.xash: bit layout, features, and rotation."""

import pytest

from repro.config import MateConfig
from repro.exceptions import HashingError
from repro.hashing import XashHashFunction, normalize_character, popcount
from repro.hashing.base import create_hash_function


@pytest.fixture()
def xash(config) -> XashHashFunction:
    return XashHashFunction(config)


class TestNormalizeCharacter:
    def test_alphabet_characters_pass_through(self, config):
        assert normalize_character("a", config.alphabet) == "a"
        assert normalize_character("Z", config.alphabet) == "z"
        assert normalize_character("7", config.alphabet) == "7"
        assert normalize_character(" ", config.alphabet) == " "

    def test_out_of_alphabet_characters_map_deterministically(self, config):
        first = normalize_character("é", config.alphabet)
        second = normalize_character("é", config.alphabet)
        assert first == second
        assert first in config.alphabet

    def test_rejects_multi_character_input(self, config):
        with pytest.raises(HashingError):
            normalize_character("ab", config.alphabet)


class TestBitBudget:
    def test_empty_value_hashes_to_zero(self, xash):
        assert xash.hash_value("") == 0

    def test_hash_fits_hash_size(self, xash):
        for value in ("muhammad", "us", "1999-12-31", "a b c", "x" * 100):
            assert xash.hash_value(value) < (1 << xash.hash_size)

    def test_at_most_alpha_bits_set(self, xash, config):
        for value in ("muhammad", "lee", "us", "photographer", "germany"):
            assert popcount(xash.hash_value(value)) <= config.alpha

    def test_short_values_use_fewer_bits(self, xash):
        # "us" has only 2 distinct characters -> 2 char bits + 1 length bit.
        assert popcount(xash.hash_value("us")) == 3

    def test_exactly_one_length_bit(self, xash):
        for value in ("muhammad", "lee", "us", "germany"):
            length_bits = xash.length_segment(xash.hash_value(value))
            assert popcount(length_bits) == 1

    def test_length_bit_position(self, xash, config):
        hashed = xash.hash_value("muhammad")  # length 8
        length_bits = xash.length_segment(hashed)
        assert length_bits == 1 << (8 % config.length_segment_bits)

    def test_deterministic(self, xash):
        assert xash.hash_value("dresden") == xash.hash_value("dresden")


class TestFeatureSensitivity:
    def test_different_lengths_give_different_length_bits(self, xash):
        # Section 5.3.4: "Boxer" vs "Birder" share the rare character "b" but
        # differ in length, so their hashes must differ.
        assert xash.hash_value("boxer") != xash.hash_value("birder")
        assert xash.length_segment(xash.hash_value("boxer")) != xash.length_segment(
            xash.hash_value("birder")
        )

    def test_character_position_matters(self, xash):
        # Same characters, same length, different positions.
        assert xash.hash_value("abcdef") != xash.hash_value("fedcba")

    def test_different_characters_differ(self, xash):
        assert xash.hash_value("muhammad") != xash.hash_value("gretchen")

    def test_case_and_whitespace_of_alphabet_only(self, xash):
        # Values are already normalised by the data model; XASH itself only
        # lowercases characters, so differently-cased input maps identically.
        assert xash.hash_value("Lee".lower()) == xash.hash_value("lee")


class TestSelectCharacters:
    def test_selects_rarest_characters(self, xash, config):
        characters = xash.normalized_characters("muhammad")
        selected = xash.select_characters(characters)
        assert len(selected) <= config.characters_per_value
        # 'h' and 'd' are much rarer than 'a' and 'm' in English; both must be
        # among the selected characters.
        assert "h" in selected
        assert "d" in selected

    def test_budget_respected_for_long_values(self, xash, config):
        characters = xash.normalized_characters("abcdefghijklmnopqrstuvwxyz")
        assert len(xash.select_characters(characters)) == config.characters_per_value

    def test_empty_value(self, xash):
        assert xash.select_characters([]) == []


class TestLocationEncoding:
    def test_location_bit_range(self, xash, config):
        characters = xash.normalized_characters("muhammad")
        for character in set(characters):
            offset = xash.character_location_bit(character, characters)
            assert 0 <= offset < config.beta

    def test_first_and_last_character_locations_differ(self, xash):
        characters = xash.normalized_characters("muhammad")
        # 'u' occurs early (position 2 of 8), 'd' at the end (position 8).
        assert xash.character_location_bit("u", characters) < xash.character_location_bit(
            "d", characters
        )

    def test_missing_character_raises(self, xash):
        with pytest.raises(HashingError):
            xash.character_location_bit("z", list("abc"))


class TestRotation:
    def test_rotation_changes_character_region_not_length(self, config):
        from dataclasses import replace

        with_rotation = XashHashFunction(config)
        without_rotation = XashHashFunction(replace(config, rotation=False))
        value = "photographer"
        rotated = with_rotation.hash_value(value)
        plain = without_rotation.hash_value(value)
        assert with_rotation.length_segment(rotated) == without_rotation.length_segment(
            plain
        )
        assert with_rotation.character_region(rotated) != without_rotation.character_region(
            plain
        )

    def test_rotation_preserves_bit_count(self, config):
        from dataclasses import replace

        with_rotation = XashHashFunction(config)
        without_rotation = XashHashFunction(replace(config, rotation=False))
        for value in ("muhammad", "dresden", "germany"):
            assert popcount(with_rotation.hash_value(value)) == popcount(
                without_rotation.hash_value(value)
            )


class TestAggregation:
    def test_hash_values_is_or_of_hashes(self, xash):
        values = ["muhammad", "lee", "us"]
        aggregated = xash.hash_values(values)
        expected = 0
        for value in values:
            expected |= xash.hash_value(value)
        assert aggregated == expected

    def test_registry_returns_xash(self, config):
        assert isinstance(create_hash_function("xash", config), XashHashFunction)
        assert isinstance(create_hash_function("XASH", config), XashHashFunction)


class TestHashSizes:
    @pytest.mark.parametrize("hash_size", [64, 128, 256, 512])
    def test_layout_consistency(self, hash_size):
        config = MateConfig(hash_size=hash_size, expected_unique_values=700_000_000)
        xash = XashHashFunction(config)
        hashed = xash.hash_value("hannover")
        assert hashed < (1 << hash_size)
        assert popcount(hashed) <= config.alpha
