"""Tests for the analytical collision / FP models (Section 6.4)."""

import pytest

from repro.config import MateConfig
from repro.exceptions import HashingError
from repro.hashing.analysis import (
    break_even_row_width,
    compare_filters_theoretically,
    expected_false_positive_rate,
    expected_ones_per_value,
    lhbf_pairwise_collision_probability,
    super_key_saturation,
    theoretical_summary,
    xash_pairwise_collision_probability,
)


@pytest.fixture()
def paper_config() -> MateConfig:
    return MateConfig(hash_size=128, expected_unique_values=700_000_000)


class TestPairwiseCollisions:
    def test_lhbf_formula(self):
        assert lhbf_pairwise_collision_probability(128) == pytest.approx(
            2 / (128 * 127)
        )
        with pytest.raises(HashingError):
            lhbf_pairwise_collision_probability(1)

    def test_xash_collision_is_tiny_and_smaller_than_lhbf(self, paper_config):
        xash = xash_pairwise_collision_probability(paper_config)
        lhbf = lhbf_pairwise_collision_probability(paper_config.hash_size)
        assert 0 < xash < lhbf

    def test_length_feature_reduces_collisions(self, paper_config):
        with_length = xash_pairwise_collision_probability(paper_config, include_length=True)
        without_length = xash_pairwise_collision_probability(paper_config, include_length=False)
        assert with_length < without_length

    def test_larger_hash_reduces_masking_fp_rate(self):
        # Pairwise collisions are governed by Eq. 5's alpha (which *shrinks*
        # for larger hashes), but the dominant effect in practice is the
        # OR-aggregation masking, which a larger hash space always reduces.
        small = expected_false_positive_rate(6, 10, 2, 128)
        large = expected_false_positive_rate(6, 10, 2, 512)
        assert large < small


class TestExpectedOnes:
    def test_xash_uses_alpha_bits(self, paper_config):
        assert expected_ones_per_value("xash", paper_config) == paper_config.alpha

    def test_uniform_hash_uses_half_the_bits(self, paper_config):
        assert expected_ones_per_value("md5", paper_config) == paper_config.hash_size / 2

    def test_hashtable_uses_one_bit(self, paper_config):
        assert expected_ones_per_value("hashtable", paper_config) == 1.0

    def test_bloom_uses_optimal_h(self, paper_config):
        from repro.hashing import optimal_number_of_hashes

        assert expected_ones_per_value("bloom", paper_config) == optimal_number_of_hashes(
            paper_config.hash_size, 5.0
        )


class TestSaturationModel:
    def test_saturation_bounds_and_monotonicity(self):
        previous = 0.0
        for width in (1, 5, 10, 30, 60):
            saturation = super_key_saturation(6, width, 128)
            assert 0.0 <= saturation <= 1.0
            assert saturation >= previous
            previous = saturation

    def test_saturation_validations(self):
        with pytest.raises(HashingError):
            super_key_saturation(6, 5, 0)
        with pytest.raises(HashingError):
            super_key_saturation(-1, 5, 128)

    def test_fp_rate_grows_with_row_width(self):
        narrow = expected_false_positive_rate(6, 5, 2, 128)
        wide = expected_false_positive_rate(6, 40, 2, 128)
        assert narrow < wide

    def test_fp_rate_falls_with_key_size(self):
        two = expected_false_positive_rate(6, 20, 2, 128)
        five = expected_false_positive_rate(6, 20, 5, 128)
        assert five < two


class TestComparisons:
    def test_uniform_hashes_saturate_first(self, paper_config):
        rates = compare_filters_theoretically(paper_config, values_per_row=6, key_size=2)
        assert set(rates) == {"xash", "bloom", "lhbf", "hashtable", "md5"}
        assert rates["md5"] > rates["xash"]

    def test_xash_beats_bloom_on_wide_rows(self, paper_config):
        wide = compare_filters_theoretically(paper_config, values_per_row=40, key_size=2)
        assert wide["xash"] <= wide["bloom"]

    def test_break_even_row_width_is_finite(self, paper_config):
        assert 1 <= break_even_row_width(paper_config) <= 201

    def test_theoretical_summary_fields(self, paper_config):
        summary = theoretical_summary(paper_config)
        assert summary["alpha"] == 6.0
        assert summary["beta"] == 3.0
        assert summary["xash_collision_probability"] < summary["lhbf_collision_probability"]
