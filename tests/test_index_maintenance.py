"""Tests for repro.index.maintenance: Section 5.4 edit operations."""

import pytest

from repro import build_index
from repro.datamodel import Table, TableCorpus
from repro.exceptions import DataModelError
from repro.hashing import SuperKeyGenerator
from repro.index import IndexMaintainer


@pytest.fixture()
def setup(config):
    corpus = TableCorpus(name="maintenance")
    corpus.add_table(
        Table(
            table_id=0,
            name="people",
            columns=["first", "last"],
            rows=[["ada", "lovelace"], ["alan", "turing"]],
        )
    )
    index = build_index(corpus, config=config)
    generator = SuperKeyGenerator.from_name("xash", config)
    maintainer = IndexMaintainer(corpus, index, generator)
    return corpus, index, generator, maintainer


class TestInserts:
    def test_insert_table(self, setup):
        corpus, index, generator, maintainer = setup
        maintainer.insert_table(
            Table(table_id=5, name="new", columns=["city"], rows=[["berlin"]])
        )
        assert 5 in corpus
        assert index.posting_list_length("berlin") == 1
        assert index.super_key(5, 0) == generator.value_hash("berlin")
        assert maintainer.verify_consistency() == []

    def test_insert_row(self, setup):
        corpus, index, generator, maintainer = setup
        row_index = maintainer.insert_row(0, ["grace", "hopper"])
        assert row_index == 2
        assert corpus.get_row(0, 2) == ("grace", "hopper")
        assert index.posting_list_length("grace") == 1
        assert index.super_key(0, 2) == generator.row_super_key(("grace", "hopper"))
        assert maintainer.verify_consistency() == []

    def test_insert_column_ors_into_super_keys(self, setup):
        corpus, index, generator, maintainer = setup
        before = index.super_key(0, 0)
        maintainer.insert_column(0, "country", ["uk", "uk"])
        after = index.super_key(0, 0)
        assert after == before | generator.value_hash("uk")
        assert corpus.get_table(0).columns == ["first", "last", "country"]
        assert index.posting_list_length("uk") == 2
        assert maintainer.verify_consistency() == []

    def test_insert_column_validations(self, setup):
        _, _, _, maintainer = setup
        with pytest.raises(DataModelError):
            maintainer.insert_column(0, "first", ["x", "y"])
        with pytest.raises(DataModelError):
            maintainer.insert_column(0, "extra", ["only-one"])


class TestUpdates:
    def test_update_cell_rehashes_row(self, setup):
        corpus, index, generator, maintainer = setup
        maintainer.update_cell(0, 0, 1, "byron")
        assert corpus.get_cell(0, 0, 1) == "byron"
        assert index.posting_list_length("lovelace") == 0
        assert index.posting_list_length("byron") == 1
        assert index.super_key(0, 0) == generator.row_super_key(("ada", "byron"))
        assert maintainer.verify_consistency() == []

    def test_update_cell_validations(self, setup):
        _, _, _, maintainer = setup
        with pytest.raises(DataModelError):
            maintainer.update_cell(0, 9, 0, "x")
        with pytest.raises(DataModelError):
            maintainer.update_cell(0, 0, 9, "x")


class TestDeletes:
    def test_delete_table(self, setup):
        corpus, index, _, maintainer = setup
        maintainer.delete_table(0)
        assert 0 not in corpus
        assert index.num_posting_items() == 0
        assert maintainer.verify_consistency() == []

    def test_delete_row_shifts_following_rows(self, setup):
        corpus, index, generator, maintainer = setup
        maintainer.delete_row(0, 0)
        table = corpus.get_table(0)
        assert table.num_rows == 1
        assert table.rows[0] == ("alan", "turing")
        assert index.posting_list_length("ada") == 0
        assert index.super_key(0, 0) == generator.row_super_key(("alan", "turing"))
        assert maintainer.verify_consistency() == []

    def test_delete_column_triggers_rehash(self, setup):
        corpus, index, generator, maintainer = setup
        maintainer.delete_column(0, "last")
        table = corpus.get_table(0)
        assert table.columns == ["first"]
        assert index.posting_list_length("lovelace") == 0
        assert index.super_key(0, 0) == generator.value_hash("ada")
        assert maintainer.verify_consistency() == []

    def test_delete_row_validation(self, setup):
        _, _, _, maintainer = setup
        with pytest.raises(DataModelError):
            maintainer.delete_row(0, 10)


class TestConsistencyChecker:
    def test_detects_stale_super_key(self, setup):
        _, index, _, maintainer = setup
        index.set_super_key(0, 0, 12345)
        issues = maintainer.verify_consistency()
        assert any("stale super key" in issue for issue in issues)

    def test_detects_orphan_table(self, setup):
        corpus, index, _, maintainer = setup
        corpus.remove_table(0)  # bypass the maintainer on purpose
        issues = maintainer.verify_consistency()
        assert any("missing table" in issue for issue in issues)
