"""Tests for the synthetic data generators: vocab, corpora, queries, planting."""


import pytest

from repro.core import exact_joinability_score
from repro.datagen import (
    COLUMN_FACTORIES,
    KEYABLE_COLUMN_TYPES,
    OPEN_DATA_PROFILE,
    PROFILES,
    SCHOOL_PROFILE,
    WEB_TABLE_PROFILE,
    generate_airline_query,
    generate_corpus,
    generate_entity_query,
    generate_movie_query,
    generate_school_query,
    generate_sensor_query,
    plant_distractor_table,
    plant_joinable_table,
)
from repro.datagen import vocab
from repro.datamodel import TableCorpus


class TestVocab:
    def test_random_word_length_bounds(self, rng):
        for _ in range(50):
            word = vocab.random_word(rng, 3, 8)
            assert 3 <= len(word) <= 8
            assert word.isalpha()

    def test_random_date_format(self, rng):
        date = vocab.random_date(rng)
        year, month, day = date.split("-")
        assert len(year) == 4 and len(month) == 2 and len(day) == 2

    def test_random_timestamp_contains_hour(self, rng):
        assert ":" in vocab.random_timestamp(rng)

    def test_random_code_alphanumeric(self, rng):
        code = vocab.random_code(rng, length=8)
        assert len(code) == 8

    def test_zipf_choice_skews_towards_head(self, rng):
        values = tuple(f"v{i}" for i in range(100))
        draws = [vocab.zipf_choice(rng, values) for _ in range(2000)]
        head = sum(1 for draw in draws if draw in values[:10])
        tail = sum(1 for draw in draws if draw in values[-10:])
        assert head > tail * 3

    def test_zipf_choice_rejects_empty(self, rng):
        with pytest.raises(ValueError):
            vocab.zipf_choice(rng, ())

    def test_shared_tokens_are_deterministic_and_unique(self):
        assert len(vocab.SHARED_TOKENS) == len(set(vocab.SHARED_TOKENS))
        assert len(vocab.SHARED_TOKENS) >= 1000

    def test_named_factories(self, rng):
        assert " " in vocab.full_name(rng)
        assert vocab.movie_title(rng)
        assert vocab.airline_name(rng)
        assert vocab.school_name(rng).endswith("school")


class TestCorpusGenerators:
    def test_profiles_registered(self):
        assert set(PROFILES) == {"webtables", "opendata", "school"}

    def test_generate_corpus_shapes(self):
        corpus = generate_corpus(WEB_TABLE_PROFILE, seed=1, scale=0.05)
        assert len(corpus) == max(1, int(WEB_TABLE_PROFILE.num_tables * 0.05))
        for table in corpus:
            assert table.num_rows >= WEB_TABLE_PROFILE.min_rows
            assert table.num_columns >= WEB_TABLE_PROFILE.min_columns

    def test_open_data_tables_are_wider_than_web_tables(self):
        web = generate_corpus(WEB_TABLE_PROFILE, seed=2, scale=0.05)
        od = generate_corpus(OPEN_DATA_PROFILE, seed=2, scale=0.1)
        assert od.average_columns_per_table() > web.average_columns_per_table()

    def test_school_profile_is_very_wide(self):
        school = generate_corpus(SCHOOL_PROFILE, seed=3, scale=0.1)
        assert school.average_columns_per_table() >= 15

    def test_generation_is_deterministic(self):
        first = generate_corpus("webtables", seed=9, scale=0.03)
        second = generate_corpus("webtables", seed=9, scale=0.03)
        assert [t.rows for t in first] == [t.rows for t in second]

    def test_different_seeds_differ(self):
        first = generate_corpus("webtables", seed=1, scale=0.03)
        second = generate_corpus("webtables", seed=2, scale=0.03)
        assert [t.rows for t in first] != [t.rows for t in second]

    def test_values_are_shared_across_tables(self):
        corpus = generate_corpus(WEB_TABLE_PROFILE, seed=5, scale=0.1)
        stats = corpus.statistics()
        # Heavy value reuse: far fewer distinct values than cells.
        assert stats.num_unique_values < stats.num_cells * 0.8

    def test_scaled_profile(self):
        scaled = WEB_TABLE_PROFILE.scaled(0.5)
        assert scaled.num_tables == WEB_TABLE_PROFILE.num_tables // 2
        assert scaled.min_rows == WEB_TABLE_PROFILE.min_rows

    def test_column_factories_cover_keyable_types(self):
        assert set(KEYABLE_COLUMN_TYPES) <= set(COLUMN_FACTORIES)


class TestQueryGenerators:
    def test_entity_query_shape(self, rng):
        query = generate_entity_query(5, rng, cardinality=25, key_size=3)
        assert query.key_size == 3
        assert len(query.key_tuples()) == 25
        assert query.table.table_id == 5

    def test_entity_query_key_size_one(self, rng):
        assert generate_entity_query(5, rng, cardinality=5, key_size=1).key_size == 1

    def test_movie_query(self, rng):
        query = generate_movie_query(7, rng, cardinality=30)
        assert query.key_columns == ["director name", "movie title"]
        assert len(query.key_tuples()) == 30

    def test_airline_query(self, rng):
        query = generate_airline_query(7, rng, cardinality=20)
        assert query.key_columns == ["airline name", "country"]
        assert len(query.key_tuples()) == 20

    def test_school_query_is_wide(self, rng):
        query = generate_school_query(7, rng, cardinality=40, extra_columns=20)
        assert query.table.num_columns == 22
        assert query.key_columns == ["program type", "school name"]

    def test_sensor_query(self, rng):
        query = generate_sensor_query(7, rng, cardinality=15)
        assert query.key_columns == ["timestamp", "location"]
        assert len(query.key_tuples()) == 15


class TestPlanting:
    def test_planted_joinability_is_exact(self, rng):
        corpus = TableCorpus(name="plant")
        query = generate_entity_query(100, rng, cardinality=20, key_size=2)
        planted = plant_joinable_table(corpus, query, rng, joinability=12)
        table = corpus.get_table(planted.table_id)
        assert planted.planted_joinability == 12
        assert exact_joinability_score(query, table) == 12
        assert not planted.is_distractor

    def test_planted_joinability_clamped_to_cardinality(self, rng):
        corpus = TableCorpus(name="plant")
        query = generate_entity_query(100, rng, cardinality=5, key_size=2)
        planted = plant_joinable_table(corpus, query, rng, joinability=50)
        assert planted.planted_joinability == 5

    def test_planted_table_has_renamed_and_shuffled_columns(self, rng):
        corpus = TableCorpus(name="plant")
        query = generate_entity_query(100, rng, cardinality=10, key_size=3)
        planted = plant_joinable_table(corpus, query, rng, joinability=5)
        table = corpus.get_table(planted.table_id)
        assert not set(query.key_columns) & set(table.columns)
        assert len(set(table.columns)) == len(table.columns)

    def test_distractor_table_never_joins_fully(self, rng):
        corpus = TableCorpus(name="plant")
        query = generate_entity_query(100, rng, cardinality=15, key_size=2)
        planted = plant_distractor_table(corpus, query, rng, matching_rows=30)
        table = corpus.get_table(planted.table_id)
        assert planted.is_distractor
        assert planted.planted_joinability == 0
        # A distractor may match a full key only by coincidence; with 2-column
        # keys and disjoint noise values this must stay far below cardinality.
        assert exact_joinability_score(query, table) <= 2

    def test_distractor_shares_single_values(self, rng, config):
        from repro import build_index

        corpus = TableCorpus(name="plant")
        query = generate_entity_query(100, rng, cardinality=15, key_size=2)
        planted = plant_distractor_table(corpus, query, rng, matching_rows=30)
        index = build_index(corpus, config=config)
        initial_values = query.table.distinct_column_values(query.key_columns[0])
        hits = index.fetch(sorted(initial_values))
        assert any(item.table_id == planted.table_id for item in hits) or index.fetch(
            sorted(query.table.distinct_column_values(query.key_columns[1]))
        )

    def test_explicit_extra_columns_respected(self, rng):
        corpus = TableCorpus(name="plant")
        query = generate_entity_query(100, rng, cardinality=10, key_size=2)
        planted = plant_joinable_table(
            corpus, query, rng, joinability=5, extra_columns=7
        )
        table = corpus.get_table(planted.table_id)
        assert table.num_columns == query.key_size + 7
