"""Integration tests across the newer subsystems.

These exercise realistic end-to-end paths that cross module boundaries:
ingestion -> profiling -> key discovery -> discovery (plain, sharded, fuzzy),
and the paged store as a drop-in fetch layer, so regressions in the glue —
not just in the individual modules — are caught.
"""

from __future__ import annotations

import pytest

from repro import DataLake, MateConfig, MateDiscovery, QueryTable, Table
from repro.core import ShardedMateDiscovery, exact_joinability_score
from repro.extensions import (
    SimilarityJoinDiscovery,
    discover_key_candidates,
    suggest_query,
)
from repro.index import build_index
from repro.lake import profile_corpus, save_webtable_corpus
from repro.storage import PagedPostingStore, table_to_csv


@pytest.fixture()
def mixed_lake(tmp_path):
    """A lake ingested from CSV and JSON-lines sources with a known join."""
    orders = Table(
        table_id=0,
        name="orders",
        columns=["customer", "order_date", "amount"],
        rows=[
            ["muhammad lee", "2021-03-01", "120.5"],
            ["ansel adams", "2021-03-01", "80.0"],
            ["helmut newton", "2021-03-02", "310.0"],
            ["gretchen lee", "2021-03-03", "42.0"],
            # A repeat customer on another day: no single column is unique,
            # so <customer, order_date> is the minimal composite key.
            ["muhammad lee", "2021-03-03", "60.0"],
        ],
    )
    shipments = Table(
        table_id=1,
        name="shipments",
        columns=["kunde", "datum", "status"],
        rows=[
            ["muhammad lee", "2021-03-01", "delivered"],
            ["ansel adams", "2021-03-01", "pending"],
            ["helmut newton", "2021-03-02", "delivered"],
            ["someone else", "2021-03-09", "lost"],
        ],
    )
    complaints = Table(
        table_id=2,
        name="complaints",
        columns=["customer", "topic"],
        rows=[
            ["muhammad lee", "late delivery"],
            ["ansel adams", "damaged box"],
        ],
    )
    table_to_csv(orders, tmp_path / "orders.csv")
    table_to_csv(complaints, tmp_path / "complaints.csv")
    from repro.datamodel import TableCorpus

    web = TableCorpus(name="web")
    web.add_table(shipments)
    save_webtable_corpus(web, tmp_path / "webtables.jsonl")
    return DataLake.from_directory(tmp_path, name="orders-lake")


class TestLakeToDiscoveryPipeline:
    def test_profile_feeds_configuration(self, mixed_lake):
        profile = profile_corpus(mixed_lake.corpus)
        config = profile.recommended_config(hash_size=256)
        assert config.hash_size == 256
        assert config.expected_unique_values == profile.num_unique_values
        index = build_index(mixed_lake.corpus, config=config)
        assert index.hash_size == 256

    def test_key_discovery_then_discovery(self, mixed_lake):
        orders = mixed_lake.table_by_source("orders")
        candidates = discover_key_candidates(orders, max_arity=2)
        assert any(
            set(c.columns) == {"customer", "order_date"} and c.is_unique
            for c in candidates
        )
        query = suggest_query(orders, prefer_arity=2)
        result = mixed_lake.discover(query, k=3)
        shipments = next(t for t in mixed_lake.corpus if t.name == "shipments")
        assert result.joinability_of(shipments.table_id) == 3

    def test_discovery_matches_brute_force(self, mixed_lake):
        orders = mixed_lake.table_by_source("orders")
        query = QueryTable(table=orders, key_columns=["customer", "order_date"])
        result = mixed_lake.discover(query, k=3)
        for entry in result.tables:
            if entry.table_id == orders.table_id:
                continue
            expected = exact_joinability_score(
                query, mixed_lake.corpus.get_table(entry.table_id)
            )
            assert entry.joinability == expected

    def test_sharded_discovery_over_ingested_lake(self, mixed_lake):
        orders = mixed_lake.table_by_source("orders")
        query = QueryTable(table=orders, key_columns=["customer", "order_date"])
        config = mixed_lake.effective_config().with_k(3)
        single = mixed_lake.discover(query, k=3)
        sharded = ShardedMateDiscovery(
            mixed_lake.corpus, num_shards=2, config=config
        ).discover(query, k=3)
        assert sorted(j for _, j in sharded.result_tuples()) == sorted(
            j for _, j in single.result_tuples()
        )

    def test_similarity_discovery_over_ingested_lake(self, mixed_lake):
        orders = mixed_lake.table_by_source("orders")
        query = QueryTable(table=orders, key_columns=["customer", "order_date"])
        fuzzy = SimilarityJoinDiscovery(
            mixed_lake.corpus,
            mixed_lake.index(),
            config=mixed_lake.effective_config(),
            max_distance=1,
        )
        results = {r.table_id: r for r in fuzzy.discover(query, k=3)}
        shipments = next(t for t in mixed_lake.corpus if t.name == "shipments")
        assert results[shipments.table_id].similarity_joinability >= 3


class TestPagedStoreAsFetchLayer:
    def test_paged_fetch_agrees_with_discovery_probe(self, mixed_lake):
        """The paged store returns exactly what Algorithm 1's fetch would."""
        index = mixed_lake.index()
        store = PagedPostingStore(index, page_size_bytes=256)
        orders = mixed_lake.table_by_source("orders")
        probe_values = sorted(orders.distinct_column_values("customer"))
        assert store.fetch(probe_values) == index.fetch(probe_values)
        assert store.accounting.pages_read > 0

    def test_warm_cache_reduces_estimated_cost(self, mixed_lake):
        index = mixed_lake.index()
        store = PagedPostingStore(index, page_size_bytes=256, buffer_pool_pages=1024)
        orders = mixed_lake.table_by_source("orders")
        probe_values = sorted(orders.distinct_column_values("customer"))
        store.fetch(probe_values)
        cold_cost = store.accounting.estimated_seconds
        store.fetch(probe_values)
        warm_cost = store.accounting.estimated_seconds - cold_cost
        assert warm_cost < cold_cost


class TestUnicodeAndMessyInputs:
    def test_unicode_values_flow_through_the_whole_pipeline(self, tmp_path):
        table = Table(
            table_id=0,
            name="unicode",
            columns=["stadt", "land", "notiz"],
            rows=[
                ["münchen", "deutschland", "Oktoberfest"],
                ["kyōto", "日本", "temples"],
                ["zürich", "schweiz", "lake"],
            ],
        )
        table_to_csv(table, tmp_path / "unicode.csv")
        lake = DataLake.from_directory(tmp_path)
        query = QueryTable(
            table=lake.table_by_source("unicode"), key_columns=["stadt", "land"]
        )
        result = lake.discover(query, k=1)
        assert result.tables[0].joinability == 3

    def test_duplicate_headers_and_blank_lines_in_json(self, tmp_path):
        payload = (
            '{"relation": [["a", "1"], ["a", "2"], ["", "3"]], "hasHeader": true}\n'
            "\n"
            '{"relation": [["x", "9"]], "hasHeader": true}\n'
        )
        (tmp_path / "messy.jsonl").write_text(payload, encoding="utf-8")
        lake = DataLake.from_directory(tmp_path)
        assert len(lake) == 2
        first = lake.corpus.get_table(0)
        assert len(set(first.columns)) == 3

    def test_configured_engine_rejects_query_with_unknown_key(self, mixed_lake):
        orders = mixed_lake.table_by_source("orders")
        from repro.exceptions import DataModelError

        with pytest.raises(DataModelError):
            QueryTable(table=orders, key_columns=["customer", "no_such_column"])

    def test_alternative_hash_function_backing_the_lake_corpus(self, mixed_lake):
        config = MateConfig(hash_size=128, expected_unique_values=1000)
        index = build_index(mixed_lake.corpus, config=config, hash_function_name="bloom")
        engine = MateDiscovery(
            mixed_lake.corpus, index, config=config, hash_function_name="bloom"
        )
        orders = mixed_lake.table_by_source("orders")
        query = QueryTable(table=orders, key_columns=["customer", "order_date"])
        shipments = next(t for t in mixed_lake.corpus if t.name == "shipments")
        assert engine.discover(query, k=3).joinability_of(shipments.table_id) == 3
