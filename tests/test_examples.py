"""Smoke tests: every example script must run end to end and tell its story.

The examples are part of the public deliverable; each one is executed in a
subprocess (so its ``__main__`` path is exercised exactly as a user would run
it) and its output is checked for the key facts the example is built around.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
SRC_DIR = Path(__file__).resolve().parent.parent / "src"


def run_example(name: str, timeout: int = 300) -> str:
    """Run one example script and return its stdout (failing the test on error)."""
    script = EXAMPLES_DIR / name
    assert script.exists(), f"example script missing: {script}"
    env_path = f"{SRC_DIR}"
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=timeout,
        env={"PYTHONPATH": env_path, "PATH": "/usr/bin:/bin:/usr/local/bin"},
    )
    assert result.returncode == 0, (
        f"{name} exited with {result.returncode}\nstderr:\n{result.stderr}"
    )
    return result.stdout


def test_all_examples_are_covered():
    """Every example script in examples/ has a dedicated smoke test below."""
    scripts = {path.name for path in EXAMPLES_DIR.glob("*.py")}
    covered = {
        "quickstart.py",
        "air_quality_enrichment.py",
        "movie_feature_enrichment.py",
        "index_maintenance.py",
        "beyond_joins.py",
        "csv_data_lake.py",
        "similarity_join.py",
        "composite_key_discovery.py",
        "batch_discovery_service.py",
        "live_ingest.py",
        "http_serving.py",
        "sketch_discovery.py",
    }
    assert scripts == covered


def test_quickstart_finds_figure1_table():
    output = run_example("quickstart.py")
    assert "top-2 joinable tables" in output
    assert "joinability=5" in output


def test_air_quality_enrichment():
    output = run_example("air_quality_enrichment.py")
    assert "joinab" in output.lower()


def test_movie_feature_enrichment():
    output = run_example("movie_feature_enrichment.py")
    assert "joinab" in output.lower()


def test_index_maintenance():
    output = run_example("index_maintenance.py")
    assert output.strip()


def test_beyond_joins():
    output = run_example("beyond_joins.py")
    assert output.strip()


def test_csv_data_lake_ranks_composite_join_above_distractor():
    output = run_example("csv_data_lake.py")
    assert "ingested 4 tables" in output
    assert "salaries" in output
    assert "joinability of the single-column distractor table: 0" in output


def test_similarity_join_finds_typo_table():
    output = run_example("similarity_join.py")
    assert "scraped_directory" in output
    assert "similarity joinability=3" in output
    assert "exact: 0" in output


def test_batch_discovery_service_dedupes_and_matches_sequential():
    output = run_example("batch_discovery_service.py")
    assert "2 deduplicated across the batch" in output
    assert "warm cache hit rate: 1.00" in output
    assert "identical to sequential discovery: True" in output


def test_live_ingest_streams_and_queries_concurrently():
    output = run_example("live_ingest.py")
    assert "ingested 120 tables" in output
    assert "concurrent top-1 joinability grew monotonically: True" in output
    assert "final top-3" in output


def test_http_serving_round_trips_and_drains():
    output = run_example("http_serving.py")
    assert "served top-k identical to in-process engine: True" in output
    assert "server drained cleanly" in output


def test_sketch_discovery_prunes_without_losing_the_topk():
    output = run_example("sketch_discovery.py")
    assert "threshold=0 top-k identical to exact: True" in output
    assert "candidate tables after LSH prune: 4 (of 64)" in output
    assert "top-k identical to exact: True" in output


def test_composite_key_discovery_selects_timestamp_location():
    output = run_example("composite_key_discovery.py")
    assert "selected composite key: ['timestamp', 'location']" in output
    assert "weather_observations" in output


@pytest.mark.parametrize(
    "name",
    ["csv_data_lake.py", "similarity_join.py", "composite_key_discovery.py"],
)
def test_new_examples_import_cleanly(name):
    """The new examples can also be imported as modules (no side effects)."""
    import importlib.util

    spec = importlib.util.spec_from_file_location(name[:-3], EXAMPLES_DIR / name)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    assert hasattr(module, "main")
