"""Tests for the initial-column selection heuristics (Section 6.1 / 7.5.4)."""

import pytest

from repro import build_index
from repro.core import (
    COLUMN_SELECTORS,
    fetched_pl_count,
    get_column_selector,
    select_best_case,
    select_by_cardinality,
    select_by_column_order,
    select_by_longest_string,
    select_worst_case,
)
from repro.datamodel import QueryTable, Table, TableCorpus
from repro.exceptions import DiscoveryError


@pytest.fixture()
def query() -> QueryTable:
    table = Table(
        table_id=0,
        name="q",
        columns=["code", "name", "city", "note"],
        rows=[
            ["a1", "alexander hamilton", "berlin", "x"],
            ["a1", "george washington", "paris", "y"],
            ["b2", "alexander hamilton", "berlin", "z"],
            ["a1", "thomas jefferson", "rome", "w"],
        ],
    )
    return QueryTable(table=table, key_columns=["code", "name", "city"])


@pytest.fixture()
def corpus_and_index(config):
    corpus = TableCorpus(name="selector")
    # "berlin"/"paris" appear in many rows; "a1"/"b2" appear rarely.
    corpus.add_table(
        Table(
            table_id=0,
            name="cities",
            columns=["city", "value"],
            rows=[["berlin", str(i)] for i in range(10)] + [["paris", "x"]],
        )
    )
    corpus.add_table(
        Table(
            table_id=1,
            name="codes",
            columns=["code", "value"],
            rows=[["a1", "1"], ["zz", "2"]],
        )
    )
    return corpus, build_index(corpus, config=config)


class TestHeuristics:
    def test_cardinality_picks_fewest_distinct(self, query):
        # code has 2 distinct values, city has 3, name has 3.
        assert select_by_cardinality(query) == "code"

    def test_column_order_picks_first_key_column(self, query):
        assert select_by_column_order(query) == "code"

    def test_column_order_respects_table_order_not_key_order(self, query):
        reordered = QueryTable(table=query.table, key_columns=["city", "code"])
        assert select_by_column_order(reordered) == "code"

    def test_longest_string_picks_longest_value(self, query):
        assert select_by_longest_string(query) == "name"

    def test_worst_and_best_need_index(self, query):
        with pytest.raises(DiscoveryError):
            select_worst_case(query, None)
        with pytest.raises(DiscoveryError):
            select_best_case(query, None)

    def test_worst_and_best_use_posting_counts(self, query, corpus_and_index):
        _, index = corpus_and_index
        assert select_worst_case(query, index) == "city"
        assert select_best_case(query, index) in {"name", "code"}

    def test_fetched_pl_count(self, query, corpus_and_index):
        _, index = corpus_and_index
        city_count = fetched_pl_count(query, index, "worst_case")
        code_count = fetched_pl_count(query, index, select_by_cardinality)
        assert city_count == 11
        assert code_count == 1

    def test_registry(self):
        assert set(COLUMN_SELECTORS) == {
            "cardinality", "column_order", "longest_string", "worst_case", "best_case",
        }
        assert get_column_selector("cardinality") is select_by_cardinality
        with pytest.raises(DiscoveryError):
            get_column_selector("magic")
