"""Tests for the HTTP front end (repro.serve.http) and admission control.

The admission controller is exercised as a plain object with a fake clock;
the server tests run a real :class:`DiscoveryHTTPServer` on an ephemeral
port inside a background event-loop thread and talk to it over actual
sockets, because the request-parsing / backpressure / drain behaviour being
verified lives in the byte-level protocol, not in the handler functions.
"""

from __future__ import annotations

import asyncio
import json
import threading
import urllib.error
import urllib.request

import pytest

from repro import DiscoveryRequest, DiscoverySession
from repro.config import MateConfig
from repro.exceptions import ConfigurationError
from repro.datagen import build_workload
from repro.serve import (
    AdmissionController,
    DiscoveryHTTPServer,
    TenantQuota,
)

CONFIG = MateConfig(expected_unique_values=100_000, k=5)

#: Result fields that legitimately differ between two runs of the same
#: request (wall-clock timing); stripped before envelope comparison.
TIMING_FIELDS = ("runtime_seconds",)


class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self) -> float:
        return self.now


class TestTenantQuota:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            TenantQuota(max_inflight=0)
        with pytest.raises(ConfigurationError):
            TenantQuota(max_pl_fetches_per_request=-1)

    def test_clamp_fetches(self):
        unlimited = TenantQuota()
        assert unlimited.clamp_fetches(None) is None
        assert unlimited.clamp_fetches(7) == 7
        capped = TenantQuota(max_pl_fetches_per_request=5)
        assert capped.clamp_fetches(None) == 5
        assert capped.clamp_fetches(9) == 5
        assert capped.clamp_fetches(3) == 3


class TestAdmissionController:
    def test_capacity_rejection_carries_retry_after(self):
        controller = AdmissionController(
            max_pending=1, retry_after_seconds=2.5, clock=FakeClock()
        )
        first = controller.try_acquire()
        assert first.admitted and first.ticket is not None
        second = controller.try_acquire()
        assert not second.admitted
        assert second.status == 429
        assert second.retry_after_seconds == 2.5
        controller.release(first.ticket)
        assert controller.try_acquire().admitted

    def test_tenant_quota_is_per_tenant(self):
        controller = AdmissionController(
            max_pending=10, tenant_quota=TenantQuota(max_inflight=1)
        )
        first = controller.try_acquire("alice")
        assert first.admitted
        blocked = controller.try_acquire("alice")
        assert not blocked.admitted and blocked.status == 429
        assert "alice" in blocked.reason
        other = controller.try_acquire("bob")
        assert other.admitted
        controller.release(first.ticket)
        assert controller.try_acquire("alice").admitted

    def test_drain_refuses_with_503_and_signals_empty(self):
        clock = FakeClock()
        controller = AdmissionController(max_pending=4, clock=clock)
        ticket = controller.try_acquire().ticket
        controller.begin_drain()
        refused = controller.try_acquire()
        assert not refused.admitted and refused.status == 503
        assert not controller.wait_drained(timeout=0)
        controller.release(ticket)
        assert controller.wait_drained(timeout=0)
        stats = controller.stats()
        assert stats["draining"] is True
        assert stats["inflight"] == 0
        assert stats["drained_rejects"] == 1

    def test_stats_track_tenants(self):
        controller = AdmissionController(max_pending=4)
        controller.try_acquire("alice")
        controller.try_acquire("alice")
        assert controller.stats()["tenants"] == {"alice": 2}


# ----------------------------------------------------------------------
# Live-server tests
# ----------------------------------------------------------------------
class ServerHarness:
    """A DiscoveryHTTPServer running in a background event-loop thread."""

    def __init__(self, session, **server_kwargs):
        self.server = DiscoveryHTTPServer(session, **server_kwargs)
        self.loop = asyncio.new_event_loop()
        self.thread = threading.Thread(target=self.loop.run_forever, daemon=True)
        self.thread.start()
        self._run(self.server.start())

    def _run(self, coroutine):
        return asyncio.run_coroutine_threadsafe(coroutine, self.loop).result(
            timeout=30
        )

    @property
    def base_url(self) -> str:
        return f"http://{self.server.host}:{self.server.port}"

    def request(self, method, path, body=None, headers=None):
        """Return (status, parsed-JSON body, response headers)."""
        request = urllib.request.Request(
            self.base_url + path,
            data=body,
            method=method,
            headers=headers or {},
        )
        try:
            with urllib.request.urlopen(request, timeout=30) as response:
                return response.status, json.load(response), dict(
                    response.headers
                )
        except urllib.error.HTTPError as error:
            payload = json.loads(error.read() or b"{}")
            return error.code, payload, dict(error.headers)

    def drain(self):
        self._run(self.server.drain_and_stop())

    def close(self):
        try:
            if self.server._server is not None:
                self.drain()
        finally:
            self.loop.call_soon_threadsafe(self.loop.stop)
            self.thread.join(timeout=10)
            self.loop.close()


@pytest.fixture(scope="module")
def workload():
    return build_workload("WT_100", seed=23, num_queries=1, corpus_scale=0.3)


@pytest.fixture(scope="module")
def session(workload):
    with DiscoverySession(workload.corpus, config=CONFIG) as active:
        yield active


@pytest.fixture(scope="module")
def harness(session):
    active = ServerHarness(session)
    yield active
    active.close()


def discover_body(workload, **overrides) -> bytes:
    query = workload.queries[0]
    document = {
        "query": {
            "name": query.table.name,
            "columns": list(query.table.columns),
            "rows": [list(row) for row in query.table.rows],
        },
        "key_columns": list(query.key_columns),
        "k": CONFIG.k,
    }
    document.update(overrides)
    return json.dumps(document).encode("utf-8")


class TestHTTPServer:
    def test_healthz(self, harness):
        status, body, _ = harness.request("GET", "/healthz")
        assert status == 200
        assert body["status"] == "serving"

    def test_engines_listing(self, harness, session):
        status, body, _ = harness.request("GET", "/v1/engines")
        assert status == 200
        assert body["engines"] == sorted(session.registry.names())
        # Registry-backed engines surface automatically; the pushdown
        # engine must be addressable over HTTP like any other.
        assert "sql" in body["engines"]

    def test_unknown_route_is_404(self, harness):
        status, body, _ = harness.request("GET", "/nope")
        assert status == 404

    def test_discover_envelope_round_trip(self, harness, session, workload):
        """The HTTP envelope is the in-process envelope, modulo timing."""
        status, served, _ = harness.request(
            "POST", "/v1/discover", body=discover_body(workload)
        )
        assert status == 200
        reference = session.discover(
            DiscoveryRequest(query=workload.queries[0], k=CONFIG.k)
        )
        expected = json.loads(json.dumps(reference.to_dict()))

        def normalise(envelope):
            for field in TIMING_FIELDS:
                envelope["counters"].pop(field, None)
            for stage in envelope.get("stages", {}).values():
                stage.pop("seconds", None)
            envelope["counters"].pop("stages", None)
            envelope.pop("request_id", None)
            return envelope

        assert normalise(served) == normalise(expected)

    def test_bad_request_bodies_are_400(self, harness, workload):
        status, body, _ = harness.request("POST", "/v1/discover", body=b"nope")
        assert status == 400
        status, body, _ = harness.request(
            "POST", "/v1/discover", body=json.dumps({"query": {}}).encode()
        )
        assert status == 400
        assert "key_columns" in body["error"]

    def test_unknown_engine_is_500(self, harness, workload):
        status, body, _ = harness.request(
            "POST",
            "/v1/discover",
            body=discover_body(workload, engine="warp-drive"),
        )
        assert status == 500

    def test_stats_endpoint(self, harness, session):
        status, body, _ = harness.request("GET", "/v1/stats")
        assert status == 200
        assert body["admission"]["inflight"] == 0
        assert body["execution"] == "thread"
        assert set(body["engines"]) == set(session.engines())


class TestBackpressureAndDrain:
    def test_zero_capacity_server_returns_429_with_retry_after(
        self, session, workload
    ):
        harness = ServerHarness(
            session,
            admission=AdmissionController(max_pending=0, retry_after_seconds=3.0),
        )
        try:
            status, body, headers = harness.request(
                "POST", "/v1/discover", body=discover_body(workload)
            )
            assert status == 429
            assert headers["Retry-After"] == "3"
            assert "capacity" in body["error"]
        finally:
            harness.close()

    def test_drain_flips_healthz_and_refuses_discover(self, session, workload):
        harness = ServerHarness(session)
        try:
            harness.server.admission.begin_drain()
            status, body, _ = harness.request("GET", "/healthz")
            assert status == 503
            assert body["status"] == "draining"
            status, body, _ = harness.request(
                "POST", "/v1/discover", body=discover_body(workload)
            )
            assert status == 503
        finally:
            harness.close()

    def test_tenant_header_feeds_quota(self, session, workload):
        harness = ServerHarness(
            session,
            admission=AdmissionController(
                max_pending=8, tenant_quota=TenantQuota(max_inflight=1)
            ),
        )
        try:
            status, _, _ = harness.request(
                "POST",
                "/v1/discover",
                body=discover_body(workload),
                headers={"X-Tenant": "alice"},
            )
            assert status == 200
            assert harness.server.admission.stats()["tenants"] == {}
        finally:
            harness.close()
