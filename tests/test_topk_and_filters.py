"""Tests for the top-k heap, the table-filtering rules, and the row filter."""

import pytest

from repro.core import (
    RowFilter,
    TopKHeap,
    should_abandon_table,
    should_prune_table,
)
from repro.exceptions import DiscoveryError
from repro.hashing import SuperKeyGenerator
from repro.metrics import DiscoveryCounters


class TestTopKHeap:
    def test_requires_positive_k(self):
        with pytest.raises(DiscoveryError):
            TopKHeap(0)

    def test_not_full_min_joinability_is_zero(self):
        heap = TopKHeap(3)
        heap.update(1, 10)
        assert not heap.is_full
        assert heap.min_joinability() == 0

    def test_keeps_best_k(self):
        heap = TopKHeap(2)
        heap.update(1, 5)
        heap.update(2, 9)
        heap.update(3, 7)
        assert heap.result_tuples() == [(2, 9), (3, 7)]
        assert heap.min_joinability() == 7

    def test_rejects_zero_joinability(self):
        heap = TopKHeap(2)
        assert heap.update(1, 0) is False
        assert len(heap) == 0

    def test_ties_prefer_smaller_table_id(self):
        heap = TopKHeap(2)
        heap.update(10, 5)
        heap.update(3, 5)
        heap.update(7, 5)
        assert heap.result_tuples() == [(3, 5), (7, 5)]

    def test_update_returns_whether_kept(self):
        heap = TopKHeap(1)
        assert heap.update(1, 5) is True
        assert heap.update(2, 4) is False
        assert heap.update(3, 6) is True

    def test_results_sorted_best_first(self):
        heap = TopKHeap(3)
        for table_id, joinability in ((1, 2), (2, 8), (3, 5)):
            heap.update(table_id, joinability)
        assert [r.joinability for r in heap.results()] == [8, 5, 2]
        assert heap.results()[0].as_tuple() == (2, 8)


class TestTableFilterRules:
    def test_rule1_inactive_until_full(self):
        heap = TopKHeap(2)
        heap.update(1, 100)
        assert not should_prune_table(1, heap)

    def test_rule1_prunes_small_tables(self):
        heap = TopKHeap(1)
        heap.update(1, 5)
        assert should_prune_table(5, heap)       # L_t == j_k -> prune
        assert should_prune_table(4, heap)
        assert not should_prune_table(6, heap)

    def test_rule2_optimistic_bound(self):
        heap = TopKHeap(1)
        heap.update(1, 5)
        # 10 PL items, 7 checked, only 1 matched: best case 10 - 7 + 1 = 4 <= 5.
        assert should_abandon_table(10, 7, 1, heap)
        # 10 PL items, 4 checked, 1 matched: best case 7 > 5 -> keep going.
        assert not should_abandon_table(10, 4, 1, heap)

    def test_rule2_inactive_until_full(self):
        heap = TopKHeap(2)
        heap.update(1, 5)
        assert not should_abandon_table(10, 9, 0, heap)


class TestRowFilter:
    def make_filter(self, config, mode: str) -> RowFilter:
        return RowFilter(SuperKeyGenerator.from_name("xash", config), mode=mode)

    def test_invalid_mode(self, config):
        with pytest.raises(DiscoveryError):
            self.make_filter(config, "bogus")

    def test_none_mode_passes_everything(self, config):
        row_filter = self.make_filter(config, "none")
        counters = DiscoveryCounters()
        assert row_filter.passes(0, 0xFFFF, ("a",), ("b",), counters)
        assert counters.superkey_checks == 0

    def test_oracle_mode_has_no_false_positives(self, config):
        row_filter = self.make_filter(config, "oracle")
        counters = DiscoveryCounters()
        assert row_filter.passes(0, 0, ("lee", "us"), ("lee", "us"), counters)
        assert not row_filter.passes(0, 0, ("lee", "uk"), ("lee", "us"), counters)

    def test_superkey_mode_counts_checks(self, config):
        generator = SuperKeyGenerator.from_name("xash", config)
        row_filter = RowFilter(generator, mode="superkey")
        counters = DiscoveryCounters()
        row = ("muhammad", "lee", "us")
        row_super_key = generator.row_super_key(row)
        key = ("lee", "us")
        key_super_key = generator.key_super_key(key)
        assert row_filter.passes(row_super_key, key_super_key, row, key, counters)
        assert counters.superkey_checks == 1

    def test_superkey_mode_short_circuit_counter(self, config):
        generator = SuperKeyGenerator.from_name("xash", config)
        row_filter = RowFilter(generator, mode="superkey")
        counters = DiscoveryCounters()
        row = ("abc", "defg")
        key = ("photographer",)  # length not present in the row
        assert not row_filter.passes(
            generator.row_super_key(row),
            generator.key_super_key(key),
            row,
            key,
            counters,
        )
        assert counters.short_circuit_hits == 1
