"""Equivalence and accelerator tests for the SQL-pushdown engine.

The contract under test: ``engine="sql"`` returns the *same discovery
result* as ``engine="mate"`` — ranked tables, column mappings, names,
completeness, and every counter the pushdown replays — while performing
zero Python-side posting-list fetches and zero Python-side super-key
checks (those costs move into SQLite).  The property suites below pin that
contract across index layouts, hash widths (single-limb, two-limb, and the
BLOB-UDF fallback), row-filter modes, table filters, k values, fetch
budgets, and deadline expiry; the accelerator suites cover persistence,
reuse, corruption, and migration of the ``pushdown_*`` schema.
"""

from __future__ import annotations

import sqlite3
import time

import pytest
from hypothesis import given, settings, strategies as st

from repro import (
    DiscoveryRequest,
    DiscoverySession,
    MateConfig,
    MateDiscovery,
    build_index,
)
from repro.api import PlannerOptions
from repro.api.registry import available_engines
from repro.api.request import RequestBudget
from repro.datamodel import QueryTable, Table, TableCorpus
from repro.engine_sql import SQLPushdownEngine
from repro.engine_sql.accelerator import (
    MAX_NARROW_HASH_SIZE,
    accelerator_matches,
    accelerator_meta,
    build_accelerator,
    ensure_accelerator,
    split_limbs,
)
from repro.exceptions import DiscoveryError, StorageError
from repro.storage import SQLiteBackend

from tests.test_plan_property import corpus_and_query

#: Counters the pushdown engine must replay byte-for-byte.  Deliberately
#: excludes ``pl_items_fetched`` / ``superkey_checks`` / ``short_circuit_hits``
#: — those measure work the pushdown moves into the database and are pinned
#: to zero separately — and wall-clock ``runtime_seconds``.
REPLAYED_COUNTERS = (
    "candidate_tables",
    "tables_evaluated",
    "tables_pruned_by_rule1",
    "tables_pruned_by_rule2",
    "rows_checked",
    "rows_passed_filter",
    "true_positive_rows",
    "false_positive_rows",
    "value_comparisons",
    "budget_exhausted",
    "deadline_expired",
)


def assert_pushdown_identical(result, oracle) -> None:
    """``result`` (sql) must equal ``oracle`` (mate) on everything replayed.

    Also asserts the pushdown's defining property: no posting list and no
    super key ever crossed into Python, and the rows the database scanned
    equal the rows the mate engine fetched.
    """
    assert result.k == oracle.k
    assert result.complete == oracle.complete
    assert [
        (t.table_id, t.joinability, t.column_mapping, t.table_name)
        for t in result.tables
    ] == [
        (t.table_id, t.joinability, t.column_mapping, t.table_name)
        for t in oracle.tables
    ]
    mine = result.counters.as_dict()
    theirs = oracle.counters.as_dict()
    for name in REPLAYED_COUNTERS:
        assert mine[name] == theirs[name], name
    assert (
        result.counters.extra["initial_column_cardinality"]
        == oracle.counters.extra["initial_column_cardinality"]
    )
    # The pushdown property itself.
    assert result.counters.pl_items_fetched == 0
    assert result.counters.superkey_checks == 0
    assert result.counters.short_circuit_hits == 0
    assert (
        result.counters.extra["pushdown_rows_scanned"]
        == oracle.counters.pl_items_fetched
    )


def build_engines(
    corpus: TableCorpus,
    layout: str,
    *,
    hash_size: int = 128,
    row_filter_mode: str = "superkey",
    use_table_filters: bool = True,
) -> tuple[MateDiscovery, SQLPushdownEngine]:
    config = MateConfig(
        hash_size=hash_size, k=3, expected_unique_values=1000,
        index_layout=layout,
    )
    index = build_index(corpus, config=config)
    mate = MateDiscovery(
        corpus, index, config=config,
        row_filter_mode=row_filter_mode,
        use_table_filters=use_table_filters,
    )
    sql = SQLPushdownEngine(
        corpus, index, config=config,
        row_filter_mode=row_filter_mode,
        use_table_filters=use_table_filters,
    )
    return mate, sql


@pytest.mark.parametrize("layout", ["columnar", "legacy"])
class TestPushdownEquivalenceProperties:
    @given(data=st.data())
    @settings(max_examples=30, deadline=None)
    def test_identical_without_budget(self, layout, data):
        corpus, query = corpus_and_query(data.draw)
        mate, sql = build_engines(corpus, layout)
        try:
            k = data.draw(st.integers(min_value=1, max_value=5))
            assert_pushdown_identical(
                sql.discover(query, k=k), mate.discover(query, k=k)
            )
        finally:
            sql.close()

    @given(data=st.data())
    @settings(max_examples=30, deadline=None)
    def test_identical_under_fetch_budget(self, layout, data):
        corpus, query = corpus_and_query(data.draw)
        mate, sql = build_engines(corpus, layout)
        try:
            limit = data.draw(st.integers(min_value=0, max_value=6))
            result = sql.discover(
                query, budget=RequestBudget(max_pl_fetches=limit)
            )
            oracle = mate.discover(
                query, budget=RequestBudget(max_pl_fetches=limit)
            )
            assert_pushdown_identical(result, oracle)
        finally:
            sql.close()

    @given(data=st.data())
    @settings(max_examples=20, deadline=None)
    def test_identical_across_filter_modes(self, layout, data):
        corpus, query = corpus_and_query(data.draw)
        row_filter_mode = data.draw(st.sampled_from(["superkey", "none"]))
        use_table_filters = data.draw(st.booleans())
        mate, sql = build_engines(
            corpus, layout,
            row_filter_mode=row_filter_mode,
            use_table_filters=use_table_filters,
        )
        try:
            assert_pushdown_identical(
                sql.discover(query), mate.discover(query)
            )
        finally:
            sql.close()


@pytest.mark.parametrize("hash_size", [48, 256])
class TestPushdownHashWidths:
    """The two non-default reject paths.

    48 bits exercises the two-limb predicate with an all-zero high limb;
    256 bits exceeds :data:`MAX_NARROW_HASH_SIZE` and must fall back to the
    registered ``repro_covers`` BLOB function.  (The default 128-bit path is
    covered by the main property suite.)
    """

    @given(data=st.data())
    @settings(max_examples=15, deadline=None)
    def test_identical_at_width(self, hash_size, data):
        corpus, query = corpus_and_query(data.draw)
        mate, sql = build_engines(corpus, "columnar", hash_size=hash_size)
        try:
            assert sql._narrow is (hash_size <= MAX_NARROW_HASH_SIZE)
            assert_pushdown_identical(
                sql.discover(query), mate.discover(query)
            )
        finally:
            sql.close()


class TestSplitLimbs:
    def test_round_trips_through_signed_limbs(self):
        for value in (0, 1, (1 << 63), (1 << 64) - 1, (1 << 128) - 1,
                      0xDEADBEEF << 70):
            hi, lo = split_limbs(value)
            assert -(1 << 63) <= hi < (1 << 63)
            assert -(1 << 63) <= lo < (1 << 63)
            assert (hi % (1 << 64)) << 64 | (lo % (1 << 64)) == value


def small_fixture() -> tuple[TableCorpus, QueryTable]:
    corpus = TableCorpus(name="fixed")
    corpus.add_table(Table(
        table_id=0, name="t0", columns=["a", "b", "c"],
        rows=[["ada", "berlin", "de"], ["alan", "london", "uk"],
              ["grace", "paris", "fr"]],
    ))
    corpus.add_table(Table(
        table_id=1, name="t1", columns=["a", "b", "c"],
        rows=[["ada", "berlin", "x"], ["ada", "rome", "it"]],
    ))
    query = QueryTable(
        table=Table(table_id=900, name="q", columns=["x", "y"],
                    rows=[["ada", "berlin"], ["alan", "london"]]),
        key_columns=["x", "y"],
    )
    return corpus, query


class TestDeadlinesAndErrors:
    def test_pre_expired_deadline_matches_mate(self):
        corpus, query = small_fixture()
        mate, sql = build_engines(corpus, "columnar")
        try:
            budgets = []
            for _ in range(2):
                budget = RequestBudget(deadline_seconds=1e-9)
                budgets.append(budget)
            time.sleep(0.01)
            result = sql.discover(query, budget=budgets[0])
            oracle = mate.discover(query, budget=budgets[1])
            assert_pushdown_identical(result, oracle)
            assert result.counters.deadline_expired == 1
            assert not result.complete
        finally:
            sql.close()

    def test_oracle_row_filter_is_refused(self):
        corpus, _ = small_fixture()
        config = MateConfig(hash_size=128, expected_unique_values=1000)
        index = build_index(corpus, config=config)
        with pytest.raises(DiscoveryError, match="row_filter_mode"):
            SQLPushdownEngine(
                corpus, index, config=config, row_filter_mode="oracle"
            )

    def test_k_must_be_positive(self):
        corpus, query = small_fixture()
        _, sql = build_engines(corpus, "columnar")
        try:
            with pytest.raises(DiscoveryError, match="k must be positive"):
                sql.discover(query, k=0)
        finally:
            sql.close()

    def test_close_is_idempotent(self):
        corpus, query = small_fixture()
        _, sql = build_engines(corpus, "columnar")
        sql.discover(query)
        sql.close()
        sql.close()


class TestBackendPersistence:
    """The accelerator inside a file-backed :class:`SQLiteBackend`."""

    def _setup(self, tmp_path):
        corpus, query = small_fixture()
        config = MateConfig(hash_size=128, k=3, expected_unique_values=1000)
        index = build_index(corpus, config=config)
        backend = SQLiteBackend(tmp_path / "store.db")
        backend.save_index("main", index)
        return corpus, query, config, index, backend

    def test_accelerator_persists_and_is_reused(self, tmp_path):
        corpus, query, config, index, backend = self._setup(tmp_path)
        try:
            engine = SQLPushdownEngine(
                corpus, index, config=config, backend=backend
            )
            meta = backend.pushdown_meta("main")
            assert meta is not None
            assert meta["hash_function"] == "xash"
            assert meta["hash_size"] == 128
            assert meta["key_width"] == 16
            assert meta["item_count"] > 0
            # Rebuilds delete + reinsert, so a stable max rowid proves the
            # second engine reused the stored accelerator as-is.
            (marker,) = backend._connection.execute(
                "SELECT MAX(rowid) FROM pushdown_postings"
            ).fetchone()
            second = SQLPushdownEngine(
                corpus, index, config=config, backend=backend
            )
            (after,) = backend._connection.execute(
                "SELECT MAX(rowid) FROM pushdown_postings"
            ).fetchone()
            assert after == marker
            mate = MateDiscovery(corpus, index, config=config)
            assert_pushdown_identical(
                second.discover(query), mate.discover(query)
            )
            engine.close()
            second.close()
        finally:
            backend.close()

    def test_corrupted_accelerator_is_rebuilt(self, tmp_path):
        corpus, query, config, index, backend = self._setup(tmp_path)
        try:
            engine = SQLPushdownEngine(
                corpus, index, config=config, backend=backend
            )
            engine.close()
            expected = backend.pushdown_meta("main")["item_count"]
            with backend._connection:
                backend._connection.execute(
                    "DELETE FROM pushdown_postings WHERE rowid IN "
                    "(SELECT rowid FROM pushdown_postings LIMIT 1)"
                )
            assert not accelerator_matches(
                backend._connection, "main", index
            )
            repaired = SQLPushdownEngine(
                corpus, index, config=config, backend=backend
            )
            assert backend.pushdown_meta("main")["item_count"] == expected
            assert accelerator_matches(backend._connection, "main", index)
            mate = MateDiscovery(corpus, index, config=config)
            assert_pushdown_identical(
                repaired.discover(query), mate.discover(query)
            )
            repaired.close()
        finally:
            backend.close()

    def test_save_index_invalidates_accelerator(self, tmp_path):
        corpus, _, config, index, backend = self._setup(tmp_path)
        try:
            SQLPushdownEngine(
                corpus, index, config=config, backend=backend
            ).close()
            assert backend.pushdown_meta("main") is not None
            backend.save_index("main", index)
            assert backend.pushdown_meta("main") is None
        finally:
            backend.close()

    def test_read_connections_are_wal_tuned_and_indexed(self, tmp_path):
        _, _, _, _, backend = self._setup(tmp_path)
        try:
            connection = backend.read_connection()
            (mode,) = connection.execute("PRAGMA journal_mode").fetchone()
            assert mode == "wal"
            (mmap,) = connection.execute("PRAGMA mmap_size").fetchone()
            assert mmap > 0
            names = {
                name for (name,) in connection.execute(
                    "SELECT name FROM sqlite_master WHERE type = 'index'"
                )
            }
            assert "postings_value_covering" in names
            assert "pushdown_by_value" in names
            assert "pushdown_by_table" in names
            connection.close()
        finally:
            backend.close()


class TestAcceleratorMigration:
    """Schema-level corruption / migration on a bare connection."""

    def _index(self, hash_size: int = 128):
        corpus, _ = small_fixture()
        config = MateConfig(
            hash_size=hash_size, expected_unique_values=1000
        )
        return build_index(corpus, config=config)

    def test_ensure_builds_once_then_reuses(self):
        index = self._index()
        connection = sqlite3.connect(":memory:")
        first = ensure_accelerator(connection, "main", index)
        (marker,) = connection.execute(
            "SELECT MAX(rowid) FROM pushdown_postings"
        ).fetchone()
        second = ensure_accelerator(connection, "main", index)
        (after,) = connection.execute(
            "SELECT MAX(rowid) FROM pushdown_postings"
        ).fetchone()
        assert first == second and after == marker

    def test_meta_mismatch_triggers_rebuild(self):
        index = self._index()
        connection = sqlite3.connect(":memory:")
        build_accelerator(connection, "main", index)
        with connection:
            connection.execute(
                "UPDATE pushdown_meta SET hash_size = 64 "
                "WHERE index_name = 'main'"
            )
        assert not accelerator_matches(connection, "main", index)
        ensure_accelerator(connection, "main", index)
        assert accelerator_matches(connection, "main", index)
        assert accelerator_meta(connection, "main")["hash_size"] == 128

    def test_dropped_tables_report_absent_and_rebuild(self):
        index = self._index()
        connection = sqlite3.connect(":memory:")
        build_accelerator(connection, "main", index)
        connection.executescript(
            "DROP TABLE pushdown_meta; DROP TABLE pushdown_postings;"
        )
        assert accelerator_meta(connection, "main") is None
        assert not accelerator_matches(connection, "main", index)
        items = ensure_accelerator(connection, "main", index)
        assert items > 0
        assert accelerator_matches(connection, "main", index)

    def test_unsuitable_index_is_refused(self):
        connection = sqlite3.connect(":memory:")
        with pytest.raises(StorageError, match="does not expose"):
            build_accelerator(connection, "main", object())


class TestSessionDispatch:
    @pytest.fixture()
    def corpus_query(self):
        return small_fixture()

    def test_sql_engine_is_registered(self):
        assert "sql" in available_engines()

    def test_session_results_match_mate(self, corpus_query):
        corpus, query = corpus_query
        config = MateConfig(hash_size=128, k=3, expected_unique_values=1000)
        with DiscoverySession(corpus, config=config) as session:
            assert "sql" in session.engines()
            via_sql = session.discover(
                DiscoveryRequest(query=query, engine="sql")
            )
            via_mate = session.discover(
                DiscoveryRequest(query=query, engine="mate")
            )
            assert_pushdown_identical(via_sql.response, via_mate.response)

    def test_budgeted_dispatch_and_streaming(self, corpus_query):
        corpus, query = corpus_query
        config = MateConfig(hash_size=128, k=3, expected_unique_values=1000)
        with DiscoverySession(corpus, config=config) as session:
            limited = session.discover(
                DiscoveryRequest(query=query, engine="sql", max_pl_fetches=1)
            )
            assert not limited.complete
            assert limited.counters.budget_exhausted == 1
            streamed = list(session.discover_stream(
                DiscoveryRequest(query=query, engine="sql")
            ))
            final = streamed[-1]
            reference = session.discover(
                DiscoveryRequest(query=query, engine="mate")
            )
            assert_pushdown_identical(final.response, reference.response)

    def test_planner_options_are_refused(self, corpus_query):
        corpus, query = corpus_query
        config = MateConfig(hash_size=128, k=3, expected_unique_values=1000)
        with DiscoverySession(corpus, config=config) as session:
            with pytest.raises(DiscoveryError, match="planner"):
                session.discover(DiscoveryRequest(
                    query=query, engine="sql",
                    planner=PlannerOptions(mode="cost"),
                ))


class TestCLIEngineValidation:
    def _paths(self, tmp_path, running_example_corpus):
        from repro.storage import save_corpus_json, table_to_csv

        query, corpus = running_example_corpus
        corpus_path = tmp_path / "corpus.json"
        save_corpus_json(corpus, corpus_path)
        query_csv = table_to_csv(query.table, tmp_path / "query.csv")
        return corpus_path, query_csv

    def test_unknown_engine_fails_with_registry_listing(
        self, tmp_path, capsys, running_example_corpus
    ):
        from repro.cli import main

        corpus_path, query_csv = self._paths(tmp_path, running_example_corpus)
        exit_code = main([
            "discover", str(corpus_path), str(query_csv),
            "--key", "f_name", "l_name", "country",
            "--engine", "warp-drive",
        ])
        assert exit_code == 2
        error = capsys.readouterr().err
        assert "warp-drive" in error
        for name in available_engines():
            assert name in error

    def test_discover_runs_with_sql_engine(
        self, tmp_path, capsys, running_example_corpus
    ):
        from repro.cli import main

        corpus_path, query_csv = self._paths(tmp_path, running_example_corpus)
        exit_code = main([
            "discover", str(corpus_path), str(query_csv),
            "--key", "f_name", "l_name", "country",
            "--k", "2", "--engine", "sql",
        ])
        assert exit_code == 0
        assert "top-2" in capsys.readouterr().out

    def test_engine_help_lists_registry(self):
        from repro.cli import build_parser

        parser = build_parser()
        # The discover subparser's --engine help is generated from the
        # registry, so new engines appear without touching the CLI.
        text = parser.format_help()
        for action in parser._subparsers._group_actions:
            if "discover" in action.choices:
                text = action.choices["discover"].format_help()
        assert "sql" in text
