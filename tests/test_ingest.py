"""Tests for the online ingestion subsystem (repro.ingest).

Covers the WAL (append / replay / torn-tail tolerance), the delta buffer,
tombstones and segment merging, snapshot isolation, crash recovery of a
persisted live index, the session front door (``ingest`` / ``remove`` /
``engine="live"``), and the subsystem's central contract: after *any*
interleaving of add / remove / seal / merge operations, a live index is
byte-identical — fetch output and top-k results — to a bulk-built index
over the surviving tables (verified both with seeded-random schedules and a
hypothesis property test).
"""

from __future__ import annotations

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import (
    CompactionPolicy,
    Compactor,
    DiscoveryRequest,
    DiscoverySession,
    IndexClosedError,
    LiveIndex,
    MateConfig,
    ServiceConfig,
    Table,
    TableCorpus,
    build_index,
)
from repro.datamodel import QueryTable
from repro.exceptions import DiscoveryError, IndexError_, StorageError
from repro.ingest import IngestBuffer, WriteAheadLog, replay_wal

CONFIG = MateConfig(hash_size=128, k=5, expected_unique_values=100_000)

COLUMNS = ["name", "city", "team"]


def make_table(table_id: int, rng: random.Random, num_rows: int | None = None) -> Table:
    """A small random table over a narrow vocabulary (heavy value overlap)."""
    num_rows = num_rows or rng.randint(2, 6)
    rows = [
        [f"n{rng.randint(0, 12)}", f"c{rng.randint(0, 12)}", f"t{rng.randint(0, 12)}"]
        for _ in range(num_rows)
    ]
    return Table(table_id=table_id, name=f"table-{table_id}", columns=COLUMNS, rows=rows)


def make_query(rng: random.Random) -> QueryTable:
    table = Table(
        table_id=9_999_999,
        name="query",
        columns=["name", "city", "payload"],
        rows=[
            [f"n{rng.randint(0, 12)}", f"c{rng.randint(0, 12)}", f"p{i}"]
            for i in range(6)
        ],
    )
    return QueryTable(table=table, key_columns=["name", "city"])


def reference_index(live: LiveIndex, tables: dict[int, Table]):
    """Bulk-build the equivalence baseline: surviving tables in ingest order."""
    order = sorted(live.table_sequences().items(), key=lambda kv: kv[1])
    corpus = TableCorpus(name="reference", tables=[tables[tid] for tid, _ in order])
    return corpus, build_index(corpus, config=CONFIG)


ALL_PROBES = (
    [f"n{i}" for i in range(13)]
    + [f"c{i}" for i in range(13)]
    + [f"t{i}" for i in range(13)]
    + ["absent-value"]
)


# ----------------------------------------------------------------------
# Write-ahead log
# ----------------------------------------------------------------------
class TestWriteAheadLog:
    def test_append_replay_round_trip(self, tmp_path):
        rng = random.Random(1)
        table = make_table(7, rng)
        wal = WriteAheadLog(tmp_path / "wal.jsonl")
        wal.append_add_table(1, table)
        wal.append_remove_table(2, 7)
        wal.close()

        records = list(replay_wal(tmp_path / "wal.jsonl"))
        assert [record.op for record in records] == ["add_table", "remove_table"]
        assert records[0].seq == 1 and records[1].seq == 2
        assert records[0].table.table_id == 7
        assert records[0].table.rows == table.rows
        assert records[1].table_id == 7

    def test_missing_file_replays_empty(self, tmp_path):
        assert list(replay_wal(tmp_path / "nope.jsonl")) == []

    def test_torn_final_record_is_skipped(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        wal = WriteAheadLog(path)
        wal.append_add_table(1, make_table(0, random.Random(2)))
        wal.close()
        with path.open("a", encoding="utf-8") as handle:
            handle.write('{"op": "add_table", "seq": 2, "table": {"tab')
        records = list(replay_wal(path))
        assert len(records) == 1 and records[0].seq == 1

    def test_corruption_before_the_tail_raises(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        wal = WriteAheadLog(path)
        wal.append_remove_table(5, 3)
        wal.close()
        text = '{"op": "bogus"}\n' + path.read_text(encoding="utf-8")
        path.write_text(text, encoding="utf-8")
        with pytest.raises(StorageError):
            list(replay_wal(path))

    def test_truncate_drops_records(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        wal = WriteAheadLog(path)
        wal.append_remove_table(1, 1)
        wal.truncate()
        wal.append_remove_table(2, 2)
        wal.close()
        records = list(replay_wal(path))
        assert [record.seq for record in records] == [2]


# ----------------------------------------------------------------------
# Delta buffer
# ----------------------------------------------------------------------
class TestIngestBuffer:
    def test_add_and_drop(self):
        rng = random.Random(3)
        buffer = IngestBuffer(config=CONFIG)
        table = make_table(1, rng, num_rows=4)
        assert buffer.add_table(table, seq=1) == 4
        assert 1 in buffer and len(buffer) == 1
        assert buffer.num_rows() == 4
        assert buffer.drop_table(1) > 0
        assert buffer.drop_table(1) == 0  # idempotent
        assert len(buffer) == 0 and buffer.num_posting_items() == 0

    def test_super_keys_match_bulk_build(self):
        rng = random.Random(4)
        table = make_table(2, rng)
        buffer = IngestBuffer(config=CONFIG)
        buffer.add_table(table, seq=1)
        bulk = build_index(TableCorpus(tables=[table]), config=CONFIG)
        for row_index in range(table.num_rows):
            assert buffer.index.super_key(2, row_index) == bulk.super_key(2, row_index)

    def test_seal_freezes_the_buffer(self):
        rng = random.Random(5)
        buffer = IngestBuffer(config=CONFIG)
        buffer.add_table(make_table(1, rng), seq=1)
        sealed = buffer.seal()
        assert buffer.sealed
        assert sealed.num_posting_items() > 0  # still readable
        with pytest.raises(IndexClosedError):
            buffer.add_table(make_table(2, rng), seq=2)
        with pytest.raises(IndexClosedError):
            buffer.drop_table(1)


# ----------------------------------------------------------------------
# Live index semantics
# ----------------------------------------------------------------------
class TestLiveIndex:
    def run_schedule(self, seed: int) -> tuple[LiveIndex, dict[int, Table]]:
        """A randomized add/remove/re-add/seal/merge schedule."""
        rng = random.Random(seed)
        live = LiveIndex(config=CONFIG)
        tables: dict[int, Table] = {}
        next_id = 0
        for _ in range(rng.randint(15, 35)):
            move = rng.random()
            if move < 0.55 or not tables:
                table = make_table(next_id, rng)
                tables[table.table_id] = table
                live.add_table(table)
                next_id += 1
            elif move < 0.72:
                victim = rng.choice(sorted(tables))
                live.remove_table(victim)
                del tables[victim]
            elif move < 0.82 and not live.has_table(0) and 0 not in tables:
                table = make_table(0, rng)  # re-add a previously removed id
                tables[0] = table
                live.add_table(table)
            elif move < 0.92:
                live.seal()
            else:
                live.seal()
                live.merge(0, None)
        return live, tables

    @pytest.mark.parametrize("seed", [11, 23, 47, 91])
    def test_fetch_equivalence_after_random_schedule(self, seed):
        live, tables = self.run_schedule(seed)
        _corpus, bulk = reference_index(live, tables)
        assert live.fetch(ALL_PROBES) == bulk.fetch(ALL_PROBES)
        assert live.fetch_batch(ALL_PROBES) == bulk.fetch_batch(ALL_PROBES)
        assert live.num_posting_items() == bulk.num_posting_items()
        assert live.num_rows() == bulk.num_rows()
        assert live.indexed_tables() == bulk.indexed_tables()
        assert live.posting_count_for_values(ALL_PROBES) == (
            bulk.posting_count_for_values(ALL_PROBES)
        )

    @pytest.mark.parametrize("seed", [11, 47])
    def test_equivalence_survives_full_compaction(self, seed):
        live, tables = self.run_schedule(seed)
        _corpus, bulk = reference_index(live, tables)
        before = live.fetch(ALL_PROBES)
        assert live.compact() <= 1
        assert live.fetch(ALL_PROBES) == before == bulk.fetch(ALL_PROBES)

    def test_duplicate_add_is_refused(self):
        rng = random.Random(6)
        live = LiveIndex(config=CONFIG)
        live.add_table(make_table(1, rng))
        with pytest.raises(IndexError_):
            live.add_table(make_table(1, rng))

    def test_remove_and_readd_across_segments(self):
        rng = random.Random(7)
        live = LiveIndex(config=CONFIG)
        first = make_table(1, rng)
        live.add_table(first)
        live.seal()  # the copy now lives in an immutable segment
        assert live.remove_table(1) == 0  # masked, not physically dropped
        assert not live.has_table(1)
        assert live.indexed_tables() == set()
        assert live.fetch(ALL_PROBES) == []

        replacement = make_table(1, rng)
        live.add_table(replacement)
        assert live.has_table(1)
        _corpus, bulk = reference_index(live, {1: replacement})
        assert live.fetch(ALL_PROBES) == bulk.fetch(ALL_PROBES)

    def test_merge_purges_tombstones(self):
        rng = random.Random(8)
        live = LiveIndex(config=CONFIG)
        for table_id in range(4):
            live.add_table(make_table(table_id, rng))
            live.seal()
        live.remove_table(2)
        assert live.tombstones == {2: live.sequence}
        live.compact()
        assert live.tombstones == {}
        assert live.num_segments == 1
        assert live.indexed_tables() == {0, 1, 3}

    def test_snapshot_isolation_across_compaction(self):
        rng = random.Random(9)
        live = LiveIndex(config=CONFIG)
        tables = {}
        for table_id in range(6):
            table = make_table(table_id, rng)
            tables[table_id] = table
            live.add_table(table)
            if table_id % 2 == 0:
                live.seal()
        # The buffer is non-empty (table 5) when the snapshot pins it.
        snapshot = live.snapshot()
        pinned = snapshot.fetch(ALL_PROBES)
        pinned_generation = snapshot.generation

        # Compaction, removal, and new sealed data land after the pin...
        live.remove_table(1)
        live.compact()
        live.add_table(make_table(50, rng))
        live.seal()

        # ...and the pinned snapshot still answers from its generation.
        assert snapshot.generation == pinned_generation
        assert snapshot.fetch(ALL_PROBES) == pinned
        assert snapshot.indexed_tables() == set(tables)
        # The live view has moved on.
        assert live.indexed_tables() == (set(tables) - {1}) | {50}

    def test_closed_live_index_refuses_writes_but_reads(self):
        rng = random.Random(10)
        live = LiveIndex(config=CONFIG)
        live.add_table(make_table(1, rng))
        live.close()
        with pytest.raises(IndexClosedError):
            live.add_table(make_table(2, rng))
        with pytest.raises(IndexClosedError):
            live.remove_table(1)
        with pytest.raises(IndexClosedError):
            live.seal()
        assert live.has_table(1)
        assert live.fetch(ALL_PROBES) != []

    def test_compactor_policy_bounds_buffer_and_stack(self):
        rng = random.Random(12)
        live = LiveIndex(config=CONFIG)
        compactor = Compactor(
            live, CompactionPolicy(max_buffer_rows=5, max_segments=2)
        )
        tables = {}
        for table_id in range(12):
            table = make_table(table_id, rng, num_rows=4)
            tables[table_id] = table
            live.add_table(table)
            compactor.run_once()
        assert live.buffer_rows < 5 + 4  # at most one table over budget
        assert live.num_segments <= 2
        assert compactor.seals > 0 and compactor.merges > 0
        _corpus, bulk = reference_index(live, tables)
        assert live.fetch(ALL_PROBES) == bulk.fetch(ALL_PROBES)

    def test_background_compactor_thread(self):
        rng = random.Random(13)
        live = LiveIndex(config=CONFIG)
        policy = CompactionPolicy(
            max_buffer_rows=5, max_segments=2, interval_seconds=0.01
        )
        tables = {}
        with Compactor(live, policy):
            for table_id in range(20):
                table = make_table(table_id, rng, num_rows=4)
                tables[table_id] = table
                live.add_table(table)
        _corpus, bulk = reference_index(live, tables)
        assert live.fetch(ALL_PROBES) == bulk.fetch(ALL_PROBES)


# ----------------------------------------------------------------------
# Persistence and crash recovery
# ----------------------------------------------------------------------
class TestPersistence:
    def test_reopen_restores_exact_state(self, tmp_path):
        rng = random.Random(14)
        directory = tmp_path / "live"
        live = LiveIndex.open(directory, config=CONFIG)
        tables = {}
        for table_id in range(8):
            table = make_table(table_id, rng)
            tables[table_id] = table
            live.add_table(table)
            if table_id % 3 == 2:
                live.seal()
        live.remove_table(4)
        del tables[4]
        fetched = live.fetch(ALL_PROBES)
        live.close()

        reopened = LiveIndex.open(directory, config=CONFIG)
        assert reopened.fetch(ALL_PROBES) == fetched
        assert reopened.indexed_tables() == set(tables)
        assert reopened.sequence == live.sequence
        # Operations after the last seal were replayed from the WAL: tables
        # 6 and 7 were never sealed into a segment.
        recovered = {table.table_id for table in reopened.recovered_tables()}
        assert recovered == {6, 7}
        assert recovered <= set(tables)

    def test_wal_replay_after_simulated_crash(self, tmp_path):
        rng = random.Random(15)
        directory = tmp_path / "live"
        live = LiveIndex.open(directory, config=CONFIG)
        sealed_table = make_table(0, rng)
        live.add_table(sealed_table)
        live.seal()
        unsealed = make_table(1, rng)
        live.add_table(unsealed)
        live.remove_table(0)
        pre_crash = live.fetch(ALL_PROBES)
        expected_tables = live.indexed_tables()
        # Simulated crash: no close(), no seal — and a torn in-flight record.
        with (directory / "wal.jsonl").open("a", encoding="utf-8") as handle:
            handle.write('{"op": "add_table", "seq": 99, "tab')

        recovered = LiveIndex.open(directory, config=CONFIG)
        assert recovered.fetch(ALL_PROBES) == pre_crash
        assert recovered.indexed_tables() == expected_tables == {1}
        assert [t.table_id for t in recovered.recovered_tables()] == [1]
        # The recovered index keeps accepting (durable) writes.
        follow_up = make_table(2, rng)
        recovered.add_table(follow_up)
        assert recovered.has_table(2)

    def test_writes_after_torn_tail_recovery_survive_the_next_restart(
        self, tmp_path
    ):
        """Recovery truncates a torn WAL tail; an acknowledged write made
        after the resume must not merge into the torn line and vanish (or
        corrupt the log) at the second restart."""
        rng = random.Random(22)
        directory = tmp_path / "live"
        live = LiveIndex.open(directory, config=CONFIG)
        live.add_table(make_table(0, rng))
        # Crash with an in-flight record (no trailing newline).
        with (directory / "wal.jsonl").open("a", encoding="utf-8") as handle:
            handle.write('{"op": "add_table", "seq": 2, "tab')

        resumed = LiveIndex.open(directory, config=CONFIG)
        resumed.add_table(make_table(1, rng))  # acknowledged post-crash
        assert resumed.indexed_tables() == {0, 1}
        # Second abrupt restart: both acknowledged tables must survive.
        restarted = LiveIndex.open(directory, config=CONFIG)
        assert restarted.indexed_tables() == {0, 1}

    def test_merge_does_not_checkpoint_buffered_writes(self, tmp_path):
        """A mid-stream merge rewrites the manifest; acknowledged writes
        that only live in the WAL + buffer must survive a crash after it."""
        rng = random.Random(21)
        directory = tmp_path / "live"
        live = LiveIndex.open(directory, config=CONFIG)
        for table_id in range(3):
            live.add_table(make_table(table_id, rng))
            live.seal()
        live.add_table(make_table(10, rng))  # WAL + buffer only
        live.remove_table(0)  # tombstone, WAL only (no seal follows)
        assert live.merge(0, 2) is not None  # manifest rewritten mid-stream
        expected = live.indexed_tables()
        # Crash: no close(), no seal.
        recovered = LiveIndex.open(directory, config=CONFIG)
        assert recovered.has_table(10)
        assert not recovered.has_table(0)
        assert recovered.indexed_tables() == expected == {1, 2, 10}
        assert {t.table_id for t in recovered.recovered_tables()} == {10}

    def test_config_mismatch_is_refused(self, tmp_path):
        directory = tmp_path / "live"
        live = LiveIndex.open(directory, config=CONFIG)
        live.close()
        with pytest.raises(StorageError):
            LiveIndex.open(directory, config=CONFIG.with_hash_size(256))


# ----------------------------------------------------------------------
# Session front door and the "live" engine
# ----------------------------------------------------------------------
class TestSessionIngestion:
    def build_live_session(self) -> tuple[DiscoverySession, LiveIndex]:
        live = LiveIndex(config=CONFIG)
        session = DiscoverySession(
            TableCorpus(name="live-corpus"), live, config=CONFIG
        )
        return session, live

    def test_ingest_remove_and_live_engine_match_bulk(self):
        rng = random.Random(16)
        session, live = self.build_live_session()
        tables = {}
        with session:
            for table_id in range(10):
                table = make_table(table_id, rng, num_rows=5)
                tables[table_id] = table
                assert session.ingest(table) == 5
                if table_id % 4 == 3:
                    live.seal()
            session.remove(3)
            del tables[3]

            reference_corpus, bulk = reference_index(live, tables)
            with DiscoverySession(
                reference_corpus, bulk, config=CONFIG
            ) as bulk_session:
                query = make_query(rng)
                live_result = session.discover(
                    DiscoveryRequest(query=query, engine="live")
                )
                bulk_result = bulk_session.discover(
                    DiscoveryRequest(query=query, engine="mate")
                )
                assert live_result.result_tuples() == bulk_result.result_tuples()

    def test_ingested_tables_are_immediately_discoverable(self):
        rng = random.Random(17)
        session, live = self.build_live_session()
        with session:
            query = make_query(rng)
            request = DiscoveryRequest(query=query, engine="live")
            assert session.discover(request).result_tuples() == []
            # Ingest a perfectly joinable table: the query's own key columns.
            joinable = Table(
                table_id=0,
                name="joinable",
                columns=["name", "city"],
                rows=[[row[0], row[1]] for row in query.table.rows],
            )
            session.ingest(joinable)
            assert session.discover(request).result_tuples() == [
                (0, len(query.key_tuples()))
            ]
            session.remove(0)
            assert session.discover(request).result_tuples() == []

    def test_cache_is_invalidated_on_ingest(self):
        rng = random.Random(18)
        live = LiveIndex(config=CONFIG)
        session = DiscoverySession(
            TableCorpus(name="cached"),
            live,
            config=CONFIG,
            service_config=ServiceConfig(cache_capacity=64),
        )
        with session:
            query = make_query(rng)
            request = DiscoveryRequest(query=query, engine="live")
            session.discover(request)  # warms the cache with empty blocks
            joinable = Table(
                table_id=0,
                name="late-arrival",
                columns=["name", "city"],
                rows=[[row[0], row[1]] for row in query.table.rows],
            )
            session.ingest(joinable)
            assert session.discover(request).result_tuples() == [
                (0, len(query.key_tuples()))
            ]

    def test_re_ingesting_a_removed_id_replaces_the_corpus_entry(self):
        rng = random.Random(19)
        session, _live = self.build_live_session()
        with session:
            session.ingest(make_table(1, rng))
            with pytest.raises(IndexError_):
                session.ingest(make_table(1, rng))
            session.remove(1)
            replacement = make_table(1, rng)
            session.ingest(replacement)
            assert session.corpus.get_table(1) is replacement

    def test_static_session_refuses_ingestion_and_live_engine(self):
        rng = random.Random(20)
        corpus = TableCorpus(name="static", tables=[make_table(0, rng)])
        with DiscoverySession(corpus, config=CONFIG) as session:
            with pytest.raises(DiscoveryError):
                session.ingest(make_table(1, rng))
            # remove() must not fall through to the static index's
            # (maintenance-layer, destructive) remove_table.
            with pytest.raises(DiscoveryError):
                session.remove(0)
            assert session.base_index.indexed_tables() == {0}
            with pytest.raises(DiscoveryError):
                session.discover(
                    DiscoveryRequest(query=make_query(rng), engine="live")
                )


# ----------------------------------------------------------------------
# Property-based round trip (the ISSUE's equivalence criterion)
# ----------------------------------------------------------------------
OPS = st.lists(st.integers(min_value=0, max_value=9), min_size=1, max_size=30)


class TestPropertyEquivalence:
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(ops=OPS, seed=st.integers(min_value=0, max_value=2**20))
    def test_any_interleaving_matches_bulk_rebuild(self, ops, seed):
        """LiveIndex after any add/remove/compact interleaving == bulk build."""
        rng = random.Random(seed)
        live = LiveIndex(config=CONFIG)
        tables: dict[int, Table] = {}
        next_id = 0
        for op in ops:
            if op <= 4:  # add a fresh table
                table = make_table(next_id, rng)
                tables[next_id] = table
                live.add_table(table)
                next_id += 1
            elif op <= 6 and tables:  # remove (possibly re-add later)
                victim = rng.choice(sorted(tables))
                live.remove_table(victim)
                del tables[victim]
            elif op == 7:
                live.seal()
            elif op == 8:
                live.seal()
                live.merge(0, None)
            elif op == 9:
                live.compact()

        _corpus, bulk = reference_index(live, tables)
        assert live.fetch(ALL_PROBES) == bulk.fetch(ALL_PROBES)
        assert live.indexed_tables() == bulk.indexed_tables()
        assert live.num_posting_items() == bulk.num_posting_items()

    @settings(max_examples=10, deadline=None)
    @given(ops=OPS, seed=st.integers(min_value=0, max_value=2**20))
    def test_topk_matches_bulk_rebuild(self, ops, seed):
        """engine="live" top-k == bulk-built index top-k, any interleaving."""
        rng = random.Random(seed)
        live = LiveIndex(config=CONFIG)
        session = DiscoverySession(TableCorpus(name="prop"), live, config=CONFIG)
        tables: dict[int, Table] = {}
        next_id = 0
        with session:
            for op in ops:
                if op <= 4:
                    table = make_table(next_id, rng)
                    tables[next_id] = table
                    session.ingest(table)
                    next_id += 1
                elif op <= 6 and tables:
                    victim = rng.choice(sorted(tables))
                    session.remove(victim)
                    del tables[victim]
                elif op == 7:
                    live.seal()
                else:
                    live.compact()

            reference_corpus, bulk = reference_index(live, tables)
            query = make_query(rng)
            live_result = session.discover(
                DiscoveryRequest(query=query, engine="live")
            )
            with DiscoverySession(
                reference_corpus, bulk, config=CONFIG
            ) as bulk_session:
                bulk_result = bulk_session.discover(
                    DiscoveryRequest(query=query, engine="mate")
                )
            assert live_result.result_tuples() == bulk_result.result_tuples()
