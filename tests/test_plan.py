"""The planner/executor pipeline: options, planning, byte-identity, budgets.

The load-bearing guarantee of the refactor is pinned here: with re-planning
disabled, the executor's output is *byte-identical* to the pre-refactor
monolithic loop (kept verbatim as :func:`tests.helpers.legacy_discover`)
across every registered engine and the live index; planner knobs only ever
change which posting lists get fetched, never the reported scores; and the
request budget ledger covers fetches from every stage, including re-planned
seed fetches.
"""

from __future__ import annotations

import pytest

from repro import MateConfig, MateDiscovery, build_index
from repro.api import DiscoveryRequest, DiscoverySession, PlannerOptions
from repro.api.request import RequestBudget
from repro.config import ServiceConfig
from repro.core.parallel import merge_discovery_results
from repro.datagen import build_workload
from repro.datamodel import TableCorpus
from repro.exceptions import ConfigurationError, DiscoveryError
from repro.experiments.planner import (
    _build_drift_scenario,
    _build_skew_scenario,
    PLANNER_CHECK_EVERY,
    PLANNER_REPLAN_FACTOR,
    PLANNER_SAMPLE_SIZE,
)
from repro.experiments.runner import ExperimentSettings
from repro.ingest import LiveIndex
from repro.plan import (
    PIPELINE_STAGES,
    Planner,
    QueryPlan,
)

from tests.helpers import assert_results_byte_identical, legacy_discover

pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")


@pytest.fixture(scope="module")
def plan_config() -> MateConfig:
    return MateConfig(hash_size=128, k=5, expected_unique_values=50_000)


@pytest.fixture(scope="module")
def workload():
    return build_workload("WT_100", seed=11, num_queries=2, corpus_scale=0.2)


@pytest.fixture(scope="module", params=["columnar", "legacy"])
def index(request, workload, plan_config):
    config = MateConfig(
        hash_size=plan_config.hash_size,
        k=plan_config.k,
        expected_unique_values=plan_config.expected_unique_values,
        index_layout=request.param,
    )
    return build_index(workload.corpus, config=config)


def adaptive_options() -> PlannerOptions:
    return PlannerOptions(
        mode="adaptive",
        sample_size=PLANNER_SAMPLE_SIZE,
        replan_check_every=PLANNER_CHECK_EVERY,
        replan_factor=PLANNER_REPLAN_FACTOR,
    )


class CountingIndex:
    """Index wrapper counting every probe value handed to ``fetch_batch``."""

    def __init__(self, inner):
        self.inner = inner
        self.fetched_values = 0

    def fetch_batch(self, values):
        materialised = list(values)
        self.fetched_values += len(materialised)
        return self.inner.fetch_batch(materialised)

    def __getattr__(self, name):
        return getattr(self.inner, name)


class TestPlannerOptions:
    def test_defaults_are_legacy(self):
        options = PlannerOptions()
        assert options.mode == "selector"
        assert not options.cost_based
        assert not options.adaptive

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            PlannerOptions(mode="psychic")
        with pytest.raises(ConfigurationError):
            PlannerOptions(replan_factor=0.5)
        with pytest.raises(ConfigurationError):
            PlannerOptions(replan_check_every=0)
        with pytest.raises(ConfigurationError):
            PlannerOptions(sample_size=0)
        with pytest.raises(ConfigurationError):
            PlannerOptions(fetch_weight=-1.0)

    def test_request_carries_and_gates_options(self, workload):
        query = workload.queries[0]
        default = DiscoveryRequest(query=query)
        assert not default.planner_requested
        tuned = DiscoveryRequest(query=query, planner=PlannerOptions(mode="cost"))
        assert tuned.planner_requested
        # The engine-cache signature excludes planner options (per-run knob).
        assert default.engine_signature() == tuned.engine_signature()
        with pytest.raises(DiscoveryError):
            DiscoveryRequest(query=query, planner="cost")  # type: ignore[arg-type]


class TestPlanner:
    def test_selector_mode_follows_column_selector(
        self, workload, index, plan_config
    ):
        engine = MateDiscovery(workload.corpus, index, config=plan_config)
        query = workload.queries[0]
        plan = Planner(engine).plan(query)
        assert isinstance(plan, QueryPlan)
        assert plan.mode == "selector"
        assert plan.seed.column == engine.column_selector(query, index)
        assert plan.alternatives == []
        assert plan.stages == PIPELINE_STAGES

    def test_cost_mode_ranks_every_key_column(self, workload, index, plan_config):
        engine = MateDiscovery(workload.corpus, index, config=plan_config)
        query = workload.queries[0]
        plan = Planner(engine, PlannerOptions(mode="cost")).plan(query)
        columns = [plan.seed.column, *(c.column for c in plan.alternatives)]
        assert sorted(columns) == sorted(query.key_columns)
        costs = [plan.seed.cost, *(c.cost for c in plan.alternatives)]
        assert costs == sorted(costs)

    def test_cost_mode_picks_the_cold_column_on_skew(self, plan_config):
        corpus, query = _build_skew_scenario(ExperimentSettings(corpus_scale=0.3))
        index = build_index(corpus, config=plan_config)
        engine = MateDiscovery(corpus, index, config=plan_config)
        plan = Planner(engine, PlannerOptions(mode="cost")).plan(query)
        assert plan.seed.column == "cold"
        # The classic cardinality heuristic walks into the hot column.
        assert engine.column_selector(query, index) == "hot"


class TestByteIdentityAllEngines:
    """With re-planning disabled, output == the pre-refactor loop, everywhere."""

    def test_mate_matches_legacy(self, workload, index, plan_config):
        engine = MateDiscovery(workload.corpus, index, config=plan_config)
        for query in workload.queries:
            assert_results_byte_identical(
                engine.discover(query), legacy_discover(engine, query)
            )

    def test_mate_matches_legacy_under_budget(self, workload, index, plan_config):
        engine = MateDiscovery(workload.corpus, index, config=plan_config)
        query = workload.queries[0]
        for limit in (0, 1, 3, 10_000):
            assert_results_byte_identical(
                engine.discover(query, budget=RequestBudget(max_pl_fetches=limit)),
                legacy_discover(
                    engine, query, budget=RequestBudget(max_pl_fetches=limit)
                ),
            )

    def test_streaming_snapshots_match_legacy(self, workload, index, plan_config):
        engine = MateDiscovery(workload.corpus, index, config=plan_config)
        query = workload.queries[0]
        mine: list[list[tuple[int, int]]] = []
        theirs: list[list[tuple[int, int]]] = []
        engine.discover(query, on_snapshot=mine.append)
        legacy_discover(engine, query, on_snapshot=theirs.append)
        assert mine == theirs

    def test_scr_matches_legacy(self, workload, index, plan_config):
        from repro.baselines import ScrDiscovery

        engine = ScrDiscovery(workload.corpus, index, config=plan_config)
        query = workload.queries[0]
        assert_results_byte_identical(
            engine.discover(query), legacy_discover(engine, query)
        )

    def test_sharded_matches_merged_legacy_shards(self, workload, plan_config):
        from repro.core.parallel import ShardedMateDiscovery

        engine = ShardedMateDiscovery(
            workload.corpus, num_shards=3, config=plan_config
        )
        query = workload.queries[0]
        result = engine.discover(query, k=plan_config.k)
        shard_results = []
        for position, shard in enumerate(engine.shards):
            shard_engine = MateDiscovery(
                shard, engine.shard_indexes[position], config=plan_config
            )
            shard_results.append(
                legacy_discover(shard_engine, query, k=plan_config.k)
            )
        oracle = merge_discovery_results(
            shard_results, k=plan_config.k, system=engine.system_name
        )
        assert result.result_tuples() == oracle.result_tuples()

    def test_live_index_matches_legacy(self, workload, plan_config):
        live = LiveIndex(config=plan_config)
        corpus = TableCorpus(name="live-equiv")
        for table in workload.corpus:
            corpus.add_table(table)
            live.add_table(table)
        live.seal()
        engine = MateDiscovery(corpus, live, config=plan_config)
        query = workload.queries[0]
        assert_results_byte_identical(
            engine.discover(query), legacy_discover(engine, query)
        )

    def test_every_registered_engine_via_session_matches_reference(
        self, workload, plan_config
    ):
        """Session dispatch across all six engines equals the legacy path.

        Pipeline engines (mate, scr) are compared byte-for-byte against the
        verbatim pre-refactor loop; the engines the refactor did not touch
        (mcr, josie, prefix_tree, sharded) are compared against direct
        engine construction, proving dispatch still adds no behaviour.
        """
        query = workload.queries[0]
        with DiscoverySession(
            workload.corpus,
            config=plan_config,
            service_config=ServiceConfig(cache_capacity=0, num_shards=2),
        ) as session:
            for name in ("mate", "scr"):
                engine = session._engine_for(
                    DiscoveryRequest(query=query, engine=name)
                )[1]
                result = session.discover(
                    DiscoveryRequest(query=query, engine=name, k=plan_config.k)
                )
                assert_results_byte_identical(
                    result.response,
                    legacy_discover(engine, query, k=plan_config.k),
                )
            for name in ("mcr", "josie", "prefix_tree", "sharded"):
                request = DiscoveryRequest(query=query, engine=name, k=plan_config.k)
                engine = session._engine_for(request)[1]
                assert (
                    session.discover(request).result_tuples()
                    == engine.discover(query, k=plan_config.k).result_tuples()
                )


class TestAdaptiveExecution:
    def test_adaptive_replans_and_keeps_exact_topk(self, plan_config):
        corpus, query = _build_drift_scenario(ExperimentSettings(corpus_scale=0.3))
        index = build_index(corpus, config=plan_config)
        engine = MateDiscovery(corpus, index, config=plan_config)
        baseline = engine.discover(query, k=plan_config.k)
        adaptive = engine.discover(
            query, k=plan_config.k, planner=adaptive_options()
        )
        assert adaptive.plan is not None
        assert len(adaptive.plan.replans) == 1
        assert adaptive.plan.seed_column == "alt"
        assert adaptive.plan.replans[0].from_column == "trap"
        assert adaptive.result_tuples() == baseline.result_tuples()
        assert adaptive.counters.extra["replans"] == 1.0
        assert adaptive.plan.discarded_postings > 0

    def test_replanned_run_cannot_exceed_fetch_ledger(self, plan_config):
        """Regression: every stage's fetches count against ``max_pl_fetches``.

        The budget covers the first (abandoned) seed column *and* the
        re-planned one; the index wrapper independently counts what actually
        reached the index.
        """
        corpus, query = _build_drift_scenario(ExperimentSettings(corpus_scale=0.3))
        config = plan_config
        counting = CountingIndex(build_index(corpus, config=config))
        engine = MateDiscovery(corpus, counting, config=config)
        limit = PLANNER_CHECK_EVERY + 8  # replan happens, then the ledger dries up
        budget = RequestBudget(max_pl_fetches=limit)
        result = engine.discover(
            query, k=config.k, budget=budget, planner=adaptive_options()
        )
        assert result.plan is not None and len(result.plan.replans) == 1
        assert counting.fetched_values <= limit
        assert budget.remaining_pl_fetches == 0
        assert budget.exhausted
        assert result.counters.budget_exhausted == 1
        assert not result.complete

    def test_adaptive_with_ample_budget_charges_all_attempts(self, plan_config):
        corpus, query = _build_drift_scenario(ExperimentSettings(corpus_scale=0.3))
        counting = CountingIndex(build_index(corpus, config=plan_config))
        engine = MateDiscovery(corpus, counting, config=plan_config)
        budget = RequestBudget(max_pl_fetches=10_000)
        engine.discover(
            query, k=plan_config.k, budget=budget, planner=adaptive_options()
        )
        assert 10_000 - budget.remaining_pl_fetches == counting.fetched_values


class TestStageAccounting:
    def test_all_four_stages_are_recorded(self, workload, index, plan_config):
        engine = MateDiscovery(workload.corpus, index, config=plan_config)
        result = engine.discover(workload.queries[0])
        assert set(result.counters.stages) == set(PIPELINE_STAGES)
        generation = result.counters.stages["candidate_generation"]
        assert generation.calls == 1
        assert generation.items_out == result.counters.pl_items_fetched
        prefilter = result.counters.stages["superkey_prefilter"]
        assert prefilter.calls == result.counters.tables_evaluated
        assert prefilter.items_in <= result.counters.pl_items_fetched
        assert all(
            stats.seconds >= 0.0 for stats in result.counters.stages.values()
        )

    def test_stage_stats_merge(self, workload, index, plan_config):
        engine = MateDiscovery(workload.corpus, index, config=plan_config)
        first = engine.discover(workload.queries[0]).counters
        second = engine.discover(workload.queries[1]).counters
        expected_calls = (
            first.stages["topk_maintenance"].calls
            + second.stages["topk_maintenance"].calls
        )
        first.merge(second)
        assert first.stages["topk_maintenance"].calls == expected_calls

    def test_session_result_serialises_stages_and_plan(self, workload, plan_config):
        import json

        with DiscoverySession(workload.corpus, config=plan_config) as session:
            result = session.discover(
                DiscoveryRequest(
                    query=workload.queries[0], planner=PlannerOptions(mode="cost")
                )
            )
        document = result.to_dict()
        assert document["schema_version"] == 2
        assert document["request"]["planner_mode"] == "cost"
        assert set(document["stages"]) == set(PIPELINE_STAGES)
        assert document["plan"]["mode"] == "cost"
        assert document["plan"]["executed_seed_column"]
        # v1 fields must survive the bump.
        for key in ("engine", "system", "k", "complete", "tables", "counters"):
            assert key in document
        json.dumps(document)  # and the whole envelope stays serialisable


class TestSessionPlannerDispatch:
    def test_planner_options_ride_the_session(self, workload, plan_config):
        with DiscoverySession(workload.corpus, config=plan_config) as session:
            query = workload.queries[0]
            default = session.discover(DiscoveryRequest(query=query))
            cost = session.discover(
                DiscoveryRequest(query=query, planner=PlannerOptions(mode="cost"))
            )
            assert default.plan_explain()["mode"] == "selector"
            assert cost.plan_explain()["mode"] == "cost"
            assert [j for _, j in default.result_tuples()] == [
                j for _, j in cost.result_tuples()
            ]

    def test_non_planner_engine_refuses_options(self, workload, plan_config):
        with DiscoverySession(workload.corpus, config=plan_config) as session:
            request = DiscoveryRequest(
                query=workload.queries[0],
                engine="mcr",
                planner=PlannerOptions(mode="cost"),
            )
            with pytest.raises(DiscoveryError, match="planner options"):
                session.discover(request)

    def test_streaming_accepts_planner_options(self, workload, plan_config):
        with DiscoverySession(workload.corpus, config=plan_config) as session:
            request = DiscoveryRequest(
                query=workload.queries[0], planner=PlannerOptions(mode="cost")
            )
            outputs = list(session.discover_stream(request))
            final = outputs[-1]
            assert final.complete
            assert final.plan_explain()["mode"] == "cost"

    def test_baseline_engines_still_serialise_without_plan(
        self, workload, plan_config
    ):
        with DiscoverySession(workload.corpus, config=plan_config) as session:
            result = session.discover(
                DiscoveryRequest(query=workload.queries[0], engine="mcr")
            )
        document = result.to_dict()
        assert document["plan"] is None
        assert document["stages"] == {}
