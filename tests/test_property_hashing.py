"""Property-based tests (hypothesis) for the hashing layer.

The single most important property is the paper's no-false-negative lemma
(Section 6.3): for *any* row and *any* composite key whose values all appear
in the row, the row super key must cover the key's aggregated hash — for every
registered hash function, at every hash size.
"""

import string

from hypothesis import given, settings, strategies as st

from repro.config import MateConfig
from repro.hashing import (
    SuperKeyGenerator,
    create_hash_function,
    popcount,
    rotate_left,
    rotate_right,
    subsumes,
)

#: Cell values: printable-ish strings including unicode and digits.
cell_values = st.text(
    alphabet=st.sampled_from(
        string.ascii_letters + string.digits + " -_./äöüéßλ中"
    ),
    min_size=0,
    max_size=20,
)

rows = st.lists(cell_values, min_size=1, max_size=8)

hash_names = st.sampled_from(
    ["xash", "bloom", "lhbf", "hashtable", "md5", "murmur", "cityhash", "simhash",
     "xash_length", "xash_rare", "xash_char_loc", "xash_char_len_loc"]
)

hash_sizes = st.sampled_from([64, 128, 256, 512])


def make_generator(name: str, hash_size: int) -> SuperKeyGenerator:
    config = MateConfig(hash_size=hash_size, expected_unique_values=700_000_000)
    return SuperKeyGenerator(create_hash_function(name, config))


class TestNoFalseNegatives:
    @given(row=rows, name=hash_names, hash_size=hash_sizes, data=st.data())
    @settings(max_examples=150, deadline=None)
    def test_key_subset_of_row_is_always_covered(self, row, name, hash_size, data):
        generator = make_generator(name, hash_size)
        key_size = data.draw(st.integers(1, len(row)))
        key_positions = data.draw(
            st.lists(
                st.integers(0, len(row) - 1),
                min_size=key_size,
                max_size=key_size,
                unique=True,
            )
        )
        normalized_row = [value.strip().lower() for value in row]
        key = tuple(normalized_row[i] for i in key_positions)
        row_super_key = generator.row_super_key(normalized_row)
        key_super_key = generator.key_super_key(key)
        assert generator.covers(row_super_key, key_super_key)
        covered, _ = generator.covers_with_short_circuit(row_super_key, key_super_key)
        assert covered


class TestHashInvariants:
    @given(value=cell_values, name=hash_names, hash_size=hash_sizes)
    @settings(max_examples=150, deadline=None)
    def test_hash_fits_width_and_is_deterministic(self, value, name, hash_size):
        generator = make_generator(name, hash_size)
        hashed = generator.value_hash(value.strip().lower())
        assert 0 <= hashed < (1 << hash_size)
        assert hashed == generator.value_hash(value.strip().lower())

    @given(value=cell_values, hash_size=hash_sizes)
    @settings(max_examples=100, deadline=None)
    def test_xash_respects_alpha_budget(self, value, hash_size):
        config = MateConfig(hash_size=hash_size, expected_unique_values=700_000_000)
        hash_function = create_hash_function("xash", config)
        assert popcount(hash_function.hash_value(value.strip().lower())) <= config.alpha

    @given(row=rows, name=hash_names)
    @settings(max_examples=100, deadline=None)
    def test_aggregation_is_monotone(self, row, name):
        generator = make_generator(name, 128)
        normalized_row = [value.strip().lower() for value in row]
        partial = generator.row_super_key(normalized_row[:-1])
        full = generator.row_super_key(normalized_row)
        assert subsumes(full, partial)

    @given(row=rows, name=hash_names)
    @settings(max_examples=100, deadline=None)
    def test_aggregation_is_order_independent(self, row, name):
        generator = make_generator(name, 128)
        normalized_row = [value.strip().lower() for value in row]
        assert generator.row_super_key(normalized_row) == generator.row_super_key(
            list(reversed(normalized_row))
        )


class TestRotationProperties:
    @given(
        value=st.integers(min_value=0, max_value=(1 << 64) - 1),
        shift=st.integers(min_value=0, max_value=200),
        width=st.integers(min_value=1, max_value=64),
    )
    @settings(max_examples=200, deadline=None)
    def test_rotation_is_a_bijection(self, value, shift, width):
        value &= (1 << width) - 1
        rotated = rotate_left(value, shift, width)
        assert rotate_right(rotated, shift, width) == value
        assert popcount(rotated) == popcount(value)

    @given(
        value=st.integers(min_value=0, max_value=(1 << 64) - 1),
        width=st.integers(min_value=1, max_value=64),
    )
    @settings(max_examples=100, deadline=None)
    def test_rotation_by_width_is_identity(self, value, width):
        value &= (1 << width) - 1
        assert rotate_left(value, width, width) == value


class TestSubsumptionProperties:
    @given(
        a=st.integers(min_value=0, max_value=(1 << 128) - 1),
        b=st.integers(min_value=0, max_value=(1 << 128) - 1),
    )
    @settings(max_examples=200, deadline=None)
    def test_subsumes_iff_or_equals_superset(self, a, b):
        assert subsumes(a, b) == ((a | b) == a)

    @given(a=st.integers(min_value=0, max_value=(1 << 128) - 1))
    @settings(max_examples=50, deadline=None)
    def test_reflexive_and_zero(self, a):
        assert subsumes(a, a)
        assert subsumes(a, 0)
