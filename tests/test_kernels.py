"""Differential suite pinning the vectorized prefilter kernels to the loop.

Every kernel entry point is driven against an independent per-row reference
implementation that replicates the legacy ``SuperKeyPrefilter`` scan —
``RowFilter.passes`` counter semantics, the XASH length-segment
short-circuit, and table-filtering rule 2 — over hypothesis-generated
blocks:

* :func:`repro.index.kernels.prefilter_block` under both the stdlib
  fallback and (when installed) the numpy kernel, in ``superkey`` and
  ``none`` row-filter modes;
* the coverage-splicing fast path (``entry_coverage`` /
  ``FetchBlock.query_coverage`` / ``prefilter_table_block``), exercised
  through a real columnar :class:`~repro.index.inverted.InvertedIndex` and
  :func:`~repro.index.columnar.group_into_table_blocks`, exactly as
  ``SuperKeyPrefilter._prefilter_mapped`` wires it.

Identity is exact: survivor pairs in order, ``rows_checked``,
``rows_matched``, ``superkey_checks``, ``short_circuit_hits``, and the
rule-2 abandon flag.  The numpy cases are skipped (not silently degraded)
when numpy is unavailable, so the no-numpy CI entry still proves the
fallback against the reference.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.index import InvertedIndex, group_into_table_blocks
from repro.index.kernels import (
    entry_coverage,
    numpy_available,
    prefilter_block,
    prefilter_table_block,
)

#: Kernels the differential properties run against the reference.
KERNELS = ["fallback"] + (["numpy"] if numpy_available() else [])

WIDTHS = [1, 2, 4, 8, 16]

VALUES = ["v0", "v1", "v2", "v3"]


# ----------------------------------------------------------------------
# The reference: a per-row loop replicating the legacy stage exactly.
# ----------------------------------------------------------------------
def reference_prefilter(
    *,
    values,
    row_indexes,
    packed,
    width,
    key_map,
    posting_count,
    mode="superkey",
    length_shift=None,
    min_joinability=None,
):
    """The legacy ``SuperKeyPrefilter._execute_rows`` scan, spelled out.

    Per row: the rule-2 abandon check (``L_t - r_checked + r_match <= j_k``)
    *before* the row is counted, then one ``RowFilter.passes`` call per
    key-map entry — a ``superkey_checks`` increment, the length-segment
    short-circuit (``(key >> s) & ~(row >> s) != 0`` counted into
    ``short_circuit_hits``), and the subsumption test ``key & ~row == 0``.
    Mode ``"none"`` accepts every entry without touching the counters.
    """
    n = len(row_indexes)
    track_sc = (
        length_shift is not None and width > 0 and length_shift < 8 * width
    )
    rows_checked = 0
    rows_matched = 0
    superkey_checks = 0
    short_circuit_hits = 0
    surviving = []
    abandoned = False
    for position in range(n):
        if (
            min_joinability is not None
            and posting_count - rows_checked + rows_matched <= min_joinability
        ):
            abandoned = True
            break
        rows_checked += 1
        entries = key_map.get(values[position], ())
        row_survived = False
        if mode == "superkey" and entries:
            row = int.from_bytes(
                packed[position * width : (position + 1) * width], "big"
            )
        for key_tuple, key_super_key in entries:
            if mode == "none":
                surviving.append((row_indexes[position], key_tuple))
                row_survived = True
                continue
            superkey_checks += 1
            if track_sc and (key_super_key >> length_shift) & ~(row >> length_shift):
                short_circuit_hits += 1
            if key_super_key & ~row == 0:
                surviving.append((row_indexes[position], key_tuple))
                row_survived = True
        if row_survived:
            rows_matched += 1
    return {
        "surviving": surviving,
        "rows_checked": rows_checked,
        "rows_matched": rows_matched,
        "superkey_checks": superkey_checks,
        "short_circuit_hits": short_circuit_hits,
        "abandoned": abandoned,
    }


def as_dict(result) -> dict:
    return {
        "surviving": list(result.surviving),
        "rows_checked": result.rows_checked,
        "rows_matched": result.rows_matched,
        "superkey_checks": result.superkey_checks,
        "short_circuit_hits": result.short_circuit_hits,
        "abandoned": result.abandoned,
    }


# ----------------------------------------------------------------------
# Case generation: packed blocks with biased keys so coverage both hits
# and misses, plus optional short-circuit segment and rule-2 bound.
# ----------------------------------------------------------------------
@st.composite
def block_cases(draw):
    width = draw(st.sampled_from(WIDTHS))
    bits = 8 * width
    n = draw(st.integers(min_value=0, max_value=24))
    row_keys = draw(
        st.lists(
            st.integers(min_value=0, max_value=(1 << bits) - 1),
            min_size=n,
            max_size=n,
        )
    )
    values = draw(st.lists(st.sampled_from(VALUES), min_size=n, max_size=n))
    # Non-trivial but deterministic row indexes (table rows need not be 0..n).
    row_indexes = [3 * position + 1 for position in range(n)]
    packed = b"".join(key.to_bytes(width, "big") for key in row_keys)

    key_map = {}
    for value in VALUES:
        entries = []
        for level in range(draw(st.integers(min_value=0, max_value=2))):
            if row_keys and draw(st.booleans()):
                # Bias towards subsets of a real row key so coverage fires.
                base = row_keys[draw(st.integers(0, len(row_keys) - 1))]
                mask = draw(st.integers(min_value=0, max_value=(1 << bits) - 1))
                key = base & mask
            else:
                key = draw(st.integers(min_value=0, max_value=(1 << bits) - 1))
            entries.append(((f"{value}-k{level}",), key))
        if entries:
            key_map[value] = tuple(entries)

    length_shift = draw(
        st.one_of(st.none(), st.integers(min_value=0, max_value=bits - 1))
    )
    min_joinability = draw(
        st.one_of(st.none(), st.integers(min_value=0, max_value=n + 2))
    )
    return {
        "values": values,
        "row_indexes": row_indexes,
        "packed": packed,
        "width": width,
        "key_map": key_map,
        "posting_count": n,
        "length_shift": length_shift,
        "min_joinability": min_joinability,
    }


@pytest.mark.parametrize("kernel", KERNELS)
class TestPrefilterBlockDifferential:
    @given(case=block_cases())
    @settings(max_examples=120, deadline=None)
    def test_superkey_mode_matches_reference(self, kernel, case):
        result = prefilter_block(
            values=case["values"],
            row_indexes=case["row_indexes"],
            key_map=case["key_map"],
            posting_count=case["posting_count"],
            packed=case["packed"],
            width=case["width"],
            mode="superkey",
            length_shift=case["length_shift"],
            min_joinability=case["min_joinability"],
            kernel=kernel,
        )
        assert as_dict(result) == reference_prefilter(mode="superkey", **case)

    @given(case=block_cases())
    @settings(max_examples=60, deadline=None)
    def test_none_mode_matches_reference(self, kernel, case):
        result = prefilter_block(
            values=case["values"],
            row_indexes=case["row_indexes"],
            key_map=case["key_map"],
            posting_count=case["posting_count"],
            mode="none",
            min_joinability=case["min_joinability"],
            kernel=kernel,
        )
        expected = reference_prefilter(mode="none", **case)
        assert as_dict(result) == expected

    def test_oversize_key_takes_scalar_patch(self, kernel):
        # A key wider than the packed slots exercises the per-row
        # arbitrary-precision escape hatch inside both kernels.
        width = 2
        values = ["v0", "v0", "v1"]
        row_indexes = [0, 1, 2]
        packed = (0xFFFF).to_bytes(2, "big") * 3
        key_map = {
            "v0": ((("wide",), 1 << 40), (("narrow",), 0x00FF)),
            "v1": ((("narrow",), 0x0F00),),
        }
        case = dict(
            values=values,
            row_indexes=row_indexes,
            packed=packed,
            width=width,
            key_map=key_map,
            posting_count=3,
            length_shift=8,
            min_joinability=None,
        )
        result = prefilter_block(mode="superkey", kernel=kernel, **case)
        assert as_dict(result) == reference_prefilter(mode="superkey", **case)

    def test_empty_block(self, kernel):
        result = prefilter_block(
            values=[],
            row_indexes=[],
            key_map={"v0": ((("k",), 1),)},
            posting_count=0,
            packed=b"",
            width=4,
            mode="superkey",
            kernel=kernel,
        )
        assert as_dict(result) == {
            "surviving": [],
            "rows_checked": 0,
            "rows_matched": 0,
            "superkey_checks": 0,
            "short_circuit_hits": 0,
            "abandoned": False,
        }


@pytest.mark.parametrize("kernel", KERNELS)
class TestEntryCoverageDifferential:
    @given(case=block_cases())
    @settings(max_examples=80, deadline=None)
    def test_coverage_bitmaps_match_per_row_tests(self, kernel, case):
        packed, width = case["packed"], case["width"]
        n = case["posting_count"]
        length_shift = case["length_shift"]
        track_sc = length_shift is not None and length_shift < 8 * width
        for entries in case["key_map"].values():
            for _key_tuple, key in entries:
                cov, sc = entry_coverage(packed, width, key, length_shift, kernel)
                rows = [
                    int.from_bytes(
                        packed[position * width : (position + 1) * width], "big"
                    )
                    for position in range(n)
                ]
                assert list(cov) == [int(key & ~row == 0) for row in rows]
                if track_sc:
                    assert sc is not None
                    assert list(sc) == [
                        int((key >> length_shift) & ~(row >> length_shift) != 0)
                        for row in rows
                    ]
                else:
                    assert sc is None

    def test_rejects_misaligned_buffer(self, kernel):
        with pytest.raises(ValueError):
            entry_coverage(b"\x00\x00\x00", 2, 1, None, kernel)


# ----------------------------------------------------------------------
# The coverage-splicing path, through a real columnar index — exactly the
# wiring of ``SuperKeyPrefilter._prefilter_mapped``.
# ----------------------------------------------------------------------
@st.composite
def index_cases(draw):
    hash_size = draw(st.sampled_from([16, 64, 128]))
    limit = (1 << hash_size) - 1
    num_tables = draw(st.integers(min_value=1, max_value=4))
    postings = []
    for table_id in range(num_tables):
        rows = draw(st.integers(min_value=0, max_value=8))
        for row_index in range(rows):
            value = draw(st.sampled_from(VALUES))
            key = draw(st.integers(min_value=0, max_value=limit))
            postings.append((value, table_id, row_index, key))
    key_map = {}
    for value in VALUES:
        entries = []
        for level in range(draw(st.integers(min_value=0, max_value=2))):
            if postings and draw(st.booleans()):
                base = postings[draw(st.integers(0, len(postings) - 1))][3]
                key = base & draw(st.integers(min_value=0, max_value=limit))
            else:
                key = draw(st.integers(min_value=0, max_value=limit))
            entries.append(((f"{value}-k{level}",), key))
        if entries:
            key_map[value] = tuple(entries)
    length_shift = draw(
        st.one_of(st.none(), st.integers(min_value=0, max_value=hash_size - 1))
    )
    bound = draw(st.one_of(st.none(), st.integers(min_value=0, max_value=10)))
    return hash_size, postings, key_map, length_shift, bound


@pytest.mark.parametrize("kernel", KERNELS)
class TestMappedSpliceDifferential:
    @given(case=index_cases())
    @settings(max_examples=60, deadline=None)
    def test_spliced_coverage_matches_reference(self, kernel, case):
        hash_size, postings, key_map, length_shift, bound = case
        index = InvertedIndex(hash_size=hash_size, layout="columnar")
        for value, table_id, row_index, key in postings:
            index.add_posting(value, table_id, 0, row_index)
            index.set_super_key(table_id, row_index, key)
        blocks = index.fetch_batch(VALUES)
        grouped = group_into_table_blocks(blocks)
        assert sum(len(block) for block in grouped.values()) == len(postings)
        for table_block in grouped.values():
            assert table_block.cov_sources is not None
            # Replicate SuperKeyPrefilter._prefilter_mapped verbatim.
            run_cov = []
            for source, fetch_start, table_start, count in table_block.cov_sources:
                entries = key_map.get(source.value, ())
                if not entries:
                    continue
                per_level = source.query_coverage(entries, length_shift, kernel)
                run_cov.append(
                    (table_start, fetch_start, count, entries, per_level)
                )
            result = prefilter_table_block(
                row_indexes=table_block.row_indexes,
                run_cov=run_cov,
                posting_count=len(table_block),
                min_joinability=bound,
            )
            expected = reference_prefilter(
                values=table_block.values,
                row_indexes=table_block.row_indexes,
                packed=bytes(table_block.super_key_bytes),
                width=table_block.key_width,
                key_map=key_map,
                posting_count=len(table_block),
                mode="superkey",
                length_shift=length_shift,
                min_joinability=bound,
            )
            assert as_dict(result) == expected

    @given(case=index_cases())
    @settings(max_examples=40, deadline=None)
    def test_spliced_and_block_kernels_agree(self, kernel, case):
        hash_size, postings, key_map, length_shift, bound = case
        index = InvertedIndex(hash_size=hash_size, layout="columnar")
        for value, table_id, row_index, key in postings:
            index.add_posting(value, table_id, 0, row_index)
            index.set_super_key(table_id, row_index, key)
        grouped = group_into_table_blocks(index.fetch_batch(VALUES))
        for table_block in grouped.values():
            run_cov = []
            for source, fetch_start, table_start, count in table_block.cov_sources:
                entries = key_map.get(source.value, ())
                if not entries:
                    continue
                per_level = source.query_coverage(entries, length_shift, kernel)
                run_cov.append(
                    (table_start, fetch_start, count, entries, per_level)
                )
            spliced = prefilter_table_block(
                row_indexes=table_block.row_indexes,
                run_cov=run_cov,
                posting_count=len(table_block),
                min_joinability=bound,
            )
            whole = prefilter_block(
                values=table_block.values,
                row_indexes=table_block.row_indexes,
                key_map=key_map,
                posting_count=len(table_block),
                value_runs=table_block.value_runs,
                packed=bytes(table_block.super_key_bytes),
                width=table_block.key_width,
                mode="superkey",
                length_shift=length_shift,
                min_joinability=bound,
                kernel=kernel,
            )
            assert as_dict(spliced) == as_dict(whole)


@pytest.mark.skipif(len(KERNELS) < 2, reason="numpy not installed")
class TestKernelCrossAgreement:
    @given(case=block_cases())
    @settings(max_examples=60, deadline=None)
    def test_numpy_and_fallback_agree(self, case):
        results = [
            as_dict(
                prefilter_block(
                    values=case["values"],
                    row_indexes=case["row_indexes"],
                    key_map=case["key_map"],
                    posting_count=case["posting_count"],
                    packed=case["packed"],
                    width=case["width"],
                    mode="superkey",
                    length_shift=case["length_shift"],
                    min_joinability=case["min_joinability"],
                    kernel=kernel,
                )
            )
            for kernel in ("fallback", "numpy")
        ]
        assert results[0] == results[1]
