"""Tests for the baseline systems: SCR, MCR, JOSIE and the JOSIE adapters."""

import pytest

from repro.baselines import (
    JosieIndex,
    JosieSearch,
    McrDiscovery,
    McrJosieDiscovery,
    ScrDiscovery,
    ScrJosieDiscovery,
)
from repro.core import top_k_by_exact_joinability
from repro.datamodel import Table, TableCorpus
from repro.exceptions import DiscoveryError
from tests.helpers import assert_topk_equivalent


class TestScr:
    def test_matches_brute_force(self, config, tiny_workload, tiny_index):
        corpus = tiny_workload.corpus
        scr = ScrDiscovery(corpus, tiny_index, config=config)
        for query in tiny_workload.queries:
            assert_topk_equivalent(
                scr.discover(query, k=3).result_tuples(),
                top_k_by_exact_joinability(query, corpus, k=3),
            )

    def test_never_uses_superkey_checks(self, config, tiny_workload, tiny_index):
        corpus = tiny_workload.corpus
        result = ScrDiscovery(corpus, tiny_index, config=config).discover(
            tiny_workload.queries[0], k=3
        )
        assert result.counters.superkey_checks == 0
        assert result.system == "scr"

    def test_precision_not_higher_than_mate(self, config, tiny_workload, tiny_index):
        from repro import MateDiscovery

        corpus = tiny_workload.corpus
        query = tiny_workload.queries[0]
        scr = ScrDiscovery(corpus, tiny_index, config=config).discover(query, k=3)
        mate = MateDiscovery(corpus, tiny_index, config=config).discover(query, k=3)
        assert scr.precision <= mate.precision + 1e-9


class TestMcr:
    def test_matches_brute_force(self, config, tiny_workload, tiny_index):
        corpus = tiny_workload.corpus
        mcr = McrDiscovery(corpus, tiny_index, config=config)
        for query in tiny_workload.queries:
            assert_topk_equivalent(
                mcr.discover(query, k=3).result_tuples(),
                top_k_by_exact_joinability(query, corpus, k=3),
            )

    def test_fetches_all_key_columns(self, config, tiny_workload, tiny_index):
        corpus = tiny_workload.corpus
        query = tiny_workload.queries[0]
        result = McrDiscovery(corpus, tiny_index, config=config).discover(query, k=3)
        per_column_keys = [
            key for key in result.counters.extra if key.startswith("pl_items[")
        ]
        assert len(per_column_keys) == query.key_size

    def test_rejects_bad_k(self, config, tiny_workload, tiny_index):
        mcr = McrDiscovery(tiny_workload.corpus, tiny_index, config=config)
        with pytest.raises(DiscoveryError):
            mcr.discover(tiny_workload.queries[0], k=0)


class TestJosieCore:
    @pytest.fixture()
    def corpus(self) -> TableCorpus:
        corpus = TableCorpus(name="josie")
        corpus.add_table(
            Table(table_id=0, name="big-overlap", columns=["c"],
                  rows=[["a"], ["b"], ["c"], ["d"]])
        )
        corpus.add_table(
            Table(table_id=1, name="small-overlap", columns=["c"],
                  rows=[["a"], ["x"], ["y"]])
        )
        corpus.add_table(
            Table(table_id=2, name="no-overlap", columns=["c"], rows=[["z"]])
        )
        return corpus

    def test_index_statistics(self, corpus):
        index = JosieIndex.build(corpus)
        assert len(index) == 7  # distinct values a, b, c, d, x, y, z
        assert index.num_posting_items() == 8
        assert index.column_size((0, 0)) == 4
        assert index.posting_length("a") == 2
        assert index.columns_containing("z") == [(2, 0)]

    def test_top_k_columns_ranked_by_overlap(self, corpus):
        search = JosieSearch(JosieIndex.build(corpus))
        matches = search.top_k_columns(["a", "b", "c"], k=2)
        assert matches[0].column == (0, 0)
        assert matches[0].overlap == 3
        assert matches[1].column == (1, 0)
        assert matches[1].overlap == 1
        assert matches[0].table_id == 0 and matches[0].column_index == 0

    def test_zero_overlap_columns_excluded(self, corpus):
        search = JosieSearch(JosieIndex.build(corpus))
        matches = search.top_k_columns(["a"], k=10)
        assert all(match.overlap > 0 for match in matches)
        assert {match.table_id for match in matches} == {0, 1}

    def test_top_k_tables_keeps_best_column_per_table(self, corpus):
        search = JosieSearch(JosieIndex.build(corpus))
        tables = search.top_k_tables(["a", "b"], k=3)
        assert tables[0] == (0, 2)

    def test_empty_query_or_k(self, corpus):
        search = JosieSearch(JosieIndex.build(corpus))
        assert search.top_k_columns([], k=3) == []
        assert search.top_k_columns(["a"], k=0) == []


class TestJosieAdapters:
    def test_scr_josie_finds_top_table(self, config, tiny_workload):
        corpus = tiny_workload.corpus
        engine = ScrJosieDiscovery(corpus, config=config)
        for query in tiny_workload.queries:
            truth = top_k_by_exact_joinability(query, corpus, k=1)
            result = engine.discover(query, k=3)
            assert result.tables, "expected results"
            assert result.result_tuples()[0] == truth[0]
            assert result.system == "scr_josie"

    def test_mcr_josie_finds_top_table(self, config, tiny_workload):
        corpus = tiny_workload.corpus
        engine = McrJosieDiscovery(corpus, config=config)
        for query in tiny_workload.queries:
            truth = top_k_by_exact_joinability(query, corpus, k=1)
            result = engine.discover(query, k=3)
            assert result.tables, "expected results"
            assert result.result_tuples()[0] == truth[0]
            assert result.system == "mcr_josie"

    def test_adapters_share_prebuilt_index(self, config, tiny_workload):
        corpus = tiny_workload.corpus
        josie_index = JosieIndex.build(corpus)
        scr_josie = ScrJosieDiscovery(corpus, josie_index=josie_index, config=config)
        mcr_josie = McrJosieDiscovery(corpus, josie_index=josie_index, config=config)
        assert scr_josie.josie_index is josie_index
        assert mcr_josie.josie_index is josie_index

    def test_invalid_candidate_factor(self, config, tiny_workload):
        with pytest.raises(DiscoveryError):
            ScrJosieDiscovery(tiny_workload.corpus, config=config, candidate_factor=0)
