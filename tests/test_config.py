"""Tests for repro.config: Eq. 5 / Eq. 6 derivations and validation."""

import pytest

from repro.config import (
    DEFAULT_ALPHABET,
    MateConfig,
    character_segment_width,
    required_number_of_ones,
)
from repro.exceptions import ConfigurationError


class TestRequiredNumberOfOnes:
    def test_paper_example_128_bits_700m_values(self):
        # Section 5.3.1: 128-bit hash and 700M unique values -> alpha = 6.
        assert required_number_of_ones(128, 700_000_000) == 6

    def test_small_corpus_needs_fewer_ones(self):
        assert required_number_of_ones(128, 100) <= 2

    def test_monotone_in_unique_values(self):
        previous = 0
        for unique in (10, 10_000, 10_000_000, 10_000_000_000):
            alpha = required_number_of_ones(128, unique)
            assert alpha >= previous
            previous = alpha

    def test_larger_hash_needs_fewer_ones(self):
        assert required_number_of_ones(512, 700_000_000) <= required_number_of_ones(
            128, 700_000_000
        )

    def test_rejects_non_positive_inputs(self):
        with pytest.raises(ConfigurationError):
            required_number_of_ones(0, 100)
        with pytest.raises(ConfigurationError):
            required_number_of_ones(128, 0)


class TestCharacterSegmentWidth:
    def test_paper_values(self):
        # Section 5.3.2: beta = 3 for 128 bits and 37 characters.
        assert character_segment_width(128, 37) == 3
        # 512 bits -> beta = 13 and a 31-bit length segment.
        assert character_segment_width(512, 37) == 13

    def test_leaves_room_for_length_segment(self):
        for hash_size in (64, 128, 256, 512, 1024):
            beta = character_segment_width(hash_size, 37)
            assert 37 * beta < hash_size

    def test_rejects_hash_smaller_than_alphabet(self):
        with pytest.raises(ConfigurationError):
            character_segment_width(30, 37)


class TestMateConfig:
    def test_default_layout_matches_paper(self):
        config = MateConfig(hash_size=128, expected_unique_values=700_000_000)
        assert config.alpha == 6
        assert config.characters_per_value == 5
        assert config.beta == 3
        assert config.character_region_bits == 111
        assert config.length_segment_bits == 17

    def test_512_bit_layout(self):
        config = MateConfig(hash_size=512, expected_unique_values=700_000_000)
        assert config.beta == 13
        assert config.length_segment_bits == 512 - 37 * 13 == 31

    def test_explicit_number_of_ones_wins(self):
        config = MateConfig(number_of_ones=4)
        assert config.alpha == 4
        assert config.characters_per_value == 3

    def test_with_hash_size_preserves_other_fields(self):
        config = MateConfig(hash_size=128, k=7, rotation=False)
        resized = config.with_hash_size(256)
        assert resized.hash_size == 256
        assert resized.k == 7
        assert resized.rotation is False

    def test_with_k(self):
        assert MateConfig().with_k(20).k == 20

    def test_alphabet_has_37_characters(self):
        assert len(DEFAULT_ALPHABET) == 37
        assert len(set(DEFAULT_ALPHABET)) == 37

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"hash_size": 0},
            {"hash_size": -128},
            {"k": 0},
            {"alphabet": "aab"},
            {"alphabet": "a"},
            {"hash_size": 20},  # smaller than the alphabet
            {"number_of_ones": 1},
            {"expected_unique_values": 0},
        ],
    )
    def test_invalid_configurations_raise(self, kwargs):
        with pytest.raises(ConfigurationError):
            MateConfig(**kwargs)

    def test_frozen(self):
        config = MateConfig()
        with pytest.raises(Exception):
            config.hash_size = 256  # type: ignore[misc]
