"""Tests for repro.index: posting lists, the inverted index, and the builder."""

import pytest

from repro import MateConfig, build_index
from repro.datamodel import Table, TableCorpus
from repro.exceptions import IndexClosedError, IndexError_
from repro.hashing import SuperKeyGenerator
from repro.index import (
    FetchedItem,
    IndexBuilder,
    InvertedIndex,
    PostingListItem,
    storage_report,
)


def small_corpus() -> TableCorpus:
    corpus = TableCorpus(name="idx-test")
    corpus.add_table(
        Table(
            table_id=0,
            name="people",
            columns=["first", "last"],
            rows=[["ada", "lovelace"], ["alan", "turing"], ["ada", "byron"]],
        )
    )
    corpus.add_table(
        Table(
            table_id=1,
            name="cities",
            columns=["city", "country"],
            rows=[["london", "uk"], ["turing", "fictional"]],
        )
    )
    return corpus


class TestPostingStructures:
    def test_posting_list_item_location(self):
        item = PostingListItem(table_id=3, column_index=1, row_index=7)
        assert item.location() == (3, 7)

    def test_fetched_item_from_posting(self):
        item = PostingListItem(table_id=3, column_index=1, row_index=7)
        fetched = FetchedItem.from_posting("ada", item, super_key=0b101)
        assert fetched.value == "ada"
        assert fetched.super_key == 0b101
        assert fetched.location() == (3, 7)


class TestInvertedIndex:
    def test_add_and_lookup(self):
        index = InvertedIndex()
        index.add_posting("ada", 0, 0, 0)
        index.add_posting("ada", 0, 0, 2)
        index.set_super_key(0, 0, 0b1)
        index.set_super_key(0, 2, 0b10)
        assert len(index) == 1
        assert index.num_posting_items() == 2
        assert index.posting_list_length("ada") == 2
        assert index.posting_list("missing") == []
        assert index.super_key(0, 2) == 0b10
        assert index.has_row(0, 0)
        assert not index.has_row(0, 5)

    def test_missing_values_not_indexed(self):
        index = InvertedIndex()
        index.add_posting("", 0, 0, 0)
        assert len(index) == 0

    def test_super_key_missing_raises(self):
        with pytest.raises(IndexError_):
            InvertedIndex().super_key(0, 0)

    def test_or_into_super_key(self):
        index = InvertedIndex()
        index.set_super_key(0, 0, 0b0011)
        assert index.or_into_super_key(0, 0, 0b0100) == 0b0111
        assert index.or_into_super_key(1, 5, 0b1) == 0b1  # creates if absent

    def test_fetch_returns_super_keys(self):
        index = InvertedIndex()
        index.add_posting("ada", 0, 0, 0)
        index.set_super_key(0, 0, 0b11)
        fetched = index.fetch(["ada", "ada", "missing", ""])
        assert len(fetched) == 1
        assert fetched[0].super_key == 0b11

    def test_fetch_grouped_by_table(self):
        index = InvertedIndex()
        index.add_posting("x", 0, 0, 0)
        index.add_posting("x", 1, 0, 0)
        index.add_posting("y", 1, 1, 3)
        grouped = index.fetch_grouped_by_table(["x", "y"])
        assert set(grouped) == {0, 1}
        assert len(grouped[1]) == 2

    def test_posting_count_for_values_deduplicates(self):
        index = InvertedIndex()
        index.add_posting("x", 0, 0, 0)
        index.add_posting("x", 0, 0, 1)
        assert index.posting_count_for_values(["x", "x", "z"]) == 2

    def test_remove_table_and_row_and_column(self):
        index = InvertedIndex()
        index.add_posting("x", 0, 0, 0)
        index.add_posting("x", 1, 0, 0)
        index.add_posting("y", 0, 1, 0)
        index.set_super_key(0, 0, 1)
        index.set_super_key(1, 0, 1)

        assert index.remove_column(0, 1) == 1
        assert "y" not in index

        assert index.remove_row(1, 0) == 1
        assert index.indexed_tables() == {0}

        assert index.remove_table(0) == 1
        assert index.num_posting_items() == 0
        assert index.num_rows() == 0

    def test_iter_super_keys(self):
        index = InvertedIndex()
        index.set_super_key(0, 0, 5)
        index.set_super_key(2, 3, 9)
        assert set(index.iter_super_keys()) == {(0, 0, 5), (2, 3, 9)}


class TestIndexBuilder:
    def test_build_indexes_every_non_missing_cell(self, config):
        corpus = small_corpus()
        builder = IndexBuilder(config=config)
        index = builder.build(corpus)
        total_cells = sum(t.num_rows * t.num_columns for t in corpus)
        assert index.num_posting_items() == total_cells
        assert index.num_rows() == sum(t.num_rows for t in corpus)
        assert builder.last_report is not None
        assert builder.last_report.num_tables == 2
        assert builder.last_report.build_seconds >= 0.0
        assert "rows" in builder.last_report.as_dict()

    def test_super_keys_match_generator(self, config):
        corpus = small_corpus()
        index = build_index(corpus, config=config)
        generator = SuperKeyGenerator.from_name("xash", config)
        for table in corpus:
            for row_index, row in enumerate(table.rows):
                assert index.super_key(table.table_id, row_index) == generator.row_super_key(row)

    def test_value_appearing_in_two_tables(self, config):
        index = build_index(small_corpus(), config=config)
        postings = index.posting_list("turing")
        assert {item.table_id for item in postings} == {0, 1}

    def test_build_with_other_hash_function(self):
        config = MateConfig(hash_size=128)
        index = build_index(small_corpus(), config=config, hash_function_name="bloom")
        assert index.hash_function_name == "bloom"


class TestStorageReport:
    def test_report_consistency(self, config):
        index = build_index(small_corpus(), config=config)
        report = storage_report(index)
        assert report.num_posting_items == index.num_posting_items()
        assert report.super_key_bytes_per_row <= report.super_key_bytes_per_cell
        assert report.total_bytes_per_row_layout <= report.total_bytes_per_cell_layout
        assert report.as_dict()["hash_size"] == 128


class TestIndexClose:
    """A closed index raises the typed IndexClosedError, on either layout."""

    @pytest.mark.parametrize("layout", ["columnar", "legacy"])
    def test_fetch_after_close_raises_typed_error(self, config, layout):
        index = build_index(small_corpus(), config=config, layout=layout)
        assert not index.closed
        index.close()
        index.close()  # idempotent
        assert index.closed
        with pytest.raises(IndexClosedError):
            index.fetch(["ada"])
        with pytest.raises(IndexClosedError):
            index.fetch_batch(["ada"])
        with pytest.raises(IndexClosedError):
            index.fetch_grouped_by_table(["ada"])

    @pytest.mark.parametrize("layout", ["columnar", "legacy"])
    def test_mutation_after_close_raises_typed_error(self, config, layout):
        index = build_index(small_corpus(), config=config, layout=layout)
        index.close()
        with pytest.raises(IndexClosedError):
            index.add_posting("new", 5, 0, 0)
        with pytest.raises(IndexClosedError):
            index.set_super_key(5, 0, 1)

    def test_closed_error_is_an_index_error(self):
        # Callers catching the broad IndexError_ keep working.
        assert issubclass(IndexClosedError, IndexError_)
