"""Tests for repro.hashing.superkey: super-key construction and probing."""

import pytest

from repro.hashing import SuperKeyGenerator, subsumes


@pytest.fixture(params=["xash", "bloom", "hashtable", "md5"])
def generator(request, config) -> SuperKeyGenerator:
    return SuperKeyGenerator.from_name(request.param, config)


class TestConstruction:
    def test_row_super_key_is_or_of_value_hashes(self, generator):
        row = ["muhammad", "lee", "us", "dancer"]
        expected = 0
        for value in row:
            expected |= generator.value_hash(value)
        assert generator.row_super_key(row) == expected

    def test_key_super_key_equals_row_super_key_of_key_values(self, generator):
        key = ("muhammad", "lee", "us")
        assert generator.key_super_key(key) == generator.row_super_key(key)

    def test_missing_values_contribute_nothing(self, generator):
        assert generator.row_super_key(["", "", ""]) == 0
        assert generator.row_super_key(["lee", ""]) == generator.value_hash("lee")

    def test_value_hash_is_memoised(self, config):
        generator = SuperKeyGenerator.from_name("xash", config)
        first = generator.value_hash("dresden")
        assert generator._cache["dresden"] == first
        assert generator.value_hash("dresden") == first


class TestCovers:
    def test_key_in_row_is_always_covered(self, generator):
        row = ["muhammad", "lee", "us", "dancer", "1987"]
        row_super_key = generator.row_super_key(row)
        key_super_key = generator.key_super_key(("muhammad", "us"))
        assert generator.covers(row_super_key, key_super_key)

    def test_covers_matches_subsumes(self, generator):
        row_super_key = generator.row_super_key(["a", "b"])
        key_super_key = generator.key_super_key(("c",))
        assert generator.covers(row_super_key, key_super_key) == subsumes(
            row_super_key, key_super_key
        )

    def test_short_circuit_only_for_xash(self, config):
        xash_generator = SuperKeyGenerator.from_name("xash", config)
        bloom_generator = SuperKeyGenerator.from_name("bloom", config)
        row = ["boxer", "berlin"]
        key = ("photographer",)  # different length than any row value
        covered, short_circuited = xash_generator.covers_with_short_circuit(
            xash_generator.row_super_key(row), xash_generator.key_super_key(key)
        )
        assert not covered
        assert short_circuited
        covered, short_circuited = bloom_generator.covers_with_short_circuit(
            bloom_generator.row_super_key(row), bloom_generator.key_super_key(key)
        )
        assert not short_circuited

    def test_short_circuit_never_fires_for_contained_keys(self, config):
        generator = SuperKeyGenerator.from_name("xash", config)
        row = ["muhammad", "lee", "us"]
        covered, short_circuited = generator.covers_with_short_circuit(
            generator.row_super_key(row), generator.key_super_key(("lee", "us"))
        )
        assert covered
        assert not short_circuited


class TestNoFalseNegativesExamples:
    """Concrete spot-checks of the Section 6.3 no-false-negative lemma."""

    def test_running_example_rows(self, config, running_example_tables):
        query, candidate = running_example_tables
        generator = SuperKeyGenerator.from_name("xash", config)
        key_tuples = query.key_tuples()
        for row in candidate.rows:
            row_super_key = generator.row_super_key(row)
            row_values = set(row)
            for key in key_tuples:
                if set(key) <= row_values:
                    assert generator.covers(
                        row_super_key, generator.key_super_key(key)
                    ), f"false negative for key {key} in row {row}"

    def test_fifth_and_sixth_rows_are_prunable(self, config, running_example_tables):
        # Example 3 of the paper: the rows containing "Muhammad Ali" and
        # "Muhammad Lee Germany ... Birder" must not cover the key
        # <muhammad, lee, us>.  (This is a filtering-power expectation, not a
        # correctness requirement; XASH achieves it.)
        query, candidate = running_example_tables
        generator = SuperKeyGenerator.from_name("xash", config)
        key = ("muhammad", "lee", "us")
        key_super_key = generator.key_super_key(key)
        ali_row = candidate.rows[4]      # muhammad ali us boxer
        birder_row = candidate.rows[5]   # muhammad lee germany birder
        assert not generator.covers(generator.row_super_key(ali_row), key_super_key)
        assert not generator.covers(generator.row_super_key(birder_row), key_super_key)
