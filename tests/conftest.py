"""Shared fixtures for the test-suite.

Fixtures are deliberately small (a handful of tables, double-digit row
counts) so the whole suite runs in seconds; the heavier, paper-scale runs
live in ``benchmarks/``.
"""

from __future__ import annotations

import random

import pytest

from repro import MateConfig, build_index
from repro.datamodel import QueryTable, Table, TableCorpus
from repro.datagen import build_workload


@pytest.fixture(scope="session")
def config() -> MateConfig:
    """A 128-bit configuration with the paper's alpha=6 bit budget."""
    return MateConfig(hash_size=128, k=5, expected_unique_values=700_000_000)


@pytest.fixture()
def small_config() -> MateConfig:
    """A small-corpus configuration (alpha derived from 100k unique values)."""
    return MateConfig(hash_size=128, k=3, expected_unique_values=100_000)


@pytest.fixture()
def running_example_tables() -> tuple[QueryTable, Table]:
    """The paper's Figure 1 running example: query table d and candidate T1."""
    d = Table(
        table_id=0,
        name="d",
        columns=["f_name", "l_name", "country", "salary"],
        rows=[
            ["Muhammad", "Lee", "US", "60k"],
            ["Ansel", "Adams", "UK", "50k"],
            ["Ansel", "Adams", "US", "400k"],
            ["Muhammad", "Lee", "Germany", "90k"],
            ["Helmut", "Newton", "Germany", "300k"],
        ],
    )
    t1 = Table(
        table_id=1,
        name="T1",
        columns=["vorname", "nachname", "land", "besetzung"],
        rows=[
            ["Helmut", "Newton", "Germany", "Photographer"],
            ["Muhammad", "Lee", "US", "Dancer"],
            ["Ansel", "Adams", "UK", "Dancer"],
            ["Ansel", "Adams", "US", "Photographer"],
            ["Muhammad", "Ali", "US", "Boxer"],
            ["Muhammad", "Lee", "Germany", "Birder"],
            ["Gretchen", "Lee", "Germany", "Artist"],
            ["Adam", "Sandler", "US", "Actor"],
        ],
    )
    query = QueryTable(table=d, key_columns=["f_name", "l_name", "country"])
    return query, t1


@pytest.fixture()
def running_example_corpus(running_example_tables) -> tuple[QueryTable, TableCorpus]:
    """Figure 1 candidate table embedded in a corpus with unrelated tables."""
    query, t1 = running_example_tables
    corpus = TableCorpus(name="figure1")
    corpus.add_table(t1)
    corpus.create_table(
        name="unrelated_cities",
        columns=["city", "population"],
        rows=[["berlin", "3600000"], ["hannover", "530000"], ["dresden", "550000"]],
    )
    corpus.create_table(
        name="partial_only",
        columns=["name", "country", "sport"],
        rows=[
            ["muhammad", "uk", "boxing"],
            ["gretchen", "us", "golf"],
            ["helmut", "france", "tennis"],
        ],
    )
    return query, corpus


@pytest.fixture(scope="session")
def tiny_workload():
    """A tiny WT-style workload shared (read-only) across tests."""
    return build_workload("WT_10", seed=11, num_queries=2, corpus_scale=0.1)


@pytest.fixture(scope="session")
def tiny_index(tiny_workload, config):
    """An XASH index over the tiny workload's corpus."""
    return build_index(tiny_workload.corpus, config=config)


@pytest.fixture()
def rng() -> random.Random:
    """A deterministic RNG for generator tests."""
    return random.Random(1234)
