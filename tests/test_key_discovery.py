"""Tests for composite-key candidate discovery (repro.extensions.key_discovery)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datamodel import Table
from repro.exceptions import DataModelError
from repro.extensions import (
    KeyCandidate,
    discover_key_candidates,
    evaluate_combination,
    rank_key_candidates,
    suggest_query,
)


@pytest.fixture()
def people_table():
    """first+last is the minimal composite UCC; no single column is unique."""
    return Table(
        table_id=1,
        name="people",
        columns=["first", "last", "country", "salary"],
        rows=[
            ["muhammad", "lee", "us", "60000.5"],
            ["ansel", "adams", "uk", "50000.5"],
            ["ansel", "newton", "us", "40000.5"],
            ["muhammad", "newton", "us", "90000.5"],
        ],
    )


class TestEvaluateCombination:
    def test_unique_combination(self, people_table):
        candidate = evaluate_combination(people_table, ["first", "last"])
        assert candidate.is_unique
        assert candidate.distinct_combinations == 4
        assert candidate.covered_rows == 4
        assert candidate.uniqueness == 1.0
        assert candidate.arity == 2

    def test_non_unique_combination(self, people_table):
        candidate = evaluate_combination(people_table, ["first"])
        assert not candidate.is_unique
        assert candidate.distinct_combinations == 2
        assert candidate.uniqueness == 0.5

    def test_missing_values_reduce_coverage(self):
        table = Table(
            table_id=2, name="gaps", columns=["a", "b"],
            rows=[["x", "1"], ["", "2"], ["y", ""]],
        )
        candidate = evaluate_combination(table, ["a", "b"])
        assert candidate.covered_rows == 1
        assert candidate.distinct_combinations == 1

    def test_rejects_empty_and_duplicate_columns(self, people_table):
        with pytest.raises(DataModelError):
            evaluate_combination(people_table, [])
        with pytest.raises(DataModelError):
            evaluate_combination(people_table, ["first", "first"])

    def test_as_dict(self, people_table):
        payload = evaluate_combination(people_table, ["first", "last"]).as_dict()
        assert payload["columns"] == ["first", "last"]
        assert payload["is_unique"] is True


class TestDiscoverKeyCandidates:
    def test_finds_minimal_composite_ucc(self, people_table):
        candidates = discover_key_candidates(people_table, max_arity=3)
        assert candidates, "expected at least one candidate"
        best = candidates[0]
        assert best.is_unique
        assert set(best.columns) == {"first", "last"}
        # salary is a float measure column and must not appear anywhere.
        assert all("salary" not in c.columns for c in candidates)

    def test_single_unique_column_is_found_at_level_one(self):
        table = Table(
            table_id=3, name="ids", columns=["id", "name"],
            rows=[["a1", "x"], ["b2", "x"], ["c3", "y"]],
        )
        candidates = discover_key_candidates(table, max_arity=2)
        assert candidates[0].columns == ("id",)
        assert candidates[0].arity == 1

    def test_supersets_of_uccs_are_not_reported(self, people_table):
        candidates = discover_key_candidates(people_table, max_arity=3)
        ucc_sets = [set(c.columns) for c in candidates if c.is_unique]
        for first in ucc_sets:
            for second in ucc_sets:
                if first is not second:
                    assert not first < second

    def test_no_ucc_within_arity_returns_near_keys(self):
        table = Table(
            table_id=4, name="dups", columns=["a", "b"],
            rows=[["x", "1"], ["x", "1"], ["y", "2"]],
        )
        candidates = discover_key_candidates(table, max_arity=2)
        assert candidates
        assert all(not c.is_unique for c in candidates)
        assert candidates[0].uniqueness < 1.0

    def test_min_coverage_guard(self):
        table = Table(
            table_id=5, name="sparse", columns=["a", "b"],
            rows=[["x", ""], ["", "1"], ["", "2"], ["", "3"]],
        )
        candidates = discover_key_candidates(table, max_arity=2, min_coverage=0.9)
        assert all("a" not in c.columns for c in candidates)

    def test_explicit_column_subset(self, people_table):
        candidates = discover_key_candidates(
            people_table, max_arity=2, columns=["country", "last"]
        )
        assert all(set(c.columns) <= {"country", "last"} for c in candidates)

    def test_unknown_column_raises(self, people_table):
        with pytest.raises(DataModelError):
            discover_key_candidates(people_table, columns=["nope"])

    def test_invalid_arity_raises(self, people_table):
        with pytest.raises(DataModelError):
            discover_key_candidates(people_table, max_arity=0)

    def test_empty_candidate_column_set(self):
        table = Table(
            table_id=6, name="floats", columns=["m1", "m2"],
            rows=[["1.5", "2.5"], ["3.5", "4.5"]],
        )
        assert discover_key_candidates(table, max_arity=2) == []

    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["a", "b", "c"]), st.sampled_from(["x", "y", "z"])
            ),
            min_size=1,
            max_size=12,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_property_reported_uccs_are_actually_unique(self, pairs):
        rows = [[first, second] for first, second in pairs]
        table = Table(table_id=9, name="random", columns=["p", "q"], rows=rows)
        for candidate in discover_key_candidates(table, max_arity=2):
            if candidate.is_unique:
                recomputed = evaluate_combination(table, candidate.columns)
                assert recomputed.is_unique


class TestRankingAndSuggestQuery:
    def test_ranking_prefers_unique_then_small_then_friendly(self, people_table):
        unique_pair = evaluate_combination(people_table, ["first", "last"])
        non_unique = evaluate_combination(people_table, ["country"])
        wide_unique = evaluate_combination(
            people_table, ["first", "last", "country"]
        )
        ranked = rank_key_candidates(
            people_table, [non_unique, wide_unique, unique_pair]
        )
        assert ranked[0] == unique_pair
        assert ranked[-1] == non_unique

    def test_suggest_query_prefers_composite_key(self, people_table):
        query = suggest_query(people_table, max_arity=3, prefer_arity=2)
        assert set(query.key_columns) == {"first", "last"}
        assert query.table is people_table

    def test_suggest_query_without_preference(self):
        table = Table(
            table_id=7, name="ids", columns=["id", "name"],
            rows=[["a1", "x"], ["b2", "y"]],
        )
        query = suggest_query(table, prefer_arity=None)
        assert query.key_columns in (["id"], ["name"], ["id", "name"])

    def test_suggest_query_raises_without_candidates(self):
        table = Table(
            table_id=8, name="floats", columns=["m"], rows=[["1.5"], ["2.5"]]
        )
        with pytest.raises(DataModelError):
            suggest_query(table)

    def test_key_candidate_is_frozen(self):
        candidate = KeyCandidate(
            columns=("a",), distinct_combinations=1, covered_rows=1,
            uniqueness=1.0, is_unique=True, is_minimal=True,
        )
        with pytest.raises(AttributeError):
            candidate.uniqueness = 0.5  # type: ignore[misc]
