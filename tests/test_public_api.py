"""API-surface snapshot: ``repro.__all__`` against a checked-in list.

The unified discovery API makes ``repro``'s top-level namespace a contract:
removing or renaming a name is a breaking change that must be made
deliberately.  This test pins the exported surface — any drift (an export
added, dropped, or renamed) fails CI until this snapshot is updated in the
same change, which is exactly the review point the contract needs.
"""

from __future__ import annotations

import repro

#: The public surface of ``repro`` as of schema version 2.  Update this list
#: (and the README's Public API section, and ``SCHEMA_VERSION`` if response
#: field names changed) in the same commit as any export change.
EXPECTED_EXPORTS = [
    "AdmissionController",
    "BatchDiscoveryResult",
    "BatchStats",
    "ColumnSketch",
    "CompactionPolicy",
    "Compactor",
    "ConfigurationError",
    "CorpusError",
    "DEFAULT_CONFIG",
    "DataLake",
    "DataModelError",
    "DiscoveryError",
    "DiscoveryHTTPServer",
    "DiscoveryRequest",
    "DiscoveryResult",
    "DiscoveryService",
    "DiscoverySession",
    "EngineNotFoundError",
    "EngineRegistry",
    "Executor",
    "HashingError",
    "IndexBuilder",
    "IndexClosedError",
    "IndexMaintainer",
    "IngestBuffer",
    "InvertedIndex",
    "LiveIndex",
    "MateConfig",
    "MateDiscovery",
    "MateError",
    "MetricsRegistry",
    "Planner",
    "PlannerOptions",
    "ProcessShardPool",
    "QueryPlan",
    "QueryTable",
    "RequestBudget",
    "Row",
    "SCHEMA_VERSION",
    "ServeConfig",
    "ServiceConfig",
    "SessionBatch",
    "SessionResult",
    "ShardedInvertedIndex",
    "ShardedMateDiscovery",
    "SketchIndex",
    "SketchIndexConfig",
    "SketchOptions",
    "SlowQueryLog",
    "StorageError",
    "SuperKeyGenerator",
    "Table",
    "TableCorpus",
    "TableResult",
    "Telemetry",
    "TenantQuota",
    "Tracer",
    "XashHashFunction",
    "__version__",
    "available_engines",
    "available_hash_functions",
    "build_index",
    "build_sharded_index",
    "build_sketch_index",
    "create_hash_function",
    "exact_joinability",
    "exact_joinability_score",
    "read_trace_file",
    "register_engine",
    "required_number_of_ones",
    "span_tree",
    "table_from_dicts",
    "top_k_by_exact_joinability",
]


def test_public_surface_matches_snapshot():
    assert sorted(repro.__all__) == EXPECTED_EXPORTS, (
        "repro.__all__ drifted from the checked-in snapshot; if the change "
        "is intentional, update tests/test_public_api.py in the same commit"
    )


def test_all_names_are_importable():
    for name in EXPECTED_EXPORTS:
        assert hasattr(repro, name), f"repro.{name} is exported but missing"


def test_no_unexported_dunder_leaks():
    exported = set(repro.__all__)
    assert "__version__" in exported
    assert all(name.isidentifier() for name in exported)


def test_session_and_request_are_the_documented_front_door():
    """The quickstart docstring names the session API, not the old one."""
    docstring = repro.__doc__ or ""
    assert "DiscoverySession" in docstring
    assert "DiscoveryRequest" in docstring
