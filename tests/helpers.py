"""Small shared assertion helpers for the test-suite."""

from __future__ import annotations

import time


def available_kernel_modes() -> list[str]:
    """Prefilter kernel modes exercisable in this environment.

    Always contains ``"off"`` (the per-row loop) and ``"fallback"`` (the
    pure-stdlib kernel); ``"numpy"`` is appended when numpy is importable.
    Parametrizing over this list keeps the equivalence suites meaningful on
    the no-numpy CI entry instead of erroring out.
    """
    from repro.index import numpy_available

    modes = ["off", "fallback"]
    if numpy_available():
        modes.append("numpy")
    return modes


def available_sketch_kernel_modes() -> list[str]:
    """MinHash sketch kernel modes exercisable in this environment.

    Always contains ``"fallback"`` (the pure-stdlib signature path);
    ``"numpy"`` is appended when numpy is importable.  Mirrors
    :func:`available_kernel_modes` for the ``MATE_SKETCH`` selector.
    """
    from repro.sketch import sketch_numpy_available

    modes = ["fallback"]
    if sketch_numpy_available():
        modes.append("numpy")
    return modes


def legacy_discover(engine, query, k=None, *, budget=None, on_snapshot=None):
    """The pre-planner ``MateDiscovery.discover`` loop, kept verbatim.

    This is the byte-identity oracle of the plan-equivalence suite: the
    monolithic Algorithm 1 loop exactly as it shipped before the
    planner/executor refactor, driven through the *current* engine's
    components (corpus, index, selector, row filter).  The executor with
    re-planning disabled must reproduce its output byte for byte.
    """
    from repro.core.filters import should_abandon_table, should_prune_table
    from repro.core.joinability import joinability_from_matches, row_contains_key
    from repro.core.results import DiscoveryResult
    from repro.core.topk import TopKHeap
    from repro.exceptions import DiscoveryError
    from repro.index import fetch_table_blocks
    from repro.metrics import DiscoveryCounters

    def evaluate_table(table_id, block, key_map, topk, counters):
        posting_count = len(block)
        rows_checked = 0
        rows_matched = 0
        surviving = []
        use_table_filters = engine.use_table_filters
        key_map_get = key_map.get
        get_row = engine.corpus.get_row
        passes = engine.row_filter.passes
        for value, row_index, super_key in zip(
            block.values, block.row_indexes, block.super_keys
        ):
            if use_table_filters and should_abandon_table(
                posting_count, rows_checked, rows_matched, topk
            ):
                counters.tables_pruned_by_rule2 += 1
                break
            rows_checked += 1
            counters.rows_checked += 1
            row = get_row(table_id, row_index)
            row_survived = False
            for key_tuple, key_super_key in key_map_get(value, ()):
                if passes(super_key, key_super_key, row, key_tuple, counters):
                    surviving.append((row_index, key_tuple))
                    row_survived = True
            if row_survived:
                rows_matched += 1

        verified = []
        row_outcome = {}
        for row_index, key_tuple in surviving:
            row = engine.corpus.get_row(table_id, row_index)
            counters.value_comparisons += len(row) * len(key_tuple)
            location = (table_id, row_index)
            if row_contains_key(row, key_tuple):
                verified.append((row, key_tuple))
                row_outcome[location] = True
            else:
                row_outcome.setdefault(location, False)
        counters.rows_passed_filter += len(row_outcome)
        counters.true_positive_rows += sum(1 for hit in row_outcome.values() if hit)
        counters.false_positive_rows += sum(
            1 for hit in row_outcome.values() if not hit
        )
        return joinability_from_matches(verified)

    if k is None:
        k = engine.config.k
    if k <= 0:
        raise DiscoveryError(f"k must be positive, got {k}")
    counters = DiscoveryCounters()
    started = time.perf_counter()

    initial_column = engine.column_selector(query, engine.index)
    if initial_column not in query.key_columns:
        raise DiscoveryError(
            f"initial column {initial_column!r} is not a key column of the query"
        )
    key_map = engine._build_key_super_key_map(query, initial_column)
    probe_values = list(key_map)

    if budget is not None:
        if budget.deadline_expired():
            probe_values = []
        else:
            granted = budget.take_pl_fetches(len(probe_values))
            probe_values = probe_values[:granted]

    grouped = fetch_table_blocks(engine.index, probe_values)
    counters.pl_items_fetched = sum(len(block) for block in grouped.values())
    counters.candidate_tables = len(grouped)
    counters.extra["initial_column_cardinality"] = float(len(probe_values))

    candidates = sorted(grouped.items(), key=lambda entry: (-len(entry[1]), entry[0]))

    topk = TopKHeap(k)
    mappings = {}
    for position, (table_id, block) in enumerate(candidates):
        if budget is not None and budget.deadline_expired():
            break
        if engine.use_table_filters and should_prune_table(len(block), topk):
            counters.tables_pruned_by_rule1 += len(candidates) - position
            break
        joinability, mapping = evaluate_table(
            table_id, block, key_map, topk, counters
        )
        counters.tables_evaluated += 1
        if topk.update(table_id, joinability):
            mappings[table_id] = mapping
            if on_snapshot is not None:
                on_snapshot(topk.result_tuples())

    complete = True
    if budget is not None:
        counters.budget_exhausted = int(budget.exhausted)
        counters.deadline_expired = int(budget.expired)
        complete = budget.complete
    counters.runtime_seconds = time.perf_counter() - started
    names = {
        table_id: engine.corpus.get_table(table_id).name
        for table_id, _ in topk.result_tuples()
    }
    return DiscoveryResult.from_ranked(
        system=engine.system_name,
        k=k,
        ranked=topk.results(),
        counters=counters,
        mappings=mappings,
        names=names,
        complete=complete,
    )


def assert_results_byte_identical(result, oracle) -> None:
    """Assert two discovery results agree byte for byte.

    Compares the ranked tables (ids, scores, mappings, names), the
    completeness flag, and every counter except wall-clock time and the
    per-stage breakdown (the legacy loop has no stages by construction).
    """
    assert result.system == oracle.system
    assert result.k == oracle.k
    assert result.complete == oracle.complete
    assert [
        (t.table_id, t.joinability, t.column_mapping, t.table_name)
        for t in result.tables
    ] == [
        (t.table_id, t.joinability, t.column_mapping, t.table_name)
        for t in oracle.tables
    ]
    mine = result.counters.as_dict()
    theirs = oracle.counters.as_dict()
    mine.pop("runtime_seconds")
    theirs.pop("runtime_seconds")
    assert mine == theirs


def assert_topk_equivalent(result, truth) -> None:
    """Result must match the brute-force top-k up to ties at the cut-off score.

    Tables whose joinability strictly exceeds the k-th best score must match
    exactly; at the cut-off score any tied table is an equally valid answer
    (the paper's table-filtering rule 1 legitimately drops ties).
    """
    assert [j for _, j in result] == [j for _, j in truth]
    if not truth:
        return
    cutoff = truth[-1][1]
    assert {t for t, j in result if j > cutoff} == {t for t, j in truth if j > cutoff}
