"""Small shared assertion helpers for the test-suite."""

from __future__ import annotations


def assert_topk_equivalent(result, truth) -> None:
    """Result must match the brute-force top-k up to ties at the cut-off score.

    Tables whose joinability strictly exceeds the k-th best score must match
    exactly; at the cut-off score any tied table is an equally valid answer
    (the paper's table-filtering rule 1 legitimately drops ties).
    """
    assert [j for _, j in result] == [j for _, j in truth]
    if not truth:
        return
    cutoff = truth[-1][1]
    assert {t for t, j in result if j > cutoff} == {t for t, j in truth if j > cutoff}
