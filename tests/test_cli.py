"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.storage import load_corpus_json, table_to_csv


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "figure99"])


class TestGenerateAndIndex:
    def test_generate_writes_corpus_and_queries(self, tmp_path, capsys):
        corpus_path = tmp_path / "corpus.json"
        queries_path = tmp_path / "queries.json"
        exit_code = main([
            "generate", "WT_10", "--seed", "3", "--queries", "1",
            "--scale", "0.05", "--corpus-out", str(corpus_path),
            "--queries-out", str(queries_path),
        ])
        assert exit_code == 0
        assert corpus_path.exists() and queries_path.exists()
        corpus = load_corpus_json(corpus_path)
        assert len(corpus) > 0
        output = capsys.readouterr().out
        assert "wrote corpus" in output

    def test_index_builds_sqlite(self, tmp_path, capsys):
        corpus_path = tmp_path / "corpus.json"
        database_path = tmp_path / "index.db"
        main([
            "generate", "WT_10", "--queries", "1", "--scale", "0.05",
            "--corpus-out", str(corpus_path),
        ])
        exit_code = main([
            "index", str(corpus_path), "--database", str(database_path),
            "--hash-size", "128",
        ])
        assert exit_code == 0
        assert database_path.exists()
        assert "indexed" in capsys.readouterr().out


class TestDiscover:
    def test_end_to_end_discovery(self, tmp_path, capsys, running_example_corpus):
        query, corpus = running_example_corpus
        from repro.storage import save_corpus_json

        corpus_path = tmp_path / "corpus.json"
        save_corpus_json(corpus, corpus_path)
        query_csv = table_to_csv(query.table, tmp_path / "query.csv")

        exit_code = main([
            "discover", str(corpus_path), str(query_csv),
            "--key", "f_name", "l_name", "country", "--k", "2",
        ])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "joinability=    5" in output or "joinability=5" in output.replace(" ", "")

    def test_discovery_with_prebuilt_index(self, tmp_path, capsys, running_example_corpus):
        query, corpus = running_example_corpus
        from repro.storage import save_corpus_json

        corpus_path = tmp_path / "corpus.json"
        database_path = tmp_path / "index.db"
        save_corpus_json(corpus, corpus_path)
        main(["index", str(corpus_path), "--database", str(database_path)])
        query_csv = table_to_csv(query.table, tmp_path / "query.csv")
        exit_code = main([
            "discover", str(corpus_path), str(query_csv),
            "--key", "f_name", "l_name", "country",
            "--database", str(database_path), "--system", "scr",
        ])
        assert exit_code == 0
        assert "top-10" in capsys.readouterr().out


class TestExperimentCommand:
    def test_runs_small_experiment(self, capsys):
        exit_code = main([
            "experiment", "init_column", "--queries", "1", "--scale", "0.05",
        ])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "heuristic" in output
        assert "cardinality" in output

    def test_extension_experiments_are_registered(self):
        from repro.cli import EXPERIMENT_RUNNERS

        for name in ("scaling", "fetch_cost", "frequency_source", "sharding"):
            assert name in EXPERIMENT_RUNNERS

    def test_runs_sharding_experiment(self, capsys):
        exit_code = main([
            "experiment", "sharding", "--queries", "1", "--scale", "0.05",
        ])
        assert exit_code == 0
        assert "shards" in capsys.readouterr().out


class TestServeBatchCommand:
    def test_serve_batch_with_explicit_key(
        self, tmp_path, capsys, running_example_corpus
    ):
        from repro.datamodel import TableCorpus
        from repro.storage import save_corpus_json

        query, corpus = running_example_corpus
        corpus_path = tmp_path / "corpus.json"
        queries_path = tmp_path / "queries.json"
        save_corpus_json(corpus, corpus_path)
        query_corpus = TableCorpus(name="queries")
        query_corpus.add_table(query.table)
        save_corpus_json(query_corpus, queries_path)

        exit_code = main([
            "serve-batch", str(corpus_path), str(queries_path),
            "--key", "f_name", "l_name", "country",
            "--shards", "2", "--workers", "2", "--k", "2",
        ])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "served 1 queries over 2 shards" in output
        assert "1:5" in output  # table T1 with joinability 5 (Figure 1)
        assert "cache:" in output

    def test_serve_batch_persists_and_reloads_sharded_index(
        self, tmp_path, capsys
    ):
        corpus_path = tmp_path / "corpus.json"
        queries_path = tmp_path / "queries.json"
        database_path = tmp_path / "service.db"
        main([
            "generate", "WT_10", "--queries", "2", "--scale", "0.05",
            "--corpus-out", str(corpus_path), "--queries-out", str(queries_path),
        ])
        first = main([
            "serve-batch", str(corpus_path), str(queries_path),
            "--shards", "3", "--database", str(database_path), "--k", "3",
        ])
        assert first == 0
        first_output = capsys.readouterr().out
        # Second invocation loads the sharded index back from SQLite and must
        # serve the same results.
        second = main([
            "serve-batch", str(corpus_path), str(queries_path),
            "--shards", "3", "--database", str(database_path), "--k", "3",
        ])
        assert second == 0
        second_output = capsys.readouterr().out
        first_ranked = [l for l in first_output.splitlines() if "top-3" in l]
        second_ranked = [l for l in second_output.splitlines() if "top-3" in l]
        assert first_ranked == second_ranked
        from repro.storage import SQLiteBackend, list_sharded_indexes

        with SQLiteBackend(database_path) as backend:
            assert list_sharded_indexes(backend) == {"main": 3}

    def test_serve_batch_stored_layout_overrides_flags(self, tmp_path, capsys):
        corpus_path = tmp_path / "corpus.json"
        queries_path = tmp_path / "queries.json"
        database_path = tmp_path / "service.db"
        main([
            "generate", "WT_10", "--queries", "1", "--scale", "0.05",
            "--corpus-out", str(corpus_path), "--queries-out", str(queries_path),
        ])
        main([
            "serve-batch", str(corpus_path), str(queries_path),
            "--shards", "2", "--hash-size", "64",
            "--database", str(database_path), "--k", "2",
        ])
        capsys.readouterr()
        # Conflicting flags on reload: the stored 2-shard/64-bit layout wins
        # (a 128-bit engine over 64-bit stored super keys would silently
        # filter out real matches).
        exit_code = main([
            "serve-batch", str(corpus_path), str(queries_path),
            "--shards", "4", "--hash-size", "128",
            "--database", str(database_path), "--k", "2",
        ])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "using stored index layout" in output
        assert "2 shards, 64-bit xash" in output
        assert "served 1 queries over 2 shards" in output


class TestProfileCommand:
    def test_profile_directory(self, tmp_path, capsys, running_example_corpus):
        _, corpus = running_example_corpus
        for table in corpus:
            table_to_csv(table, tmp_path / f"{table.name}.csv")
        exit_code = main(["profile", str(tmp_path)])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "profile of" in output
        assert "recommended configuration" in output
        assert "hash_size" in output

    def test_profile_corpus_json(self, tmp_path, capsys, running_example_corpus):
        from repro.storage import save_corpus_json

        _, corpus = running_example_corpus
        corpus_path = tmp_path / "corpus.json"
        save_corpus_json(corpus, corpus_path)
        exit_code = main(["profile", str(corpus_path)])
        assert exit_code == 0
        assert "unique_values" in capsys.readouterr().out


class TestSuggestKeyCommand:
    def test_suggest_key_for_csv(self, tmp_path, capsys, running_example_corpus):
        query, _ = running_example_corpus
        query_csv = table_to_csv(query.table, tmp_path / "query.csv")
        exit_code = main(["suggest-key", str(query_csv), "--max-arity", "3"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "composite-key candidates" in output

    def test_suggest_key_without_candidates(self, tmp_path, capsys):
        csv_path = tmp_path / "floats.csv"
        csv_path.write_text("m1,m2\n1.5,2.5\n3.5,4.5\n", encoding="utf-8")
        exit_code = main(["suggest-key", str(csv_path)])
        assert exit_code == 1
        assert "no composite-key candidate" in capsys.readouterr().out


class TestIngest:
    def test_ingest_persists_resumes_and_compacts(self, tmp_path, capsys):
        corpus_path = tmp_path / "corpus.json"
        live_dir = tmp_path / "live"
        main([
            "generate", "WT_10", "--queries", "1", "--scale", "0.05",
            "--corpus-out", str(corpus_path),
        ])
        capsys.readouterr()

        exit_code = main([
            "ingest", str(corpus_path), "--live-dir", str(live_dir),
            "--buffer-rows", "20", "--max-segments", "2", "--no-fsync",
        ])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "ingested" in output and "segments" in output
        assert (live_dir / "manifest.json").exists()
        assert (live_dir / "corpus.json").exists()

        # Re-running against the same directory resumes: everything is
        # already live, nothing is ingested twice.
        exit_code = main([
            "ingest", str(corpus_path), "--live-dir", str(live_dir),
            "--no-fsync", "--compact",
        ])
        assert exit_code == 0
        assert "ingested 0 tables" in capsys.readouterr().out

        from repro import LiveIndex, MateConfig

        live = LiveIndex.open(live_dir, config=MateConfig(hash_size=128))
        source = load_corpus_json(corpus_path)
        assert live.indexed_tables() == {t.table_id for t in source}
        assert live.num_segments == 1  # --compact collapsed the stack
