"""Tests for the storage backends and plain-file serialisation."""

import pytest

from repro import build_index
from repro.datamodel import Table, TableCorpus
from repro.exceptions import StorageError
from repro.storage import (
    InMemoryBackend,
    SQLiteBackend,
    corpus_from_json,
    corpus_to_json,
    load_corpus_from_csv_directory,
    load_corpus_json,
    save_corpus_json,
    table_from_csv,
    table_to_csv,
)


@pytest.fixture()
def corpus() -> TableCorpus:
    corpus = TableCorpus(name="persisted")
    corpus.add_table(
        Table(
            table_id=0,
            name="people",
            columns=["first", "last"],
            rows=[["ada", "lovelace"], ["alan", "turing"]],
        )
    )
    corpus.add_table(
        Table(table_id=2, name="gap-in-ids", columns=["x"], rows=[["1"]])
    )
    return corpus


def assert_corpora_equal(left: TableCorpus, right: TableCorpus) -> None:
    assert left.name == right.name
    assert left.table_ids() == right.table_ids()
    for table_id in left.table_ids():
        original = left.get_table(table_id)
        restored = right.get_table(table_id)
        assert original.columns == restored.columns
        assert original.rows == restored.rows
        assert original.name == restored.name


@pytest.fixture(params=["memory", "sqlite_memory", "sqlite_file"])
def backend(request, tmp_path):
    if request.param == "memory":
        backend = InMemoryBackend()
    elif request.param == "sqlite_memory":
        backend = SQLiteBackend()
    else:
        backend = SQLiteBackend(tmp_path / "mate.db")
    yield backend
    backend.close()


class TestBackends:
    def test_corpus_roundtrip(self, backend, corpus):
        backend.save_corpus(corpus)
        restored = backend.load_corpus("persisted")
        assert_corpora_equal(corpus, restored)
        assert backend.list_corpora() == ["persisted"]

    def test_missing_corpus_raises(self, backend):
        with pytest.raises(StorageError):
            backend.load_corpus("does-not-exist")

    def test_index_roundtrip(self, backend, corpus, config):
        index = build_index(corpus, config=config)
        backend.save_index("main", index)
        restored = backend.load_index("main")
        assert restored.hash_function_name == index.hash_function_name
        assert restored.hash_size == index.hash_size
        assert restored.num_posting_items() == index.num_posting_items()
        assert len(restored) == len(index)
        for table_id, row_index, super_key in index.iter_super_keys():
            assert restored.super_key(table_id, row_index) == super_key

    def test_missing_index_raises(self, backend):
        with pytest.raises(StorageError):
            backend.load_index("nope")

    def test_save_overwrites(self, backend, corpus):
        backend.save_corpus(corpus)
        smaller = TableCorpus(name="persisted")
        smaller.create_table("only", ["a"], [["1"]])
        backend.save_corpus(smaller)
        assert len(backend.load_corpus("persisted")) == 1

    def test_context_manager(self, corpus, tmp_path):
        with SQLiteBackend(tmp_path / "ctx.db") as backend:
            backend.save_corpus(corpus)
            assert backend.list_corpora() == ["persisted"]


class TestMemoryBackendIsolation:
    def test_mutations_do_not_leak(self, corpus):
        backend = InMemoryBackend()
        backend.save_corpus(corpus)
        corpus.get_table(0).append_row(["grace", "hopper"])
        restored = backend.load_corpus("persisted")
        assert restored.get_table(0).num_rows == 2


class TestJsonSerialization:
    def test_json_roundtrip(self, corpus, tmp_path):
        path = save_corpus_json(corpus, tmp_path / "corpus.json")
        restored = load_corpus_json(path)
        assert_corpora_equal(corpus, restored)

    def test_in_memory_payload_roundtrip(self, corpus):
        assert_corpora_equal(corpus, corpus_from_json(corpus_to_json(corpus)))

    def test_malformed_payload(self):
        with pytest.raises(StorageError):
            corpus_from_json({"tables": []})

    def test_missing_file(self, tmp_path):
        with pytest.raises(StorageError):
            load_corpus_json(tmp_path / "missing.json")


class TestCsvSerialization:
    def test_csv_roundtrip(self, corpus, tmp_path):
        table = corpus.get_table(0)
        path = table_to_csv(table, tmp_path / "people.csv")
        restored = table_from_csv(7, path)
        assert restored.columns == table.columns
        assert restored.rows == table.rows
        assert restored.table_id == 7

    def test_load_directory(self, corpus, tmp_path):
        for table in corpus:
            table_to_csv(table, tmp_path / f"{table.name}.csv")
        loaded = load_corpus_from_csv_directory(tmp_path, name="csvs")
        assert len(loaded) == len(corpus)

    def test_errors(self, tmp_path):
        with pytest.raises(StorageError):
            table_from_csv(0, tmp_path / "missing.csv")
        empty = tmp_path / "empty.csv"
        empty.write_text("")
        with pytest.raises(StorageError):
            table_from_csv(0, empty)
        with pytest.raises(StorageError):
            load_corpus_from_csv_directory(tmp_path / "not-a-dir")
