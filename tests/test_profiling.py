"""Tests for corpus profiling (repro.lake.profiling)."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import DEFAULT_ALPHABET, MateConfig
from repro.datagen import generate_corpus
from repro.datamodel import Table, TableCorpus
from repro.lake import (
    ColumnType,
    CorpusProfiler,
    character_frequencies_from_values,
    config_with_corpus_frequencies,
    corpus_character_frequencies,
    profile_column,
    profile_corpus,
    profile_table,
    value_frequency_profile,
)


@pytest.fixture()
def small_corpus():
    corpus = TableCorpus(name="small")
    corpus.create_table(
        name="people",
        columns=["name", "country", "score"],
        rows=[
            ["muhammad", "us", "1.5"],
            ["ansel", "uk", "2.5"],
            ["ansel", "us", "3.5"],
        ],
    )
    corpus.create_table(
        name="cities",
        columns=["city", "country"],
        rows=[
            ["berlin", "germany"],
            ["hannover", "germany"],
            ["brooklyn", "us"],
        ],
    )
    return corpus


class TestColumnAndTableProfiles:
    def test_profile_column_statistics(self, small_corpus):
        table = small_corpus.get_table(0)
        stats = profile_column(table, "name")
        assert stats.cardinality == 2
        assert stats.num_values == 3
        assert stats.num_missing == 0
        assert stats.min_length == len("ansel")
        assert stats.max_length == len("muhammad")
        assert stats.column_type is ColumnType.TEXT
        assert 0 < stats.uniqueness < 1

    def test_profile_column_with_missing_values(self):
        table = Table(
            table_id=9, name="gaps", columns=["a"], rows=[[""], ["x"], [""]]
        )
        stats = profile_column(table, "a")
        assert stats.num_missing == 2
        assert stats.cardinality == 1
        assert stats.uniqueness == 1.0

    def test_profile_table_covers_all_columns(self, small_corpus):
        table = small_corpus.get_table(0)
        stats = profile_table(table)
        assert [s.column for s in stats] == ["name", "country", "score"]
        assert stats[2].column_type is ColumnType.FLOAT

    def test_uniqueness_of_empty_column_is_zero(self):
        table = Table(table_id=3, name="empty", columns=["a"], rows=[[""]])
        assert profile_column(table, "a").uniqueness == 0.0

    def test_as_dict_has_rounded_fields(self, small_corpus):
        stats = profile_column(small_corpus.get_table(0), "name")
        payload = stats.as_dict()
        assert payload["column"] == "name"
        assert payload["cardinality"] == 2


class TestCharacterFrequencies:
    def test_frequencies_sum_to_100_percent(self, small_corpus):
        frequencies = corpus_character_frequencies(small_corpus)
        assert set(frequencies) == set(DEFAULT_ALPHABET)
        assert math.isclose(sum(frequencies.values()), 100.0, rel_tol=1e-9)

    def test_unused_characters_have_zero_frequency(self):
        frequencies = character_frequencies_from_values(["aaa", "ab"])
        assert frequencies["a"] > frequencies["b"] > 0
        assert frequencies["z"] == 0.0

    def test_empty_input_gives_all_zero(self):
        frequencies = character_frequencies_from_values([])
        assert set(frequencies) == set(DEFAULT_ALPHABET)
        assert all(value == 0.0 for value in frequencies.values())

    def test_non_alphabet_characters_are_folded(self):
        frequencies = character_frequencies_from_values(["ümlaut"])
        assert math.isclose(sum(frequencies.values()), 100.0, rel_tol=1e-9)

    def test_config_with_corpus_frequencies(self, small_corpus):
        base = MateConfig(expected_unique_values=1000)
        derived = config_with_corpus_frequencies(base, small_corpus)
        assert derived.hash_size == base.hash_size
        assert derived.character_frequencies != base.character_frequencies
        assert set(derived.character_frequencies) == set(DEFAULT_ALPHABET)

    def test_sample_tables_limits_the_scan(self, small_corpus):
        only_first = corpus_character_frequencies(small_corpus, sample_tables=1)
        everything = corpus_character_frequencies(small_corpus)
        assert only_first != everything

    @given(st.lists(st.text(alphabet="abc ", min_size=1, max_size=8), min_size=1))
    @settings(max_examples=25)
    def test_property_frequencies_always_normalised(self, values):
        frequencies = character_frequencies_from_values(values)
        total = sum(frequencies.values())
        assert math.isclose(total, 100.0, rel_tol=1e-9) or total == 0.0


class TestValueFrequencyProfile:
    def test_occurrences_sorted_descending(self, small_corpus):
        profile = value_frequency_profile(small_corpus)
        assert list(profile.occurrences) == sorted(profile.occurrences, reverse=True)
        # "us" appears 3 times, "germany" and "ansel" twice.
        assert profile.max == 3
        assert profile.total_occurrences == sum(profile.occurrences)

    def test_mean_and_head_share(self, small_corpus):
        profile = value_frequency_profile(small_corpus)
        assert profile.mean == pytest.approx(
            profile.total_occurrences / profile.num_distinct_values
        )
        assert 0 < profile.head_share(0.2) <= 1.0

    def test_zipf_exponent_is_negative_for_skewed_corpus(self):
        corpus = generate_corpus("webtables", seed=3, scale=0.2)
        profile = value_frequency_profile(corpus)
        assert profile.zipf_exponent() < -0.1

    def test_degenerate_profiles(self):
        empty = value_frequency_profile(TableCorpus(name="empty"))
        assert empty.mean == 0.0
        assert empty.max == 0
        assert empty.head_share() == 0.0
        assert empty.zipf_exponent() == 0.0


class TestCorpusProfiler:
    def test_profile_headline_numbers(self, small_corpus):
        profile = CorpusProfiler().profile(small_corpus)
        assert profile.num_tables == 2
        assert profile.num_rows == 6
        assert profile.num_columns == 5
        assert profile.num_unique_values == len(small_corpus.unique_values())
        assert 0.0 < profile.short_value_fraction <= 1.0
        assert profile.column_type_counts["text"] >= 3

    def test_recommended_config_uses_measured_statistics(self, small_corpus):
        profile = profile_corpus(small_corpus)
        config = profile.recommended_config(hash_size=128, k=5)
        assert config.k == 5
        assert config.expected_unique_values == profile.num_unique_values
        assert config.character_frequencies == profile.character_frequencies

    def test_recommended_config_english_fallback(self, small_corpus):
        profile = profile_corpus(small_corpus)
        config = profile.recommended_config(use_corpus_frequencies=False)
        assert config.character_frequencies != profile.character_frequencies

    def test_profile_as_dict(self, small_corpus):
        payload = profile_corpus(small_corpus).as_dict()
        assert payload["tables"] == 2
        assert "pl_zipf_exponent" in payload
        assert payload["short_value_fraction"] <= 1.0

    def test_synthetic_corpus_matches_substitution_argument(self):
        """The synthetic web-table corpus has the properties DESIGN.md claims."""
        corpus = generate_corpus("webtables", seed=11, scale=0.25)
        profile = profile_corpus(corpus)
        # Heavy value re-use: mean posting-list length well above 1.
        assert profile.value_frequency.mean > 1.5
        # Values short enough for the 128-bit length segment.
        assert profile.short_value_fraction > 0.8
        # Skewed PL length distribution.
        assert profile.value_frequency.head_share(0.01) > 0.02
