"""Tests for repro.metrics: counters, precision aggregation, timing."""

import time

import pytest

from repro.metrics import (
    DiscoveryCounters,
    PrecisionSummary,
    Stopwatch,
    precision,
    summarize_precision,
    timed,
)


class TestDiscoveryCounters:
    def test_precision_empty_is_one(self):
        assert DiscoveryCounters().precision == 1.0

    def test_precision_and_fp_rate(self):
        counters = DiscoveryCounters(true_positive_rows=3, false_positive_rows=1)
        assert counters.precision == pytest.approx(0.75)
        assert counters.false_positive_rate == pytest.approx(0.25)

    def test_filter_selectivity(self):
        counters = DiscoveryCounters(rows_checked=10, rows_passed_filter=4)
        assert counters.filter_selectivity == pytest.approx(0.4)
        assert DiscoveryCounters().filter_selectivity == 0.0

    def test_merge_accumulates_everything(self):
        a = DiscoveryCounters(
            pl_items_fetched=5, rows_checked=10, true_positive_rows=2,
            false_positive_rows=1, runtime_seconds=0.5, extra={"x": 1.0},
        )
        b = DiscoveryCounters(
            pl_items_fetched=7, rows_checked=3, true_positive_rows=4,
            false_positive_rows=0, runtime_seconds=0.25, extra={"x": 2.0, "y": 5.0},
        )
        a.merge(b)
        assert a.pl_items_fetched == 12
        assert a.rows_checked == 13
        assert a.true_positive_rows == 6
        assert a.runtime_seconds == pytest.approx(0.75)
        assert a.extra == {"x": 3.0, "y": 5.0}

    def test_as_dict_contains_derived_metrics(self):
        counters = DiscoveryCounters(true_positive_rows=1, false_positive_rows=1)
        payload = counters.as_dict()
        assert payload["precision"] == pytest.approx(0.5)
        assert payload["false_positive_rate"] == pytest.approx(0.5)
        assert "rows_checked" in payload


class TestPrecisionHelpers:
    def test_precision_function(self):
        assert precision(0, 0) == 1.0
        assert precision(3, 1) == pytest.approx(0.75)

    def test_summarize_precision(self):
        summary = summarize_precision([1.0, 0.5, 0.0])
        assert summary.mean == pytest.approx(0.5)
        assert summary.std == pytest.approx(0.408248, rel=1e-4)
        assert summary.count == 3
        assert str(summary) == "0.50±0.41"
        assert summary.as_dict()["count"] == 3

    def test_summarize_precision_empty(self):
        assert summarize_precision([]) == PrecisionSummary(0.0, 0.0, 0)

    def test_summarize_precision_accepts_generators(self):
        assert summarize_precision(v for v in (0.2, 0.4)).mean == pytest.approx(0.3)


class TestTiming:
    def test_stopwatch_accumulates(self):
        stopwatch = Stopwatch()
        with stopwatch.measure():
            time.sleep(0.01)
        first = stopwatch.elapsed
        with stopwatch.measure():
            time.sleep(0.01)
        assert stopwatch.elapsed > first

    def test_stop_without_start_is_safe(self):
        stopwatch = Stopwatch()
        assert stopwatch.stop() == 0.0

    def test_timed_context_manager(self):
        with timed() as stopwatch:
            time.sleep(0.005)
        assert stopwatch.elapsed >= 0.004
