"""Tests for repro.datamodel.table: Table, Row, QueryTable."""

import pytest

from repro.datamodel import (
    MISSING,
    QueryTable,
    Row,
    Table,
    normalize_value,
    table_from_dicts,
)
from repro.exceptions import DataModelError


class TestNormalizeValue:
    def test_strips_and_lowercases(self):
        assert normalize_value("  Muhammad ") == "muhammad"

    def test_numbers_become_strings(self):
        assert normalize_value(42) == "42"
        assert normalize_value(3.5) == "3.5"

    def test_none_becomes_missing(self):
        assert normalize_value(None) == MISSING

    def test_empty_string_is_missing(self):
        assert normalize_value("   ") == MISSING


class TestRow:
    def test_normalises_all_cells(self):
        row = Row(["  A ", None, 7])
        assert tuple(row) == ("a", "", "7")

    def test_is_a_tuple(self):
        row = Row(["x", "y"])
        assert isinstance(row, tuple)
        assert row.cell(1) == "y"


class TestTable:
    def make(self) -> Table:
        return Table(
            table_id=3,
            name="people",
            columns=["first", "last", "country"],
            rows=[["Ada", "Lovelace", "UK"], ["Alan", "Turing", "UK"]],
        )

    def test_shape(self):
        table = self.make()
        assert table.num_rows == 2
        assert table.num_columns == 3
        assert len(table) == 2
        assert len(list(iter(table))) == 2

    def test_column_index_and_values(self):
        table = self.make()
        assert table.column_index("last") == 1
        assert table.column_values("country") == ["uk", "uk"]
        assert table.distinct_column_values("country") == {"uk"}
        assert table.cardinality("country") == 1
        assert table.cardinality("first") == 2

    def test_column_values_by_index(self):
        table = self.make()
        assert table.column_values(0) == ["ada", "alan"]

    def test_cell_access(self):
        table = self.make()
        assert table.cell(0, "first") == "ada"
        assert table.cell(1, 2) == "uk"
        with pytest.raises(DataModelError):
            table.cell(5, 0)

    def test_unknown_column_raises(self):
        with pytest.raises(DataModelError):
            self.make().column_index("nope")
        with pytest.raises(DataModelError):
            self.make().column_values(9)

    def test_append_row(self):
        table = self.make()
        table.append_row(["Grace", "Hopper", "US"])
        assert table.num_rows == 3
        with pytest.raises(DataModelError):
            table.append_row(["too", "short"])

    def test_projection_is_distinct_and_skips_all_missing(self):
        table = Table(
            table_id=0,
            name="t",
            columns=["a", "b"],
            rows=[["x", "y"], ["x", "y"], ["", ""]],
        )
        assert table.projection(["a", "b"]) == {("x", "y")}

    def test_missing_values_excluded_from_distinct(self):
        table = Table(
            table_id=0, name="t", columns=["a"], rows=[["x"], [None], ["x"]]
        )
        assert table.distinct_column_values("a") == {"x"}

    def test_to_dicts(self):
        table = self.make()
        dicts = table.to_dicts()
        assert dicts[0] == {"first": "ada", "last": "lovelace", "country": "uk"}

    def test_validation_errors(self):
        with pytest.raises(DataModelError):
            Table(table_id=-1, name="x", columns=["a"], rows=[])
        with pytest.raises(DataModelError):
            Table(table_id=0, name="x", columns=[], rows=[])
        with pytest.raises(DataModelError):
            Table(table_id=0, name="x", columns=["a", "a"], rows=[])
        with pytest.raises(DataModelError):
            Table(table_id=0, name="x", columns=["a"], rows=[["1", "2"]])


class TestQueryTable:
    def make(self) -> QueryTable:
        table = Table(
            table_id=0,
            name="q",
            columns=["first", "last", "city", "salary"],
            rows=[
                ["Ada", "Lovelace", "London", "1"],
                ["Alan", "Turing", "London", "2"],
                ["Ada", "Lovelace", "London", "3"],
            ],
        )
        return QueryTable(table=table, key_columns=["first", "last"])

    def test_key_size_and_indexes(self):
        query = self.make()
        assert query.key_size == 2
        assert query.key_indexes == [0, 1]

    def test_key_tuples_are_distinct(self):
        query = self.make()
        assert query.key_tuples() == {("ada", "lovelace"), ("alan", "turing")}

    def test_key_rows_preserve_order_and_repeats(self):
        assert self.make().key_rows() == [
            ("ada", "lovelace"),
            ("alan", "turing"),
            ("ada", "lovelace"),
        ]

    def test_column_cardinalities(self):
        assert self.make().column_cardinalities() == {"first": 2, "last": 2}

    def test_invalid_keys_raise(self):
        table = self.make().table
        with pytest.raises(DataModelError):
            QueryTable(table=table, key_columns=[])
        with pytest.raises(DataModelError):
            QueryTable(table=table, key_columns=["first", "first"])
        with pytest.raises(DataModelError):
            QueryTable(table=table, key_columns=["nope"])


class TestTableFromDicts:
    def test_roundtrip(self):
        table = table_from_dicts(
            5, "t", [{"a": "1", "b": "x"}, {"a": "2", "b": "y"}]
        )
        assert table.columns == ["a", "b"]
        assert table.num_rows == 2
        assert table.cell(1, "b") == "y"

    def test_empty_records_raise(self):
        with pytest.raises(DataModelError):
            table_from_dicts(0, "t", [])

    def test_mismatched_keys_raise(self):
        with pytest.raises(DataModelError):
            table_from_dicts(0, "t", [{"a": 1}, {"b": 2}])
