"""Tests for repro.core.joinability: Eq. 1 / Eq. 2 and the verification helpers."""


from repro.core import (
    exact_joinability,
    exact_joinability_score,
    joinability_from_matches,
    row_contains_key,
    row_mappings,
    top_k_by_exact_joinability,
)
from repro.datamodel import QueryTable, Table


class TestRowMappings:
    def test_simple_match(self):
        row = ("muhammad", "lee", "us", "dancer")
        assert row_mappings(row, ("lee", "us")) == [(1, 2)]

    def test_no_match(self):
        assert row_mappings(("a", "b"), ("c",)) == []

    def test_missing_values_never_match(self):
        assert row_mappings(("", "x"), ("",)) == []

    def test_duplicate_key_values_need_distinct_columns(self):
        # The key ("us", "us") needs two distinct columns containing "us".
        assert row_mappings(("us", "dancer"), ("us", "us")) == []
        mappings = row_mappings(("us", "us"), ("us", "us"))
        assert sorted(mappings) == [(0, 1), (1, 0)]

    def test_multiple_possible_mappings(self):
        row = ("lee", "lee", "us")
        mappings = row_mappings(row, ("lee", "us"))
        assert sorted(mappings) == [(0, 2), (1, 2)]

    def test_row_contains_key(self):
        assert row_contains_key(("a", "b", "c"), ("c", "a"))
        assert not row_contains_key(("a", "b", "c"), ("c", "z"))


class TestJoinabilityFromMatches:
    def test_counts_distinct_keys_per_mapping(self):
        matches = [
            (("muhammad", "lee", "us"), ("muhammad", "lee")),
            (("ansel", "adams", "uk"), ("ansel", "adams")),
            (("ansel", "adams", "uk"), ("ansel", "adams")),  # duplicate match
        ]
        score, mapping = joinability_from_matches(matches)
        assert score == 2
        assert mapping == (0, 1)

    def test_requires_consistent_mapping(self):
        # Two matches that can only be explained by different column mappings
        # must not both count (Eq. 2 fixes a single mapping).
        matches = [
            (("lee", "muhammad"), ("muhammad", "lee")),   # mapping (1, 0)
            (("ansel", "adams"), ("ansel", "adams")),      # mapping (0, 1)
        ]
        score, _ = joinability_from_matches(matches)
        assert score == 1

    def test_empty(self):
        assert joinability_from_matches([]) == (0, None)


class TestExactJoinability:
    def test_running_example_score_is_five(self, running_example_tables):
        query, candidate = running_example_tables
        score, mapping = exact_joinability(query, candidate)
        assert score == 5
        # F. Name -> Vorname (0), L. Name -> Nachname (1), Country -> Land (2).
        assert mapping == (0, 1, 2)

    def test_swapped_mapping_would_score_zero(self, running_example_tables):
        query, candidate = running_example_tables
        # Restricting to two key columns still finds the right mapping.
        two_column_query = QueryTable(
            table=query.table, key_columns=["f_name", "l_name"]
        )
        score, mapping = exact_joinability(two_column_query, candidate)
        # d's distinct (first, last) pairs are (muhammad, lee), (ansel, adams)
        # and (helmut, newton); all three appear in T1.
        assert score == 3
        assert mapping == (0, 1)

    def test_candidate_with_too_few_columns(self, running_example_tables):
        query, _ = running_example_tables
        narrow = Table(table_id=9, name="narrow", columns=["a"], rows=[["x"]])
        assert exact_joinability(query, narrow) == (0, None)

    def test_score_bounded_by_cardinality(self, running_example_tables):
        query, candidate = running_example_tables
        assert exact_joinability_score(query, candidate) <= len(query.key_tuples())


class TestTopKByExactJoinability:
    def test_orders_and_drops_zero_scores(self, running_example_corpus):
        query, corpus = running_example_corpus
        results = top_k_by_exact_joinability(query, corpus, k=5)
        assert results[0] == (1, 5)
        assert all(score > 0 for _, score in results)

    def test_k_limits_results(self, running_example_corpus):
        query, corpus = running_example_corpus
        assert len(top_k_by_exact_joinability(query, corpus, k=1)) == 1
