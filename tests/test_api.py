"""Tests for the unified discovery API (:mod:`repro.api`).

Covers the request contract, the per-request budget/deadline semantics, the
engine registry, the session facade (single / batch / streaming / async),
the JSON response schema, and the deprecated service shim.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro import (
    DiscoveryRequest,
    DiscoverySession,
    MateConfig,
    MateDiscovery,
    RequestBudget,
    SCHEMA_VERSION,
    ServiceConfig,
    ShardedMateDiscovery,
    build_index,
)
from repro.api import EngineRegistry, available_engines, register_engine
from repro.api.registry import DEFAULT_REGISTRY
from repro.baselines import (
    McrDiscovery,
    PrefixTreeDiscovery,
    ScrDiscovery,
    ScrJosieDiscovery,
)
from repro.datagen import build_workload
from repro.exceptions import DiscoveryError, EngineNotFoundError


@pytest.fixture(scope="module")
def api_config() -> MateConfig:
    return MateConfig(hash_size=128, k=5, expected_unique_values=100_000)


@pytest.fixture(scope="module")
def workload():
    return build_workload("WT_10", seed=29, num_queries=3, corpus_scale=0.15)


@pytest.fixture(scope="module")
def index(workload, api_config):
    return build_index(workload.corpus, config=api_config)


@pytest.fixture(scope="module")
def session(workload, index, api_config):
    with DiscoverySession(
        workload.corpus,
        index,
        config=api_config,
        service_config=ServiceConfig(num_shards=1, cache_capacity=512),
    ) as active:
        yield active


class TestDiscoveryRequest:
    def test_defaults(self, workload):
        request = DiscoveryRequest(query=workload.queries[0])
        assert request.engine == "mate"
        assert request.k is None
        assert not request.limited

    def test_validation(self, workload):
        query = workload.queries[0]
        with pytest.raises(DiscoveryError):
            DiscoveryRequest(query=query, k=0)
        with pytest.raises(DiscoveryError):
            DiscoveryRequest(query=query, deadline_seconds=0.0)
        with pytest.raises(DiscoveryError):
            DiscoveryRequest(query=query, max_pl_fetches=-1)
        with pytest.raises(DiscoveryError):
            DiscoveryRequest(query=query, engine="")
        with pytest.raises(DiscoveryError):
            DiscoveryRequest(query="not a query table")

    def test_label_prefers_request_id(self, workload):
        query = workload.queries[0]
        assert DiscoveryRequest(query=query, request_id="r-1").label == "r-1"
        default_label = DiscoveryRequest(query=query).label
        assert query.table.name in default_label

    def test_engine_signature_excludes_per_run_inputs(self, workload):
        a = DiscoveryRequest(query=workload.queries[0], k=3, max_pl_fetches=1)
        b = DiscoveryRequest(query=workload.queries[1], k=7)
        assert a.engine_signature() == b.engine_signature()
        c = DiscoveryRequest(query=workload.queries[0], engine="scr")
        assert c.engine_signature() != a.engine_signature()

    def test_with_query(self, workload):
        request = DiscoveryRequest(query=workload.queries[0], k=4)
        moved = request.with_query(workload.queries[1])
        assert moved.query is workload.queries[1]
        assert moved.k == 4

    def test_requests_are_frozen(self, workload):
        request = DiscoveryRequest(query=workload.queries[0])
        with pytest.raises(AttributeError):
            request.k = 3


class TestRequestBudget:
    def test_unlimited_request_has_no_budget(self, workload):
        assert DiscoveryRequest(query=workload.queries[0]).make_budget() is None

    def test_fetch_budget_grants_and_latches(self):
        budget = RequestBudget(max_pl_fetches=3)
        assert budget.take_pl_fetches(2) == 2
        assert budget.complete
        assert budget.take_pl_fetches(2) == 1
        assert budget.exhausted and not budget.complete

    def test_deadline_uses_injected_clock(self):
        now = [0.0]
        budget = RequestBudget(deadline_seconds=5.0, clock=lambda: now[0])
        assert not budget.deadline_expired()
        now[0] = 5.0
        assert budget.deadline_expired()
        assert budget.expired and not budget.complete

    def test_validation(self):
        with pytest.raises(DiscoveryError):
            RequestBudget(deadline_seconds=-1.0)
        with pytest.raises(DiscoveryError):
            RequestBudget(max_pl_fetches=-1)
        with pytest.raises(DiscoveryError):
            RequestBudget(max_pl_fetches=1).take_pl_fetches(-1)


class TestEngineRegistry:
    def test_builtin_engines_are_registered(self):
        names = available_engines()
        for expected in ("mate", "sharded", "scr", "mcr", "josie", "prefix_tree"):
            assert expected in names

    def test_unknown_engine_is_attributed(self, session, workload):
        request = DiscoveryRequest(
            query=workload.queries[0], engine="nope", request_id="bad"
        )
        with pytest.raises(EngineNotFoundError) as excinfo:
            session.discover(request)
        assert excinfo.value.engine == "nope"
        assert excinfo.value.request is request
        assert "bad" in str(excinfo.value)

    def test_duplicate_registration_requires_replace(self):
        from repro.exceptions import ConfigurationError

        registry = EngineRegistry()
        registry.register("custom", lambda session, request: None)
        with pytest.raises(ConfigurationError):
            registry.register("custom", lambda session, request: None)
        registry.register("custom", lambda session, request: None, replace=True)
        assert "custom" in registry
        with pytest.raises(ConfigurationError):
            registry.register("", lambda session, request: None)

    def test_custom_engine_dispatch(self, workload, index, api_config):
        registry = EngineRegistry()

        def build_reversed_mate(session, request):
            return MateDiscovery(
                session.corpus, session.index, config=session.config
            )

        registry.register("mine", build_reversed_mate, supports_budget=True)
        with DiscoverySession(
            workload.corpus, index, config=api_config, registry=registry
        ) as session:
            result = session.discover(
                DiscoveryRequest(query=workload.queries[0], engine="mine")
            )
        assert result.engine == "mine"
        assert result.tables

    def test_register_engine_into_default_registry(self):
        name = "test-only-engine"
        register_engine(name, lambda session, request: None)
        try:
            assert name in available_engines()
        finally:
            DEFAULT_REGISTRY._specs.pop(name, None)


class TestSessionDiscover:
    def test_k_defaults_to_config(self, session, workload, api_config):
        result = session.discover(DiscoveryRequest(query=workload.queries[0]))
        assert result.k == api_config.k
        assert result.complete

    def test_explicit_k_wins(self, session, workload):
        result = session.discover(DiscoveryRequest(query=workload.queries[0], k=2))
        assert result.k == 2
        assert len(result.tables) <= 2

    @pytest.mark.parametrize(
        "engine", ["mate", "sharded", "scr", "mcr", "josie", "prefix_tree"]
    )
    def test_every_engine_matches_direct_construction(
        self, session, workload, index, api_config, engine
    ):
        """The facade adds no behaviour: byte-identical top-k per engine."""
        corpus = workload.corpus
        direct_engines = {
            "mate": lambda: MateDiscovery(corpus, index, config=api_config),
            "sharded": lambda: ShardedMateDiscovery(
                corpus,
                num_shards=session.service_config.num_shards,
                config=api_config,
            ),
            "scr": lambda: ScrDiscovery(corpus, index, config=api_config),
            "mcr": lambda: McrDiscovery(corpus, index, config=api_config),
            "josie": lambda: ScrJosieDiscovery(corpus, config=api_config),
            "prefix_tree": lambda: PrefixTreeDiscovery(corpus, config=api_config),
        }
        direct = direct_engines[engine]()
        for query in workload.queries:
            expected = direct.discover(query, k=api_config.k)
            served = session.discover(DiscoveryRequest(query=query, engine=engine))
            assert served.result_tuples() == expected.result_tuples()

    def test_errors_carry_engine_and_request(self, session, workload):
        request = DiscoveryRequest(
            query=workload.queries[0], engine="mcr", max_pl_fetches=1
        )
        with pytest.raises(DiscoveryError) as excinfo:
            session.discover(request)
        assert excinfo.value.engine == "mcr"
        assert excinfo.value.request is request


class TestBudgetSemantics:
    def test_zero_fetch_budget_returns_empty_well_formed_result(
        self, session, workload
    ):
        request = DiscoveryRequest(query=workload.queries[0], max_pl_fetches=0)
        result = session.discover(request)
        assert result.tables == []
        assert result.result_tuples() == []
        assert not result.complete
        assert result.counters.budget_exhausted
        assert result.counters.pl_items_fetched == 0
        assert result.counters.deadline_expired == 0
        # The result still serialises like any other.
        assert json.loads(json.dumps(result.to_dict()))["complete"] is False

    def test_partial_fetch_budget_truncates_initialization(
        self, session, workload
    ):
        query = workload.queries[0]
        full = session.discover(DiscoveryRequest(query=query))
        probes = int(full.counters.extra["initial_column_cardinality"])
        assert probes > 1
        limited = session.discover(
            DiscoveryRequest(query=query, max_pl_fetches=probes - 1)
        )
        assert not limited.complete
        assert limited.counters.budget_exhausted
        assert (
            limited.counters.extra["initial_column_cardinality"] == probes - 1
        )
        assert limited.counters.pl_items_fetched <= full.counters.pl_items_fetched

    def test_sufficient_budget_is_complete_and_identical(self, session, workload):
        query = workload.queries[0]
        full = session.discover(DiscoveryRequest(query=query))
        probes = int(full.counters.extra["initial_column_cardinality"])
        budgeted = session.discover(
            DiscoveryRequest(query=query, max_pl_fetches=probes)
        )
        assert budgeted.complete
        assert not budgeted.counters.budget_exhausted
        assert budgeted.result_tuples() == full.result_tuples()

    def test_tight_deadline_returns_partial_topk(self, session, workload):
        request = DiscoveryRequest(
            query=workload.queries[0], deadline_seconds=1e-9
        )
        result = session.discover(request)
        assert not result.complete
        assert result.counters.deadline_expired
        full = session.discover(DiscoveryRequest(query=workload.queries[0]))
        assert set(result.result_tuples()) <= set(full.result_tuples())

    def test_deadline_mid_loop_keeps_partial_results(self, workload, index, api_config):
        """An expiry between candidate tables keeps what was already ranked."""
        engine = MateDiscovery(workload.corpus, index, config=api_config)
        now = [0.0]
        budget = RequestBudget(deadline_seconds=1.0, clock=lambda: now[0])
        seen = []

        def on_snapshot(ranked):
            seen.append(list(ranked))
            now[0] = 2.0  # expire after the first accepted table

        result = engine.discover(
            workload.queries[0], budget=budget, on_snapshot=on_snapshot
        )
        assert not result.complete
        assert result.counters.deadline_expired
        assert result.result_tuples() == seen[-1]

    def test_limited_request_on_unsupporting_engine_is_refused(
        self, session, workload
    ):
        request = DiscoveryRequest(
            query=workload.queries[0], engine="prefix_tree", deadline_seconds=10.0
        )
        with pytest.raises(DiscoveryError):
            session.discover(request)


class TestStreaming:
    def test_snapshots_improve_monotonically_and_end_at_final(
        self, session, workload
    ):
        request = DiscoveryRequest(query=workload.queries[0])
        snapshots = list(session.discover_stream(request))
        assert snapshots, "streaming must yield at least the final result"
        final = snapshots[-1]
        assert final.complete
        reference = session.discover(request)
        assert final.result_tuples() == reference.result_tuples()
        assert final.response.tables == reference.response.tables
        interim = snapshots[:-1]
        assert all(not snapshot.complete for snapshot in interim)
        rankings = [s.result_tuples() for s in snapshots]
        for earlier, later in zip(rankings, rankings[1:]):
            assert len(later) >= len(earlier)
            for position, (_, joinability) in enumerate(earlier):
                assert later[position][1] >= joinability

    def test_stream_respects_budget(self, session, workload):
        request = DiscoveryRequest(query=workload.queries[0], max_pl_fetches=0)
        snapshots = list(session.discover_stream(request))
        assert len(snapshots) == 1
        assert snapshots[0].result_tuples() == []
        assert not snapshots[0].complete

    def test_abandoned_stream_cancels_the_run(self, session, workload):
        stream = session.discover_stream(
            DiscoveryRequest(query=workload.queries[0])
        )
        next(stream)  # at least one element is always produced
        stream.close()  # GeneratorExit -> budget.cancel() stops the worker
        # The session stays fully usable afterwards.
        follow_up = session.discover(DiscoveryRequest(query=workload.queries[0]))
        assert follow_up.complete and follow_up.tables

    def test_non_streaming_engine_yields_single_final(self, session, workload):
        request = DiscoveryRequest(query=workload.queries[0], engine="mcr")
        snapshots = list(session.discover_stream(request))
        assert len(snapshots) == 1
        assert snapshots[0].complete
        reference = session.discover(request)
        assert snapshots[0].result_tuples() == reference.result_tuples()


class TestAsyncSubmission:
    def test_asubmit_matches_sync(self, session, workload):
        request = DiscoveryRequest(query=workload.queries[0])
        result = asyncio.run(session.asubmit(request))
        assert result.result_tuples() == session.discover(request).result_tuples()

    def test_asubmit_batch_preserves_order(self, session, workload):
        requests = [DiscoveryRequest(query=query) for query in workload.queries]
        results = asyncio.run(session.asubmit_batch(requests))
        assert [r.request for r in results] == requests

    def test_submit_returns_future(self, session, workload):
        future = session.submit(DiscoveryRequest(query=workload.queries[0]))
        assert future.result().tables

    def test_closed_session_refuses_submission(self, workload, index, api_config):
        session = DiscoverySession(workload.corpus, index, config=api_config)
        session.close()
        with pytest.raises(DiscoveryError):
            session.submit(DiscoveryRequest(query=workload.queries[0]))


class TestBatch:
    def test_batch_matches_sequential(self, session, workload):
        requests = [DiscoveryRequest(query=query) for query in workload.queries]
        batch = session.discover_batch(requests)
        assert batch.ok
        assert len(batch) == len(requests)
        for request, served in zip(requests, batch):
            assert served.result_tuples() == (
                session.discover(request).result_tuples()
            )
        assert batch.stats.num_queries == len(requests)
        assert batch.stats.failed_queries == 0

    def test_collected_failures_are_attributable_in_stats(
        self, session, workload
    ):
        requests = [
            DiscoveryRequest(query=workload.queries[0]),
            DiscoveryRequest(
                query=workload.queries[1], engine="nope", request_id="broken"
            ),
        ]
        batch = session.discover_batch(requests, on_error="collect")
        assert not batch.ok
        assert batch.results[0] is not None and batch.results[1] is None
        assert batch.stats.failed_queries == 1
        assert len(batch.stats.failures) == 1
        assert "nope" in batch.stats.failures[0]
        assert "broken" in batch.stats.failures[0]
        assert isinstance(batch.failures[0], EngineNotFoundError)

    def test_raise_mode_propagates(self, session, workload):
        requests = [
            DiscoveryRequest(query=workload.queries[0], engine="nope"),
        ]
        with pytest.raises(EngineNotFoundError):
            session.discover_batch(requests)

    def test_invalid_on_error_rejected(self, session, workload):
        with pytest.raises(DiscoveryError):
            session.discover_batch(
                [DiscoveryRequest(query=workload.queries[0])], on_error="ignore"
            )

    def test_mixed_engine_batch(self, session, workload):
        requests = [
            DiscoveryRequest(query=workload.queries[0], engine="mate"),
            DiscoveryRequest(query=workload.queries[0], engine="scr"),
        ]
        batch = session.discover_batch(requests)
        assert [result.engine for result in batch] == ["mate", "scr"]


class TestResponseSchema:
    def test_to_dict_is_versioned_and_json_serialisable(self, session, workload):
        request = DiscoveryRequest(
            query=workload.queries[0], request_id="api-1", max_pl_fetches=100
        )
        document = session.discover(request).to_dict()
        assert document["schema_version"] == SCHEMA_VERSION
        assert document["kind"] == "discovery_result"
        assert document["request"]["id"] == "api-1"
        assert document["request"]["max_pl_fetches"] == 100
        assert document["engine"] == "mate"
        assert isinstance(document["tables"], list)
        for entry in document["tables"]:
            assert set(entry) == {
                "table_id", "table_name", "joinability", "column_mapping",
            }
        assert "rows_checked" in document["counters"]
        json.dumps(document)  # must not raise

    def test_batch_to_dict(self, session, workload):
        batch = session.discover_batch(
            [DiscoveryRequest(query=workload.queries[0])]
        )
        document = batch.to_dict()
        assert document["schema_version"] == SCHEMA_VERSION
        assert document["kind"] == "batch_result"
        assert document["stats"]["num_queries"] == 1
        json.dumps(document)


class TestDeprecatedServiceShim:
    def test_service_warns_and_matches_session(self, workload, index, api_config):
        from repro.service import DiscoveryService

        with pytest.warns(DeprecationWarning):
            service = DiscoveryService(workload.corpus, index, config=api_config)
        expected = MateDiscovery(
            workload.corpus, index, config=api_config
        ).discover(workload.queries[0])
        assert service.discover(workload.queries[0]).result_tuples() == (
            expected.result_tuples()
        )
        batch = service.discover_batch(list(workload.queries))
        assert len(batch) == len(workload.queries)
        assert batch.stats.failed_queries == 0
