"""Benchmark: the SQL-pushdown engine vs the in-Python mate engine (extension).

Runs the pushdown study (``repro.experiments.pushdown``) at two corpus
scales and asserts the engine's contract: the top-k (ids, scores, column
mappings) is identical to the mate engine on every query, the sql rows
perform zero Python-side posting-list fetches (the store scanned those rows
instead), and the runtime stays in the same ballpark as the exact columnar
engine.  The smoke benchmark the CI bench job tracks via
``scripts/export_bench_json.py`` (``BENCH_sql.json``).
"""

from repro.experiments import run_pushdown

from .common import bench_settings, publish


def test_pushdown_vs_mate(run_once):
    settings = bench_settings(default_queries=2, default_scale=0.3)
    result = run_once(run_pushdown, settings)
    publish(result, "pushdown")

    by_key = {(row["scale"], row["engine"]): row for row in result.row_dicts()}
    scales = sorted({scale for scale, _ in by_key})
    assert len(scales) == 2
    assert set(by_key) == {
        (scale, engine) for scale in scales for engine in ("mate", "sql")
    }

    for (scale, engine), row in by_key.items():
        # The deployability contract: byte-identical top-k per query.
        assert row["identical"] == "yes", (
            f"scale {scale}: engine {engine} diverged from mate"
        )
        assert float(row["runtime s"]) >= 0.0

    for scale in scales:
        mate = by_key[(scale, "mate")]
        sql = by_key[(scale, "sql")]
        # The pushdown property: no posting list crossed into Python; the
        # database scanned exactly the volume the mate engine fetched.
        assert int(sql["pl fetched"]) == 0
        assert int(sql["rows scanned"]) == int(mate["pl fetched"]) > 0
