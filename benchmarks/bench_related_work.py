"""Benchmark: MATE vs the prefix-tree (Li et al.) baseline (related work §8).

Measures the cost of n-ary join discovery when the column mapping has to be
enumerated (the prefix-tree approach) versus MATE's super-key filtering, on
the small web-table workloads where the factorial enumeration is still
tractable enough to run.
"""

from repro.experiments import run_related_work

from .common import bench_settings, publish


def test_related_work_prefix_tree(run_once):
    settings = bench_settings(default_queries=2, default_scale=0.25)
    result = run_once(
        run_related_work, settings, workload_names=("WT_10", "WT_100")
    )
    publish(result, "related_work_prefix_tree")

    rows = result.row_dicts()
    for row in rows:
        # Without a known mapping the prefix tree enumerates many mappings per
        # query and does not beat MATE.
        assert row["avg mappings enumerated"] > 100
        assert row["slowdown"] >= 1.0
        # Being exhaustive over the mappings it can afford, it finds the same
        # best joinability as MATE among the tables it could evaluate.
        matched, total = str(row["best-score agreement (evaluable tables)"]).split("/")
        assert matched == total
