"""Benchmark: Figure 4 — MATE vs SCR / MCR / SCR-Josie / MCR-Josie runtime.

Regenerates the six runtime series of Figure 4 (one per WT/OD query set) and
the speed-up factors of MATE over every baseline.
"""

from repro.experiments import run_figure4

from .common import bench_settings, publish


def test_figure4_system_comparison(run_once):
    settings = bench_settings(default_queries=2, default_scale=0.25)
    result = run_once(run_figure4, settings)
    publish(result, "figure4_systems")

    assert len(result.rows) == 6
    for row in result.row_dicts():
        # Expected shape: MATE is never slower than the slowest baseline and
        # is faster than MCR-style retrieval on every query set.
        mate = row["mate runtime (s)"]
        baselines = [
            row["scr runtime (s)"], row["mcr runtime (s)"],
            row["scr_josie runtime (s)"], row["mcr_josie runtime (s)"],
        ]
        assert mate <= max(baselines)
