"""Benchmark: process-pool serving study (extension).

Validates the deployment contract of :mod:`repro.serve`: the process-per-
shard pool (plain and hedged) answers every query byte-identically to the
in-process thread engine, and reports the latency distribution plus the
scatter/gather stage seconds a serving deployment would watch.
"""

from repro.experiments import run_serving

from .common import bench_settings, publish


def test_serve(run_once):
    settings = bench_settings(default_queries=2, default_scale=0.3)
    result = run_once(run_serving, settings, workload_name="WT_100", num_shards=2)
    publish(result, "serve")

    rows = result.row_dicts()
    modes = {row["mode"] for row in rows}
    assert modes == {"threads", "process", "process+hedge"}
    for row in rows:
        # Serving correctness: every mode reproduces the thread engine's
        # top-k exactly — the property the whole pool design rests on.
        assert row["identical"] == "yes"
        assert row["p50 ms"] >= 0
        assert row["p99 ms"] >= row["p50 ms"]
        if row["mode"] != "threads":
            # The pool attaches scatter/gather stage stats to every result.
            assert row["scatter s"] >= 0
            assert row["gather s"] > 0
