"""Benchmark: Section 7.5.4 — initial-column selection heuristics.

Regenerates the fetched-PL-item comparison between MATE's cardinality
heuristic, the column-order and longest-string heuristics, and the worst/best
case bounds.
"""

from repro.experiments import run_init_column

from .common import bench_settings, publish


def test_init_column_heuristics(run_once):
    settings = bench_settings(default_queries=5, default_scale=0.3)
    result = run_once(run_init_column, settings, base_cardinality=150)
    publish(result, "init_column_heuristics")

    values = {row[0]: row[1] for row in result.rows}
    # Shape check (paper §7.5.4): cardinality fetches fewer PLs than the
    # column-order/TLS heuristics and the worst case, and at least as many as
    # the ground-truth best case.
    assert values["best_case"] <= values["cardinality"]
    assert values["cardinality"] <= values["column_order"]
    assert values["cardinality"] <= values["worst_case"]
    assert values["cardinality"] <= values["longest_string"]
