"""Benchmark: Section 7.5.1 — precision as a function of k.

Regenerates the precision-vs-k study (k from 2 to 20) on the WT(100) query
set for XASH, BF, HT and SimHash.
"""

from repro.experiments import run_topk

from .common import bench_settings, publish


def test_topk_precision(run_once):
    settings = bench_settings(default_queries=3, default_scale=0.3)
    result = run_once(run_topk, settings, k_values=(2, 5, 10, 15, 20))
    publish(result, "topk_precision")

    rows = result.row_dicts()
    assert [row["k"] for row in rows] == [2, 5, 10, 15, 20]
    # Shape check: XASH dominates the uniform SimHash for every k and beats
    # the single-bit hash table on average over the k values.
    for row in rows:
        assert row["xash precision"] >= row["simhash precision"] - 0.05

    def average(column: str) -> float:
        return sum(row[column] for row in rows) / len(rows)

    assert average("xash precision") >= average("hashtable precision") - 0.05
