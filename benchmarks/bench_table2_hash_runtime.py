"""Benchmark: Table 2 — MATE's runtime per hash function and hash size.

Regenerates the Table 2 sweep: SCR plus MATE with MD5, Murmur, CityHash,
SimHash, HT, BF, LHBF, and XASH at 128/256/512-bit super keys, over the eight
query sets (scaled down).
"""

from repro.experiments import run_table2

from .common import bench_settings, publish


def test_table2_hash_function_runtime(run_once):
    settings = bench_settings(default_queries=1, default_scale=0.15)
    result = run_once(run_table2, settings, hash_sizes=settings.hash_sizes)
    publish(result, "table2_hash_runtime")

    assert len(result.rows) == 8
    rows = result.row_dicts()
    # Shape check: averaged over the query sets, MATE+XASH(128) beats SCR and
    # the uniform-hash variants.
    def average(column: str) -> float:
        return sum(row[column] for row in rows) / len(rows)

    assert average("xash/128 (s)") <= average("scr (s)")
    assert average("xash/128 (s)") <= average("md5/128 (s)")
