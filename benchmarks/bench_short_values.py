"""Benchmark: short key values — plain XASH vs the bigram-extended variant (§9).

The paper's conclusion flags short cell values as the case where XASH loses
discriminative power.  This benchmark builds a workload keyed by 2-3
character codes and compares plain XASH, the ``xash_short`` extension, and
the bloom-filter baseline.
"""

from repro.experiments import run_short_values

from .common import bench_settings, publish


def test_short_key_values(run_once):
    settings = bench_settings(default_queries=2, default_scale=0.3)
    result = run_once(run_short_values, settings, cardinality=60)
    publish(result, "short_values")

    rows = {row[0]: dict(zip(result.headers, row)) for row in result.rows}
    # Shape checks: the bigram extension never filters worse than plain XASH
    # on this workload (the §9 weakness it targets) and lets fewer FP rows
    # through.  The bloom filter column is a reference point only: on short
    # keys plain XASH can legitimately fall behind it.
    assert rows["xash_short"]["precision"] >= rows["xash"]["precision"] - 0.02
    assert rows["xash_short"]["FP rows"] <= rows["xash"]["FP rows"] * 1.05 + 1
