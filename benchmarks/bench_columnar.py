"""Benchmark: columnar vs. legacy posting-list layout (extension).

Shows the fetch/filter speedup of the packed struct-of-arrays layout
(`repro.index.columnar`) over the per-item NamedTuple layout on identical
top-k discovery results — the smoke benchmark the CI bench job tracks via
``scripts/export_bench_json.py``.
"""

from repro.experiments import run_columnar

from .common import bench_settings, publish


def test_columnar_layout(run_once):
    settings = bench_settings(default_queries=2, default_scale=0.3)
    result = run_once(run_columnar, settings)
    publish(result, "columnar")

    by_layout = {row["layout"]: row for row in result.row_dicts()}
    legacy = by_layout["legacy"]
    columnar = by_layout["columnar"]
    loop = by_layout["columnar/loop"]

    # Correctness first: the layouts fetch the same PL items and produce
    # identical top-k results on every query — including the kernels-off
    # re-run of the columnar index.
    assert columnar["PL items / pass"] == legacy["PL items / pass"]
    assert loop["PL items / pass"] == columnar["PL items / pass"]
    for row in (columnar, loop):
        matched, total = str(row["top-k identical"]).split("/")
        assert matched == total

    # The packed layout must not lose to the NamedTuple path on the repeated
    # initialization-step fetch (in practice it wins by several x; the lenient
    # bound keeps the smoke job robust on noisy CI runners).
    assert columnar["fetch s"] <= legacy["fetch s"]

    # The vectorized prefilter kernels must not lose to the per-row loop on
    # the prefilter stage (in practice they win by ~4-6x at benchmark scale;
    # scripts/check_bench_stage_stats.py enforces a stronger bound on the
    # exported JSON).
    assert float(columnar["prefilter s"]) <= float(loop["prefilter s"])
