"""Benchmark: telemetry overhead on the request path (extension).

Runs the telemetry overhead study (`repro.experiments.telemetry`) and
asserts the subsystem's core promise: a default session — telemetry
constructed, tracing off — stays within the idle-overhead guard of the
bare engine, and enabling tracing actually produces spans.  The smoke
benchmark the CI bench job tracks via ``scripts/export_bench_json.py``
(``BENCH_telemetry.json``, guarded by
``scripts/check_bench_stage_stats.py``).
"""

from repro.experiments import IDLE_OVERHEAD_LIMIT, run_telemetry

from .common import bench_settings, publish

#: Absolute slack (seconds) mirroring the CI guard: at smoke scale the
#: totals are a few ms, where one scheduler tick would swamp 2%.
IDLE_SLACK_SECONDS = 0.002


def test_telemetry_overhead(run_once):
    settings = bench_settings(default_queries=2, default_scale=0.3)
    result = run_once(run_telemetry, settings)
    publish(result, "telemetry")

    rows = {row["mode"]: row for row in result.row_dicts()}
    assert set(rows) == {"engine_direct", "session_idle", "session_tracing"}

    direct = float(rows["engine_direct"]["total s"])
    idle = float(rows["session_idle"]["total s"])
    assert direct > 0 and idle > 0

    # The guarded claim: telemetry-off sessions cost (almost) nothing.
    assert idle <= direct * IDLE_OVERHEAD_LIMIT + IDLE_SLACK_SECONDS, (
        f"idle session {idle:.6f}s exceeds "
        f"{IDLE_OVERHEAD_LIMIT}x bare engine {direct:.6f}s"
    )

    # Tracing mode must have exported spans, or the comparison is vacuous.
    assert int(rows["session_tracing"]["spans"]) > 0
