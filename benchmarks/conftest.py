"""Pytest wiring for the benchmark harness."""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

# Make the src/ layout importable when the package is not installed.
_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))


@pytest.fixture()
def run_once(benchmark):
    """Run a callable exactly once under pytest-benchmark timing.

    The experiments are macro-benchmarks (seconds each); multiple
    auto-calibrated rounds would multiply the runtime for no extra insight.
    """

    def runner(function, *args, **kwargs):
        return benchmark.pedantic(
            function, args=args, kwargs=kwargs, rounds=1, iterations=1
        )

    return runner
