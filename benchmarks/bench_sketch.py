"""Benchmark: the MinHash-LSH candidate tier vs exact MATE (extension).

Runs the sketch-tier study (`repro.experiments.sketch`) on its skewed
corpus and asserts the tier's value proposition: with a real containment
threshold the candidate universe shrinks by at least 5x and the run gets
faster, while measured recall against the exact top-k stays >= 0.95 — and
with ``threshold=0`` the tier is exhaustive and the top-k is identical to
the exact engine.  The smoke benchmark the CI bench job tracks via
``scripts/export_bench_json.py`` (``BENCH_sketch.json``).
"""

from repro.experiments import SKETCH_MODES_UNDER_TEST, run_sketch

from .common import bench_settings, publish

#: The pruned candidate universe must be at least this much smaller.
MIN_CANDIDATE_REDUCTION = 5.0

#: Measured recall floor of the pruning row (the corpus is built so the
#: genuine matches clear the threshold with margin; 1.0 in practice).
MIN_RECALL = 0.95


def test_sketch_tier(run_once):
    settings = bench_settings(default_queries=2, default_scale=0.5)
    result = run_once(run_sketch, settings)
    publish(result, "sketch")

    by_mode = {row["mode"]: row for row in result.row_dicts()}
    assert set(by_mode) == set(SKETCH_MODES_UNDER_TEST)

    # Correctness first: the exhaustive tier (threshold=0) must report the
    # byte-identical top-k of the exact engine, and even the pruning row
    # keeps the full top-k on this corpus.
    for mode in SKETCH_MODES_UNDER_TEST:
        assert by_mode[mode]["topk"] == "=", (
            f"{mode} diverged from the exact top-k"
        )
    assert float(by_mode["sketch0"]["recall"]) == 1.0

    # The headline claims: >= 5x fewer candidate tables enter the exact
    # stages, recall stays above the floor, and the pruned run is faster
    # than the exact one.
    exact_candidates = int(by_mode["exact"]["candidates"])
    pruned_candidates = int(by_mode["sketch"]["candidates"])
    assert pruned_candidates * MIN_CANDIDATE_REDUCTION <= exact_candidates, (
        f"candidate reduction below {MIN_CANDIDATE_REDUCTION}x: "
        f"{exact_candidates} -> {pruned_candidates}"
    )
    assert float(by_mode["sketch"]["recall"]) >= MIN_RECALL
    assert float(by_mode["sketch"]["est recall"]) > 0.0
    assert float(by_mode["sketch"]["runtime s"]) < float(
        by_mode["exact"]["runtime s"]
    ), "pruned sketch run was not faster than the exact run"

    # The prune shows up in the work counters, not just the wall clock.
    assert int(by_mode["sketch"]["rows checked"]) < int(
        by_mode["exact"]["rows checked"]
    )
