"""Benchmark: simulated disk-fetch cost of the initial index probe (extension).

Quantifies the fetch time the paper excludes from its runtime comparison
(Section 7.2, "between 1 and 40 seconds ... from disk") on the simulated
paged store, per query set, initial-column heuristic, and super-key layout.
"""

from repro.experiments import run_fetch_cost

from .common import bench_settings, publish


def test_fetch_cost_initial_probe(run_once):
    settings = bench_settings(default_queries=2, default_scale=0.3)
    result = run_once(run_fetch_cost, settings)
    publish(result, "fetch_cost")

    rows = result.row_dicts()
    by_key = {(row["query set"], row["initial column"]): row for row in rows}
    for (workload, selector), row in by_key.items():
        # The per-row layout never costs more to fetch than the per-cell layout.
        assert row["est. fetch s (per-row)"] <= row["est. fetch s (per-cell)"] + 1e-9
        if selector == "cardinality":
            worst = by_key[(workload, "worst_case")]
            # The cardinality heuristic fetches no more PL items than the
            # worst-case column choice (Section 6.1 / 7.5.4).
            assert (
                row["avg PL items fetched"]
                <= worst["avg PL items fetched"] + 1e-9
            )
