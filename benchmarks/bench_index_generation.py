"""Benchmark: index generation cost (the §7.1 "Index generation" paragraph).

Measures MATE's offline index build time and the extra storage of the per-cell
vs per-row super-key layouts against a JOSIE-style set index.
"""

from repro.experiments import run_index_generation

from .common import bench_settings, publish


def test_index_generation_cost(run_once):
    settings = bench_settings(default_queries=2, default_scale=0.4)
    result = run_once(
        run_index_generation,
        settings,
        workload_names=("WT_100", "OD_1000", "School"),
    )
    publish(result, "index_generation")
    for row in result.row_dicts():
        # Shape check from the paper: per-row layout is the compact one.
        assert row["super keys / row (B)"] <= row["super keys / cell (B)"]
