"""Benchmark: Figure 6 — runtime and precision vs composite-key size |Q|.

Regenerates both panels of Figure 6 for |Q| in {2, 5, 10} with XASH, BF, HT
and SCR on a wide Open-Data-style query table.
"""

from repro.experiments import run_figure6

from .common import bench_settings, publish


def test_figure6_join_key_size(run_once):
    settings = bench_settings(default_queries=2, default_scale=0.25)
    result = run_once(run_figure6, settings, key_sizes=(2, 5, 10))
    publish(result, "figure6_keysize")

    rows = result.row_dicts()
    assert [row["|Q|"] for row in rows] == [2, 5, 10]
    # Shape checks (§7.5.3): precision may dip at intermediate key sizes but
    # recovers for the largest key, and MATE's runtime does not blow up with
    # |Q| (the paper observes a monotone decrease).
    assert rows[-1]["xash precision"] >= rows[1]["xash precision"]
    assert rows[-1]["xash runtime (s)"] <= rows[0]["xash runtime (s)"] * 2.0
    assert rows[-1]["scr runtime (s)"] >= rows[-1]["xash runtime (s)"]
