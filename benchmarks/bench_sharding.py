"""Benchmark: sharded (scale-out) discovery study (extension).

Validates that sharding the corpus and merging per-shard top-k lists returns
exactly the single-engine result, and reports the per-shard work balance that
a distributed deployment of the paper's system would care about.
"""

from repro.experiments import run_sharding

from .common import bench_settings, publish


def test_sharded_discovery(run_once):
    settings = bench_settings(default_queries=2, default_scale=0.3)
    result = run_once(
        run_sharding, settings, workload_name="WT_100", shard_counts=(1, 2, 4)
    )
    publish(result, "sharding")

    rows = result.row_dicts()
    # Merge correctness: every shard count reproduces the single-engine top-k
    # joinability scores (table identities may differ only at tie boundaries).
    for row in rows:
        matched, total = str(row["top-k scores identical"]).split("/")
        assert matched == total
    # The summed shard work stays within a small factor of the 1-shard work
    # (sharding redistributes work, it does not multiply it).
    baseline = rows[0]["total shard work (s)"]
    assert all(row["total shard work (s)"] <= baseline * 3 + 0.05 for row in rows)
