"""Benchmark: regenerate Table 1 (input query-table statistics).

Prints, per query set, the number of queries, the corpus, and the built vs
paper cardinality/joinability so the scale-down of the synthetic workloads is
explicit.
"""

from repro.experiments import run_table1

from .common import bench_settings, publish


def test_table1_workload_statistics(run_once):
    settings = bench_settings(default_queries=3, default_scale=0.3)
    result = run_once(run_table1, settings)
    publish(result, "table1_workloads")
    assert len(result.rows) == 8
    for row in result.row_dicts():
        assert row["cardinality (built)"] > 0
        assert row["joinability (built)"] > 0
