"""Benchmark: online ingestion throughput and query latency (extension).

Measures what the LSM-style ingestion subsystem (`repro.ingest`) costs
relative to the offline bulk build, and how query latency varies with the
compaction state (buffer-only, segmented, fully compacted) — the smoke
benchmark the CI bench job tracks via ``scripts/export_bench_json.py``.
"""

from repro.experiments import run_ingest

from .common import bench_settings, publish


def test_online_ingestion(run_once):
    settings = bench_settings(default_queries=2, default_scale=0.3)
    result = run_once(run_ingest, settings)
    publish(result, "ingest")

    by_state = {row["state"]: row for row in result.row_dicts()}
    assert set(by_state) == {"bulk", "buffer", "segmented", "compacted"}

    # Correctness first: every ingestion state answers every query with the
    # exact top-k of the bulk-built baseline index.
    for state, row in by_state.items():
        matched, total = str(row["top-k identical"]).split("/")
        assert matched == total, f"{state} diverged from the bulk baseline"

    # The compacted stack collapses to one segment; the segmented state
    # keeps a bounded stack (the policy merges past four segments).
    assert int(by_state["compacted"]["segments"]) == 1
    assert 1 <= int(by_state["segmented"]["segments"]) <= 4

    # Streaming ingestion pays WAL-less buffer appends only; it must stay
    # within an order of magnitude of the bulk build even on noisy runners.
    bulk = float(by_state["bulk"]["ingest s"])
    buffered = float(by_state["buffer"]["ingest s"])
    assert buffered <= bulk * 10
