"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper at laptop scale
and prints (and saves) the corresponding rows.  The scale is controlled by
environment variables so that a user with more time can crank it up:

* ``MATE_BENCH_QUERIES``      — queries per query set (default: per benchmark)
* ``MATE_BENCH_CORPUS_SCALE`` — corpus scale factor (default: per benchmark)
* ``MATE_BENCH_SEED``         — workload seed (default 7)
* ``MATE_BENCH_K``            — top-k (default 10)

Results are written to ``benchmarks/results/<name>.txt`` in addition to being
printed, so EXPERIMENTS.md can reference stable artefacts.
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.experiments import ExperimentResult, ExperimentSettings

RESULTS_DIR = Path(__file__).resolve().parent / "results"


def bench_settings(
    default_queries: int,
    default_scale: float,
    hash_sizes: tuple[int, ...] = (128, 256, 512),
) -> ExperimentSettings:
    """Build experiment settings from the environment with per-bench defaults."""
    return ExperimentSettings(
        seed=int(os.environ.get("MATE_BENCH_SEED", "7")),
        num_queries=int(os.environ.get("MATE_BENCH_QUERIES", str(default_queries))),
        corpus_scale=float(
            os.environ.get("MATE_BENCH_CORPUS_SCALE", str(default_scale))
        ),
        k=int(os.environ.get("MATE_BENCH_K", "10")),
        hash_sizes=hash_sizes,
    )


def publish(result: ExperimentResult, name: str) -> ExperimentResult:
    """Print an experiment result and persist it under benchmarks/results/."""
    text = result.to_text()
    print("\n" + text)
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
    return result
