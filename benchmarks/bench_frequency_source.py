"""Benchmark: rare-character frequency source ablation (extension).

Compares MATE's precision when the XASH rare-character table comes from the
built-in English frequencies, from the indexed corpus itself, or from the
inverted (common-character) table.
"""

from repro.experiments import run_frequency_source

from .common import bench_settings, publish


def test_frequency_source_ablation(run_once):
    settings = bench_settings(default_queries=3, default_scale=0.3)
    result = run_once(run_frequency_source, settings, workload_name="WT_100")
    publish(result, "frequency_source")

    precision = {row[0]: row[1] for row in result.rows}
    # Shape checks: picking rare characters (by either real frequency table)
    # filters at least as well as deliberately picking common characters.
    assert precision["corpus"] >= precision["inverted"] - 0.05
    assert precision["english"] >= precision["inverted"] - 0.05
    # All sources keep MATE's filter useful (non-trivial precision).
    assert min(precision.values()) > 0.0
