"""Benchmark: corpus-size scaling study (extension).

Sweeps the corpus scale while holding the query set fixed, and reports the
false-positive pressure and the MATE-vs-SCR runtimes at each scale.  This is
the ablation DESIGN.md calls out for the Section 7.2 claim that MATE's gain
over SCR grows with the number of FP rows.
"""

from repro.experiments import run_scaling

from .common import bench_settings, publish


def test_scaling_corpus_size(run_once):
    settings = bench_settings(default_queries=2, default_scale=0.25)
    result = run_once(
        run_scaling, settings, workload_name="WT_100", scale_factors=(0.5, 1.0, 2.0)
    )
    publish(result, "scaling_corpus_size")

    rows = result.row_dicts()
    # Shape checks: corpora really do grow, the candidate-row pressure on SCR
    # grows with them, and MATE never loses to SCR.
    tables = [row["corpus tables"] for row in rows]
    assert tables == sorted(tables)
    unfiltered = [row["scr unfiltered rows"] for row in rows]
    assert unfiltered[-1] >= unfiltered[0]
    # MATE never loses to SCR (a small tolerance absorbs timer noise on the
    # scales where both finish in tens of milliseconds).
    assert all(row["scr/mate"] >= 0.9 for row in rows)
