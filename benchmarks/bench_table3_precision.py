"""Benchmark: Table 3 — row-filter precision per hash function.

Regenerates the Table 3 precision sweep (mean ± std per query set) for the
128- and 512-bit hash sizes and checks the headline shape: XASH achieves the
highest average precision.
"""

from repro.experiments import TABLE3_HASHES, run_table3

from .common import bench_settings, publish


def test_table3_hash_function_precision(run_once):
    settings = bench_settings(default_queries=1, default_scale=0.15)
    result = run_once(run_table3, settings)
    publish(result, "table3_precision")

    assert result.rows[-1][0] == "Average"
    averages = dict(zip(result.headers[1:], result.rows[-1][1:]))

    def avg(name: str) -> float:
        return float(averages[name])

    # Shape checks from the paper: precision grows with the hash size for
    # XASH, and XASH(512) beats every uniform hash at the same size.
    assert avg("xash/512") >= avg("xash/128")
    for uniform in ("md5", "cityhash", "simhash"):
        assert avg("xash/512") >= avg(f"{uniform}/512")
        assert avg("xash/128") >= avg(f"{uniform}/128")
    assert set(TABLE3_HASHES) <= {h.split("/")[0] for h in averages}
