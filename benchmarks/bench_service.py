"""Benchmark: batch-discovery service study (extension).

Validates that the service layer (sharded index + LRU posting-list cache +
batch scheduling) answers every query exactly as a cold sequential
``MateDiscovery`` run would, and reports the serving metrics a deployment
would watch: batch throughput and cache hit rate per shard count, cold
versus warm.
"""

from repro.experiments import run_batch_service

from .common import bench_settings, publish


def test_batch_service(run_once):
    settings = bench_settings(default_queries=2, default_scale=0.3)
    result = run_once(
        run_batch_service, settings, workload_name="WT_100", shard_counts=(1, 2, 4)
    )
    publish(result, "batch_service")

    rows = result.row_dicts()
    assert len(rows) >= 2  # throughput + hit rate reported for >= 2 shard counts
    for row in rows:
        # Serving correctness: cold and warm batches reproduce the cold
        # sequential engine's top-k for every query and shard count.
        matched, total = str(row["top-k identical"]).split("/")
        assert matched == total
        # The warm pass is served entirely from the posting-list cache.
        assert row["warm hit rate"] == 1.0
        assert row["cold batch q/s"] > 0
        assert row["warm batch q/s"] > 0
