"""Benchmark: fixed-seed vs cost-based vs adaptive query plans (extension).

Runs the planner study (`repro.experiments.planner`) on its two skewed
corpora and asserts the planner's value proposition: cost-based seed
selection fetches fewer posting lists than the fixed first-column seed on a
skewed corpus, and adaptive re-planning recovers when the cost estimate is
wrong — all without changing the exact top-k.  The smoke benchmark the CI
bench job tracks via ``scripts/export_bench_json.py`` (``BENCH_planner.json``).
"""

from repro.experiments import run_planner

from .common import bench_settings, publish


def test_planner_modes(run_once):
    settings = bench_settings(default_queries=2, default_scale=0.3)
    result = run_once(run_planner, settings)
    publish(result, "planner")

    by_key = {(row["scenario"], row["mode"]): row for row in result.row_dicts()}
    assert set(by_key) == {
        (scenario, mode)
        for scenario in ("skew", "drift")
        for mode in ("fixed", "cost", "adaptive")
    }

    # Correctness first: MATE's verification is exact, so every plan mode
    # must report the same top-k as the fixed-seed baseline.
    for row in result.row_dicts():
        assert row["topk"] in ("=", "scores"), (
            f"{row['scenario']}/{row['mode']} diverged from the fixed baseline"
        )

    # Every executed plan reports its prefilter-stage wall clock (the
    # stage-stats column the bench JSON artifacts track per commit).
    for row in result.row_dicts():
        assert float(row["prefilter s"]) >= 0.0
        assert float(row["prefilter s"]) <= float(row["runtime s"])

    # The headline claim: on the skewed corpus, cost-based seed selection
    # fetches strictly fewer posting lists than the fixed first-column seed.
    assert int(by_key[("skew", "cost")]["pl fetched"]) < int(
        by_key[("skew", "fixed")]["pl fetched"]
    )
    assert by_key[("skew", "cost")]["seed"] != by_key[("skew", "fixed")]["seed"]

    # The drift corpus lies to the sampled estimate: pure cost-based
    # planning walks into the trap column, the adaptive executor re-plans
    # out of it mid-run and ends up fetching less in total.
    assert int(by_key[("drift", "adaptive")]["replans"]) >= 1
    assert int(by_key[("drift", "adaptive")]["pl fetched"]) < int(
        by_key[("drift", "cost")]["pl fetched"]
    )
