"""Benchmark: Figure 5 — influence of the XASH components on precision.

Regenerates the eight bars of Figure 5 on the WT(100) query set: unfiltered
SCR, length-only, rare characters, char+loc, char+len+loc (no rotation),
full XASH at 128 and 512 bits, and the ideal zero-FP oracle.
"""

from repro.experiments import run_figure5

from .common import bench_settings, publish


def test_figure5_xash_component_ablation(run_once):
    settings = bench_settings(default_queries=3, default_scale=0.3)
    result = run_once(run_figure5, settings)
    publish(result, "figure5_ablation")

    precision = {row[0]: row[1] for row in result.rows}
    # Shape checks: each added feature must not hurt, the ideal system is
    # perfect, and full XASH beats the unfiltered baseline decisively.
    assert precision["Ideal system"] == 1.0
    assert precision["SCR (no filter)"] <= precision["Length"] + 0.05
    assert precision["Length"] <= precision["Char. + loc."] + 0.05
    assert precision["Char. + loc."] <= precision["Xash (512 bit)"] + 0.05
    assert precision["Xash (128 bit)"] > precision["SCR (no filter)"]
    assert precision["Xash (512 bit)"] >= precision["Xash (128 bit)"] - 0.02
